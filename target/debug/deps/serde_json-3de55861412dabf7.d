/root/repo/target/debug/deps/serde_json-3de55861412dabf7.d: compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3de55861412dabf7.rlib: compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3de55861412dabf7.rmeta: compat/serde_json/src/lib.rs

compat/serde_json/src/lib.rs:
