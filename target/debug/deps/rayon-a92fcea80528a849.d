/root/repo/target/debug/deps/rayon-a92fcea80528a849.d: compat/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-a92fcea80528a849.rmeta: compat/rayon/src/lib.rs Cargo.toml

compat/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
