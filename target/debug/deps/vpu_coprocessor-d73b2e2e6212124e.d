/root/repo/target/debug/deps/vpu_coprocessor-d73b2e2e6212124e.d: src/lib.rs

/root/repo/target/debug/deps/vpu_coprocessor-d73b2e2e6212124e: src/lib.rs

src/lib.rs:
