/root/repo/target/debug/deps/mdk-cd0d449d113e13be.d: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs Cargo.toml

/root/repo/target/debug/deps/libmdk-cd0d449d113e13be.rmeta: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs Cargo.toml

crates/mdk/src/lib.rs:
crates/mdk/src/gemm.rs:
crates/mdk/src/offload.rs:
crates/mdk/src/tiling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
