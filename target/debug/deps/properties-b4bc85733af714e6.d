/root/repo/target/debug/deps/properties-b4bc85733af714e6.d: crates/serve/tests/properties.rs

/root/repo/target/debug/deps/properties-b4bc85733af714e6: crates/serve/tests/properties.rs

crates/serve/tests/properties.rs:
