/root/repo/target/debug/deps/toolchain-e70937ea9d514f97.d: tests/toolchain.rs

/root/repo/target/debug/deps/toolchain-e70937ea9d514f97: tests/toolchain.rs

tests/toolchain.rs:
