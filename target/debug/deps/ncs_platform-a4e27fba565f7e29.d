/root/repo/target/debug/deps/ncs_platform-a4e27fba565f7e29.d: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs

/root/repo/target/debug/deps/libncs_platform-a4e27fba565f7e29.rlib: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs

/root/repo/target/debug/deps/libncs_platform-a4e27fba565f7e29.rmeta: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs

crates/ncs/src/lib.rs:
crates/ncs/src/api.rs:
crates/ncs/src/api2.rs:
crates/ncs/src/device.rs:
crates/ncs/src/fleet.rs:
crates/ncs/src/graphfile.rs:
crates/ncs/src/usb.rs:
