/root/repo/target/debug/deps/myriad2-0cbcda2ef906f798.d: crates/myriad2/src/lib.rs crates/myriad2/src/arch.rs crates/myriad2/src/cmx.rs crates/myriad2/src/ddr.rs crates/myriad2/src/exec.rs crates/myriad2/src/power.rs crates/myriad2/src/roofline.rs crates/myriad2/src/shave.rs crates/myriad2/src/sipp.rs crates/myriad2/src/thermal.rs crates/myriad2/src/vliw.rs Cargo.toml

/root/repo/target/debug/deps/libmyriad2-0cbcda2ef906f798.rmeta: crates/myriad2/src/lib.rs crates/myriad2/src/arch.rs crates/myriad2/src/cmx.rs crates/myriad2/src/ddr.rs crates/myriad2/src/exec.rs crates/myriad2/src/power.rs crates/myriad2/src/roofline.rs crates/myriad2/src/shave.rs crates/myriad2/src/sipp.rs crates/myriad2/src/thermal.rs crates/myriad2/src/vliw.rs Cargo.toml

crates/myriad2/src/lib.rs:
crates/myriad2/src/arch.rs:
crates/myriad2/src/cmx.rs:
crates/myriad2/src/ddr.rs:
crates/myriad2/src/exec.rs:
crates/myriad2/src/power.rs:
crates/myriad2/src/roofline.rs:
crates/myriad2/src/shave.rs:
crates/myriad2/src/sipp.rs:
crates/myriad2/src/thermal.rs:
crates/myriad2/src/vliw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
