/root/repo/target/debug/deps/myriad2-310b1972623b7dba.d: crates/myriad2/src/lib.rs crates/myriad2/src/arch.rs crates/myriad2/src/cmx.rs crates/myriad2/src/ddr.rs crates/myriad2/src/exec.rs crates/myriad2/src/power.rs crates/myriad2/src/roofline.rs crates/myriad2/src/shave.rs crates/myriad2/src/sipp.rs crates/myriad2/src/thermal.rs crates/myriad2/src/vliw.rs

/root/repo/target/debug/deps/libmyriad2-310b1972623b7dba.rlib: crates/myriad2/src/lib.rs crates/myriad2/src/arch.rs crates/myriad2/src/cmx.rs crates/myriad2/src/ddr.rs crates/myriad2/src/exec.rs crates/myriad2/src/power.rs crates/myriad2/src/roofline.rs crates/myriad2/src/shave.rs crates/myriad2/src/sipp.rs crates/myriad2/src/thermal.rs crates/myriad2/src/vliw.rs

/root/repo/target/debug/deps/libmyriad2-310b1972623b7dba.rmeta: crates/myriad2/src/lib.rs crates/myriad2/src/arch.rs crates/myriad2/src/cmx.rs crates/myriad2/src/ddr.rs crates/myriad2/src/exec.rs crates/myriad2/src/power.rs crates/myriad2/src/roofline.rs crates/myriad2/src/shave.rs crates/myriad2/src/sipp.rs crates/myriad2/src/thermal.rs crates/myriad2/src/vliw.rs

crates/myriad2/src/lib.rs:
crates/myriad2/src/arch.rs:
crates/myriad2/src/cmx.rs:
crates/myriad2/src/ddr.rs:
crates/myriad2/src/exec.rs:
crates/myriad2/src/power.rs:
crates/myriad2/src/roofline.rs:
crates/myriad2/src/shave.rs:
crates/myriad2/src/sipp.rs:
crates/myriad2/src/thermal.rs:
crates/myriad2/src/vliw.rs:
