/root/repo/target/debug/deps/vpu_nn-b5c62170164df083.d: crates/nn/src/lib.rs crates/nn/src/builder.rs crates/nn/src/cost.rs crates/nn/src/googlenet.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/optimize.rs crates/nn/src/prototxt.rs crates/nn/src/weights.rs crates/nn/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libvpu_nn-b5c62170164df083.rmeta: crates/nn/src/lib.rs crates/nn/src/builder.rs crates/nn/src/cost.rs crates/nn/src/googlenet.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/optimize.rs crates/nn/src/prototxt.rs crates/nn/src/weights.rs crates/nn/src/zoo.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/builder.rs:
crates/nn/src/cost.rs:
crates/nn/src/googlenet.rs:
crates/nn/src/graph.rs:
crates/nn/src/init.rs:
crates/nn/src/layer.rs:
crates/nn/src/optimize.rs:
crates/nn/src/prototxt.rs:
crates/nn/src/weights.rs:
crates/nn/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
