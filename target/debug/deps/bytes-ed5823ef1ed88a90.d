/root/repo/target/debug/deps/bytes-ed5823ef1ed88a90.d: compat/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-ed5823ef1ed88a90.rmeta: compat/bytes/src/lib.rs Cargo.toml

compat/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
