/root/repo/target/debug/deps/repro-3554ab1b85110d07.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-3554ab1b85110d07.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
