/root/repo/target/debug/deps/rayon-ac92477f04e486b0.d: compat/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-ac92477f04e486b0.rmeta: compat/rayon/src/lib.rs Cargo.toml

compat/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
