/root/repo/target/debug/deps/ncsw-144a09892a013e68.d: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs Cargo.toml

/root/repo/target/debug/deps/libncsw-144a09892a013e68.rmeta: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/multivpu.rs:
crates/core/src/runner.rs:
crates/core/src/service.rs:
crates/core/src/source.rs:
crates/core/src/target.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
