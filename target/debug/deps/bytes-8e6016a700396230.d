/root/repo/target/debug/deps/bytes-8e6016a700396230.d: compat/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-8e6016a700396230.rmeta: compat/bytes/src/lib.rs Cargo.toml

compat/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
