/root/repo/target/debug/deps/ncsw_serve-2f95411b05471d4a.d: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/debug/deps/ncsw_serve-2f95411b05471d4a: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/fleet.rs:
crates/serve/src/histogram.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
