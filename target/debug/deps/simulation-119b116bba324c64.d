/root/repo/target/debug/deps/simulation-119b116bba324c64.d: crates/bench/benches/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-119b116bba324c64.rmeta: crates/bench/benches/simulation.rs Cargo.toml

crates/bench/benches/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
