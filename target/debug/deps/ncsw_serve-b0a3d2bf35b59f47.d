/root/repo/target/debug/deps/ncsw_serve-b0a3d2bf35b59f47.d: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libncsw_serve-b0a3d2bf35b59f47.rmeta: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/fleet.rs:
crates/serve/src/histogram.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
