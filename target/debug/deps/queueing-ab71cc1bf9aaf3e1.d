/root/repo/target/debug/deps/queueing-ab71cc1bf9aaf3e1.d: crates/serve/tests/queueing.rs Cargo.toml

/root/repo/target/debug/deps/libqueueing-ab71cc1bf9aaf3e1.rmeta: crates/serve/tests/queueing.rs Cargo.toml

crates/serve/tests/queueing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
