/root/repo/target/debug/deps/toolchain-073cc6c1dde9dc01.d: tests/toolchain.rs

/root/repo/target/debug/deps/toolchain-073cc6c1dde9dc01: tests/toolchain.rs

tests/toolchain.rs:
