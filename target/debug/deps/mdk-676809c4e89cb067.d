/root/repo/target/debug/deps/mdk-676809c4e89cb067.d: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs Cargo.toml

/root/repo/target/debug/deps/libmdk-676809c4e89cb067.rmeta: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs Cargo.toml

crates/mdk/src/lib.rs:
crates/mdk/src/gemm.rs:
crates/mdk/src/offload.rs:
crates/mdk/src/tiling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
