/root/repo/target/debug/deps/criterion-7ffcb7667524c5ef.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-7ffcb7667524c5ef.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
