/root/repo/target/debug/deps/determinism-8c0e6eef992fbac7.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-8c0e6eef992fbac7.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
