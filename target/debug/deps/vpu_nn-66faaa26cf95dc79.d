/root/repo/target/debug/deps/vpu_nn-66faaa26cf95dc79.d: crates/nn/src/lib.rs crates/nn/src/builder.rs crates/nn/src/cost.rs crates/nn/src/googlenet.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/optimize.rs crates/nn/src/prototxt.rs crates/nn/src/weights.rs crates/nn/src/zoo.rs

/root/repo/target/debug/deps/libvpu_nn-66faaa26cf95dc79.rlib: crates/nn/src/lib.rs crates/nn/src/builder.rs crates/nn/src/cost.rs crates/nn/src/googlenet.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/optimize.rs crates/nn/src/prototxt.rs crates/nn/src/weights.rs crates/nn/src/zoo.rs

/root/repo/target/debug/deps/libvpu_nn-66faaa26cf95dc79.rmeta: crates/nn/src/lib.rs crates/nn/src/builder.rs crates/nn/src/cost.rs crates/nn/src/googlenet.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/optimize.rs crates/nn/src/prototxt.rs crates/nn/src/weights.rs crates/nn/src/zoo.rs

crates/nn/src/lib.rs:
crates/nn/src/builder.rs:
crates/nn/src/cost.rs:
crates/nn/src/googlenet.rs:
crates/nn/src/graph.rs:
crates/nn/src/init.rs:
crates/nn/src/layer.rs:
crates/nn/src/optimize.rs:
crates/nn/src/prototxt.rs:
crates/nn/src/weights.rs:
crates/nn/src/zoo.rs:
