/root/repo/target/debug/deps/vpu_tensor-ee3b56d382adfe26.d: crates/tensor/src/lib.rs crates/tensor/src/element.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/dense.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/im2col.rs crates/tensor/src/kernels/lrn.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libvpu_tensor-ee3b56d382adfe26.rmeta: crates/tensor/src/lib.rs crates/tensor/src/element.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/dense.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/im2col.rs crates/tensor/src/kernels/lrn.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/element.rs:
crates/tensor/src/kernels/mod.rs:
crates/tensor/src/kernels/activation.rs:
crates/tensor/src/kernels/conv.rs:
crates/tensor/src/kernels/dense.rs:
crates/tensor/src/kernels/gemm.rs:
crates/tensor/src/kernels/im2col.rs:
crates/tensor/src/kernels/lrn.rs:
crates/tensor/src/kernels/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
