/root/repo/target/debug/deps/ncsw_serve-0cb9a6d077ec0a24.d: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/debug/deps/libncsw_serve-0cb9a6d077ec0a24.rlib: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/debug/deps/libncsw_serve-0cb9a6d077ec0a24.rmeta: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/fleet.rs:
crates/serve/src/histogram.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
