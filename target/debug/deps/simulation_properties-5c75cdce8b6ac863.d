/root/repo/target/debug/deps/simulation_properties-5c75cdce8b6ac863.d: tests/simulation_properties.rs

/root/repo/target/debug/deps/simulation_properties-5c75cdce8b6ac863: tests/simulation_properties.rs

tests/simulation_properties.rs:
