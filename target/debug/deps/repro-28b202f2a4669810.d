/root/repo/target/debug/deps/repro-28b202f2a4669810.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-28b202f2a4669810.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
