/root/repo/target/debug/deps/reproduction_shapes-69c64aefa30e3503.d: tests/reproduction_shapes.rs

/root/repo/target/debug/deps/reproduction_shapes-69c64aefa30e3503: tests/reproduction_shapes.rs

tests/reproduction_shapes.rs:
