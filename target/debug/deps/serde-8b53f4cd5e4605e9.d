/root/repo/target/debug/deps/serde-8b53f4cd5e4605e9.d: compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-8b53f4cd5e4605e9.rmeta: compat/serde/src/lib.rs Cargo.toml

compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
