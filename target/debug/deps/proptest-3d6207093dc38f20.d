/root/repo/target/debug/deps/proptest-3d6207093dc38f20.d: compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-3d6207093dc38f20.rmeta: compat/proptest/src/lib.rs Cargo.toml

compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
