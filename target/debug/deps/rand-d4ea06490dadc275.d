/root/repo/target/debug/deps/rand-d4ea06490dadc275.d: compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-d4ea06490dadc275.rmeta: compat/rand/src/lib.rs Cargo.toml

compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
