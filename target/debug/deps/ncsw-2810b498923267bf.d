/root/repo/target/debug/deps/ncsw-2810b498923267bf.d: crates/core/src/bin/ncsw.rs Cargo.toml

/root/repo/target/debug/deps/libncsw-2810b498923267bf.rmeta: crates/core/src/bin/ncsw.rs Cargo.toml

crates/core/src/bin/ncsw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
