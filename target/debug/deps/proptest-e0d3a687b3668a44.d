/root/repo/target/debug/deps/proptest-e0d3a687b3668a44.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e0d3a687b3668a44.rlib: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e0d3a687b3668a44.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
