/root/repo/target/debug/deps/rand-3d12228ff8408130.d: compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-3d12228ff8408130.rmeta: compat/rand/src/lib.rs Cargo.toml

compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
