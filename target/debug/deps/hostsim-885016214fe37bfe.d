/root/repo/target/debug/deps/hostsim-885016214fe37bfe.d: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libhostsim-885016214fe37bfe.rmeta: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs Cargo.toml

crates/hostsim/src/lib.rs:
crates/hostsim/src/accel.rs:
crates/hostsim/src/cpu.rs:
crates/hostsim/src/gpu.rs:
crates/hostsim/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
