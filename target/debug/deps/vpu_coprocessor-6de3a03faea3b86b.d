/root/repo/target/debug/deps/vpu_coprocessor-6de3a03faea3b86b.d: src/lib.rs

/root/repo/target/debug/deps/vpu_coprocessor-6de3a03faea3b86b: src/lib.rs

src/lib.rs:
