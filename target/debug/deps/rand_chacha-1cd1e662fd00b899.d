/root/repo/target/debug/deps/rand_chacha-1cd1e662fd00b899.d: compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-1cd1e662fd00b899.rlib: compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-1cd1e662fd00b899.rmeta: compat/rand_chacha/src/lib.rs

compat/rand_chacha/src/lib.rs:
