/root/repo/target/debug/deps/ncsw-c22f7c44b9d8315c.d: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs

/root/repo/target/debug/deps/libncsw-c22f7c44b9d8315c.rlib: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs

/root/repo/target/debug/deps/libncsw-c22f7c44b9d8315c.rmeta: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs

crates/core/src/lib.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/multivpu.rs:
crates/core/src/runner.rs:
crates/core/src/service.rs:
crates/core/src/source.rs:
crates/core/src/target.rs:
