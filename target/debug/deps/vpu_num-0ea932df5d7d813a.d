/root/repo/target/debug/deps/vpu_num-0ea932df5d7d813a.d: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libvpu_num-0ea932df5d7d813a.rmeta: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs Cargo.toml

crates/num/src/lib.rs:
crates/num/src/half.rs:
crates/num/src/rng.rs:
crates/num/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
