/root/repo/target/debug/deps/rand_chacha-a5d790c9e605331d.d: compat/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-a5d790c9e605331d.rmeta: compat/rand_chacha/src/lib.rs Cargo.toml

compat/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
