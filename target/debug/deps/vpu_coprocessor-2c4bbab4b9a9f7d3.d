/root/repo/target/debug/deps/vpu_coprocessor-2c4bbab4b9a9f7d3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvpu_coprocessor-2c4bbab4b9a9f7d3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
