/root/repo/target/debug/deps/simulation_properties-de8e8598ed07b294.d: tests/simulation_properties.rs

/root/repo/target/debug/deps/simulation_properties-de8e8598ed07b294: tests/simulation_properties.rs

tests/simulation_properties.rs:
