/root/repo/target/debug/deps/queueing-e2fc5c4105c19e0c.d: crates/serve/tests/queueing.rs

/root/repo/target/debug/deps/queueing-e2fc5c4105c19e0c: crates/serve/tests/queueing.rs

crates/serve/tests/queueing.rs:
