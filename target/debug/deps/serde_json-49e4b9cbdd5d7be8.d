/root/repo/target/debug/deps/serde_json-49e4b9cbdd5d7be8.d: compat/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-49e4b9cbdd5d7be8.rmeta: compat/serde_json/src/lib.rs Cargo.toml

compat/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
