/root/repo/target/debug/deps/reproduction_shapes-4a3ae6417b2521b2.d: tests/reproduction_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libreproduction_shapes-4a3ae6417b2521b2.rmeta: tests/reproduction_shapes.rs Cargo.toml

tests/reproduction_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
