/root/repo/target/debug/deps/serde_derive-91f818e062bf5bd1.d: compat/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-91f818e062bf5bd1.so: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
