/root/repo/target/debug/deps/rand-481cf3b5b2a48c9e.d: compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-481cf3b5b2a48c9e.rlib: compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-481cf3b5b2a48c9e.rmeta: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
