/root/repo/target/debug/deps/hostsim-d77199e5935b44bf.d: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libhostsim-d77199e5935b44bf.rmeta: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs Cargo.toml

crates/hostsim/src/lib.rs:
crates/hostsim/src/accel.rs:
crates/hostsim/src/cpu.rs:
crates/hostsim/src/gpu.rs:
crates/hostsim/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
