/root/repo/target/debug/deps/kernels-115617098b6348f6.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-115617098b6348f6.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
