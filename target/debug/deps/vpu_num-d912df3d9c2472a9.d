/root/repo/target/debug/deps/vpu_num-d912df3d9c2472a9.d: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/debug/deps/libvpu_num-d912df3d9c2472a9.rlib: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/debug/deps/libvpu_num-d912df3d9c2472a9.rmeta: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs

crates/num/src/lib.rs:
crates/num/src/half.rs:
crates/num/src/rng.rs:
crates/num/src/stats.rs:
