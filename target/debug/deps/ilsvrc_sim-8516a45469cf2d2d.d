/root/repo/target/debug/deps/ilsvrc_sim-8516a45469cf2d2d.d: crates/dataset/src/lib.rs crates/dataset/src/calibrate.rs crates/dataset/src/dataset.rs crates/dataset/src/image.rs crates/dataset/src/ppm.rs crates/dataset/src/pretrain.rs crates/dataset/src/synset.rs crates/dataset/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libilsvrc_sim-8516a45469cf2d2d.rmeta: crates/dataset/src/lib.rs crates/dataset/src/calibrate.rs crates/dataset/src/dataset.rs crates/dataset/src/image.rs crates/dataset/src/ppm.rs crates/dataset/src/pretrain.rs crates/dataset/src/synset.rs crates/dataset/src/transform.rs Cargo.toml

crates/dataset/src/lib.rs:
crates/dataset/src/calibrate.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/image.rs:
crates/dataset/src/ppm.rs:
crates/dataset/src/pretrain.rs:
crates/dataset/src/synset.rs:
crates/dataset/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
