/root/repo/target/debug/deps/serde_derive-5dee54e8e83848d6.d: compat/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-5dee54e8e83848d6.rmeta: compat/serde_derive/src/lib.rs Cargo.toml

compat/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
