/root/repo/target/debug/deps/properties-cce08cd4476da359.d: crates/desim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-cce08cd4476da359.rmeta: crates/desim/tests/properties.rs Cargo.toml

crates/desim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
