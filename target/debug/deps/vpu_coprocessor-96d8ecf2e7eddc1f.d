/root/repo/target/debug/deps/vpu_coprocessor-96d8ecf2e7eddc1f.d: src/lib.rs

/root/repo/target/debug/deps/libvpu_coprocessor-96d8ecf2e7eddc1f.rlib: src/lib.rs

/root/repo/target/debug/deps/libvpu_coprocessor-96d8ecf2e7eddc1f.rmeta: src/lib.rs

src/lib.rs:
