/root/repo/target/debug/deps/bytes-b04c767eebda4746.d: compat/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b04c767eebda4746.rlib: compat/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b04c767eebda4746.rmeta: compat/bytes/src/lib.rs

compat/bytes/src/lib.rs:
