/root/repo/target/debug/deps/proptest-310dc7ee22599f50.d: compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-310dc7ee22599f50.rmeta: compat/proptest/src/lib.rs Cargo.toml

compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
