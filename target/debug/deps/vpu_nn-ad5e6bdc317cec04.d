/root/repo/target/debug/deps/vpu_nn-ad5e6bdc317cec04.d: crates/nn/src/lib.rs crates/nn/src/builder.rs crates/nn/src/cost.rs crates/nn/src/googlenet.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/optimize.rs crates/nn/src/prototxt.rs crates/nn/src/weights.rs crates/nn/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libvpu_nn-ad5e6bdc317cec04.rmeta: crates/nn/src/lib.rs crates/nn/src/builder.rs crates/nn/src/cost.rs crates/nn/src/googlenet.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/optimize.rs crates/nn/src/prototxt.rs crates/nn/src/weights.rs crates/nn/src/zoo.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/builder.rs:
crates/nn/src/cost.rs:
crates/nn/src/googlenet.rs:
crates/nn/src/graph.rs:
crates/nn/src/init.rs:
crates/nn/src/layer.rs:
crates/nn/src/optimize.rs:
crates/nn/src/prototxt.rs:
crates/nn/src/weights.rs:
crates/nn/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
