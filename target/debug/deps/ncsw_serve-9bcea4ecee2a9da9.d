/root/repo/target/debug/deps/ncsw_serve-9bcea4ecee2a9da9.d: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libncsw_serve-9bcea4ecee2a9da9.rmeta: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/fleet.rs:
crates/serve/src/histogram.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
