/root/repo/target/debug/deps/desim-6ab7a3030447fbb1.d: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/debug/deps/libdesim-6ab7a3030447fbb1.rlib: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/debug/deps/libdesim-6ab7a3030447fbb1.rmeta: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs

crates/desim/src/lib.rs:
crates/desim/src/queue.rs:
crates/desim/src/resource.rs:
crates/desim/src/time.rs:
crates/desim/src/trace.rs:
