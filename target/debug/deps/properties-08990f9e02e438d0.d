/root/repo/target/debug/deps/properties-08990f9e02e438d0.d: crates/serve/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-08990f9e02e438d0.rmeta: crates/serve/tests/properties.rs Cargo.toml

crates/serve/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
