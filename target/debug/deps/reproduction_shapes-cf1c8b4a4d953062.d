/root/repo/target/debug/deps/reproduction_shapes-cf1c8b4a4d953062.d: tests/reproduction_shapes.rs

/root/repo/target/debug/deps/reproduction_shapes-cf1c8b4a4d953062: tests/reproduction_shapes.rs

tests/reproduction_shapes.rs:
