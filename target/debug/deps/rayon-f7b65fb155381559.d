/root/repo/target/debug/deps/rayon-f7b65fb155381559.d: compat/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-f7b65fb155381559.rlib: compat/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-f7b65fb155381559.rmeta: compat/rayon/src/lib.rs

compat/rayon/src/lib.rs:
