/root/repo/target/debug/deps/ncsw-ca1e67b6031c45d0.d: crates/core/src/bin/ncsw.rs Cargo.toml

/root/repo/target/debug/deps/libncsw-ca1e67b6031c45d0.rmeta: crates/core/src/bin/ncsw.rs Cargo.toml

crates/core/src/bin/ncsw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
