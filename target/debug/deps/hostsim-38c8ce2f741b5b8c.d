/root/repo/target/debug/deps/hostsim-38c8ce2f741b5b8c.d: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs

/root/repo/target/debug/deps/libhostsim-38c8ce2f741b5b8c.rlib: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs

/root/repo/target/debug/deps/libhostsim-38c8ce2f741b5b8c.rmeta: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs

crates/hostsim/src/lib.rs:
crates/hostsim/src/accel.rs:
crates/hostsim/src/cpu.rs:
crates/hostsim/src/gpu.rs:
crates/hostsim/src/power.rs:
