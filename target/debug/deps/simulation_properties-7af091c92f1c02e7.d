/root/repo/target/debug/deps/simulation_properties-7af091c92f1c02e7.d: tests/simulation_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation_properties-7af091c92f1c02e7.rmeta: tests/simulation_properties.rs Cargo.toml

tests/simulation_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
