/root/repo/target/debug/deps/vpu_num-0a4ad3c9b8df11bd.d: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libvpu_num-0a4ad3c9b8df11bd.rmeta: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs Cargo.toml

crates/num/src/lib.rs:
crates/num/src/half.rs:
crates/num/src/rng.rs:
crates/num/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
