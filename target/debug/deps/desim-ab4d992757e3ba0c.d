/root/repo/target/debug/deps/desim-ab4d992757e3ba0c.d: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdesim-ab4d992757e3ba0c.rmeta: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs Cargo.toml

crates/desim/src/lib.rs:
crates/desim/src/queue.rs:
crates/desim/src/resource.rs:
crates/desim/src/time.rs:
crates/desim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
