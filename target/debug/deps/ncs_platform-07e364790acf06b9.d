/root/repo/target/debug/deps/ncs_platform-07e364790acf06b9.d: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs Cargo.toml

/root/repo/target/debug/deps/libncs_platform-07e364790acf06b9.rmeta: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs Cargo.toml

crates/ncs/src/lib.rs:
crates/ncs/src/api.rs:
crates/ncs/src/api2.rs:
crates/ncs/src/device.rs:
crates/ncs/src/fleet.rs:
crates/ncs/src/graphfile.rs:
crates/ncs/src/usb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
