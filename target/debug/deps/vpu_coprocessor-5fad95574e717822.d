/root/repo/target/debug/deps/vpu_coprocessor-5fad95574e717822.d: src/lib.rs

/root/repo/target/debug/deps/libvpu_coprocessor-5fad95574e717822.rlib: src/lib.rs

/root/repo/target/debug/deps/libvpu_coprocessor-5fad95574e717822.rmeta: src/lib.rs

src/lib.rs:
