/root/repo/target/debug/deps/serde_derive-c6470c46408e005a.d: compat/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-c6470c46408e005a.so: compat/serde_derive/src/lib.rs Cargo.toml

compat/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
