/root/repo/target/debug/deps/determinism-f012d18b3ed619af.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-f012d18b3ed619af: tests/determinism.rs

tests/determinism.rs:
