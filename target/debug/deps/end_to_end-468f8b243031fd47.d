/root/repo/target/debug/deps/end_to_end-468f8b243031fd47.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-468f8b243031fd47: tests/end_to_end.rs

tests/end_to_end.rs:
