/root/repo/target/debug/deps/rand_chacha-ad5b872ff8da4d84.d: compat/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-ad5b872ff8da4d84.rmeta: compat/rand_chacha/src/lib.rs Cargo.toml

compat/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
