/root/repo/target/debug/deps/serde-782385ec10e2e1a0.d: compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-782385ec10e2e1a0.rlib: compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-782385ec10e2e1a0.rmeta: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
