/root/repo/target/debug/deps/toolchain-7735882ee583b82e.d: tests/toolchain.rs Cargo.toml

/root/repo/target/debug/deps/libtoolchain-7735882ee583b82e.rmeta: tests/toolchain.rs Cargo.toml

tests/toolchain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
