/root/repo/target/debug/deps/serde_json-996464e40cc4d7e7.d: compat/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-996464e40cc4d7e7.rmeta: compat/serde_json/src/lib.rs Cargo.toml

compat/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
