/root/repo/target/debug/deps/vpu_tensor-c7f5e2477347cb4c.d: crates/tensor/src/lib.rs crates/tensor/src/element.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/dense.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/im2col.rs crates/tensor/src/kernels/lrn.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libvpu_tensor-c7f5e2477347cb4c.rmeta: crates/tensor/src/lib.rs crates/tensor/src/element.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/dense.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/im2col.rs crates/tensor/src/kernels/lrn.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/element.rs:
crates/tensor/src/kernels/mod.rs:
crates/tensor/src/kernels/activation.rs:
crates/tensor/src/kernels/conv.rs:
crates/tensor/src/kernels/dense.rs:
crates/tensor/src/kernels/gemm.rs:
crates/tensor/src/kernels/im2col.rs:
crates/tensor/src/kernels/lrn.rs:
crates/tensor/src/kernels/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
