/root/repo/target/debug/deps/conv_properties-db214e743c20a83c.d: crates/tensor/tests/conv_properties.rs Cargo.toml

/root/repo/target/debug/deps/libconv_properties-db214e743c20a83c.rmeta: crates/tensor/tests/conv_properties.rs Cargo.toml

crates/tensor/tests/conv_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
