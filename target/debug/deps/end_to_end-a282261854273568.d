/root/repo/target/debug/deps/end_to_end-a282261854273568.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a282261854273568: tests/end_to_end.rs

tests/end_to_end.rs:
