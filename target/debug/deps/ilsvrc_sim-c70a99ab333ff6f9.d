/root/repo/target/debug/deps/ilsvrc_sim-c70a99ab333ff6f9.d: crates/dataset/src/lib.rs crates/dataset/src/calibrate.rs crates/dataset/src/dataset.rs crates/dataset/src/image.rs crates/dataset/src/ppm.rs crates/dataset/src/pretrain.rs crates/dataset/src/synset.rs crates/dataset/src/transform.rs

/root/repo/target/debug/deps/libilsvrc_sim-c70a99ab333ff6f9.rlib: crates/dataset/src/lib.rs crates/dataset/src/calibrate.rs crates/dataset/src/dataset.rs crates/dataset/src/image.rs crates/dataset/src/ppm.rs crates/dataset/src/pretrain.rs crates/dataset/src/synset.rs crates/dataset/src/transform.rs

/root/repo/target/debug/deps/libilsvrc_sim-c70a99ab333ff6f9.rmeta: crates/dataset/src/lib.rs crates/dataset/src/calibrate.rs crates/dataset/src/dataset.rs crates/dataset/src/image.rs crates/dataset/src/ppm.rs crates/dataset/src/pretrain.rs crates/dataset/src/synset.rs crates/dataset/src/transform.rs

crates/dataset/src/lib.rs:
crates/dataset/src/calibrate.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/image.rs:
crates/dataset/src/ppm.rs:
crates/dataset/src/pretrain.rs:
crates/dataset/src/synset.rs:
crates/dataset/src/transform.rs:
