/root/repo/target/debug/deps/serde_derive-85e455aec2f6c93e.d: compat/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-85e455aec2f6c93e.rmeta: compat/serde_derive/src/lib.rs Cargo.toml

compat/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
