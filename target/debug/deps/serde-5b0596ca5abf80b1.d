/root/repo/target/debug/deps/serde-5b0596ca5abf80b1.d: compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-5b0596ca5abf80b1.rmeta: compat/serde/src/lib.rs Cargo.toml

compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
