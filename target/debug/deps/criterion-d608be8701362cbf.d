/root/repo/target/debug/deps/criterion-d608be8701362cbf.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-d608be8701362cbf.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
