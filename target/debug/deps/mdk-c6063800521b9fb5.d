/root/repo/target/debug/deps/mdk-c6063800521b9fb5.d: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs

/root/repo/target/debug/deps/libmdk-c6063800521b9fb5.rlib: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs

/root/repo/target/debug/deps/libmdk-c6063800521b9fb5.rmeta: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs

crates/mdk/src/lib.rs:
crates/mdk/src/gemm.rs:
crates/mdk/src/offload.rs:
crates/mdk/src/tiling.rs:
