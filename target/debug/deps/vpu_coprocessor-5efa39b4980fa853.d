/root/repo/target/debug/deps/vpu_coprocessor-5efa39b4980fa853.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvpu_coprocessor-5efa39b4980fa853.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
