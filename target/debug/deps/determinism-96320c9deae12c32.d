/root/repo/target/debug/deps/determinism-96320c9deae12c32.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-96320c9deae12c32: tests/determinism.rs

tests/determinism.rs:
