/root/repo/target/debug/examples/precision_study-6a211aa74d36ff20.d: examples/precision_study.rs Cargo.toml

/root/repo/target/debug/examples/libprecision_study-6a211aa74d36ff20.rmeta: examples/precision_study.rs Cargo.toml

examples/precision_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
