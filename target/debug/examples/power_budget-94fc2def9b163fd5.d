/root/repo/target/debug/examples/power_budget-94fc2def9b163fd5.d: examples/power_budget.rs

/root/repo/target/debug/examples/power_budget-94fc2def9b163fd5: examples/power_budget.rs

examples/power_budget.rs:
