/root/repo/target/debug/examples/offload_overlap-20b0192a94decd7b.d: examples/offload_overlap.rs Cargo.toml

/root/repo/target/debug/examples/liboffload_overlap-20b0192a94decd7b.rmeta: examples/offload_overlap.rs Cargo.toml

examples/offload_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
