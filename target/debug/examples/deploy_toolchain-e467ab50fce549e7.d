/root/repo/target/debug/examples/deploy_toolchain-e467ab50fce549e7.d: examples/deploy_toolchain.rs

/root/repo/target/debug/examples/deploy_toolchain-e467ab50fce549e7: examples/deploy_toolchain.rs

examples/deploy_toolchain.rs:
