/root/repo/target/debug/examples/offload_overlap-8a839ba64cfd6d26.d: examples/offload_overlap.rs

/root/repo/target/debug/examples/offload_overlap-8a839ba64cfd6d26: examples/offload_overlap.rs

examples/offload_overlap.rs:
