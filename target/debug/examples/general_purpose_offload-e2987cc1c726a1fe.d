/root/repo/target/debug/examples/general_purpose_offload-e2987cc1c726a1fe.d: examples/general_purpose_offload.rs

/root/repo/target/debug/examples/general_purpose_offload-e2987cc1c726a1fe: examples/general_purpose_offload.rs

examples/general_purpose_offload.rs:
