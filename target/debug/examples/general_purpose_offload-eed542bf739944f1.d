/root/repo/target/debug/examples/general_purpose_offload-eed542bf739944f1.d: examples/general_purpose_offload.rs Cargo.toml

/root/repo/target/debug/examples/libgeneral_purpose_offload-eed542bf739944f1.rmeta: examples/general_purpose_offload.rs Cargo.toml

examples/general_purpose_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
