/root/repo/target/debug/examples/deploy_toolchain-355ba8ccced1a268.d: examples/deploy_toolchain.rs

/root/repo/target/debug/examples/deploy_toolchain-355ba8ccced1a268: examples/deploy_toolchain.rs

examples/deploy_toolchain.rs:
