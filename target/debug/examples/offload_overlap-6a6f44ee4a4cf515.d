/root/repo/target/debug/examples/offload_overlap-6a6f44ee4a4cf515.d: examples/offload_overlap.rs

/root/repo/target/debug/examples/offload_overlap-6a6f44ee4a4cf515: examples/offload_overlap.rs

examples/offload_overlap.rs:
