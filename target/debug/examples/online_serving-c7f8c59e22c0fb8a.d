/root/repo/target/debug/examples/online_serving-c7f8c59e22c0fb8a.d: examples/online_serving.rs Cargo.toml

/root/repo/target/debug/examples/libonline_serving-c7f8c59e22c0fb8a.rmeta: examples/online_serving.rs Cargo.toml

examples/online_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
