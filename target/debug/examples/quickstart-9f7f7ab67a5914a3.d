/root/repo/target/debug/examples/quickstart-9f7f7ab67a5914a3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9f7f7ab67a5914a3: examples/quickstart.rs

examples/quickstart.rs:
