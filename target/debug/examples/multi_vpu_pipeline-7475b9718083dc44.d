/root/repo/target/debug/examples/multi_vpu_pipeline-7475b9718083dc44.d: examples/multi_vpu_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_vpu_pipeline-7475b9718083dc44.rmeta: examples/multi_vpu_pipeline.rs Cargo.toml

examples/multi_vpu_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
