/root/repo/target/debug/examples/multi_vpu_pipeline-9a55f215681f47c7.d: examples/multi_vpu_pipeline.rs

/root/repo/target/debug/examples/multi_vpu_pipeline-9a55f215681f47c7: examples/multi_vpu_pipeline.rs

examples/multi_vpu_pipeline.rs:
