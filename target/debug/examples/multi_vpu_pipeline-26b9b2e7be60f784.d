/root/repo/target/debug/examples/multi_vpu_pipeline-26b9b2e7be60f784.d: examples/multi_vpu_pipeline.rs

/root/repo/target/debug/examples/multi_vpu_pipeline-26b9b2e7be60f784: examples/multi_vpu_pipeline.rs

examples/multi_vpu_pipeline.rs:
