/root/repo/target/debug/examples/deploy_toolchain-a7234e356d61805c.d: examples/deploy_toolchain.rs Cargo.toml

/root/repo/target/debug/examples/libdeploy_toolchain-a7234e356d61805c.rmeta: examples/deploy_toolchain.rs Cargo.toml

examples/deploy_toolchain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
