/root/repo/target/debug/examples/quickstart-68e14df895bf0a20.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-68e14df895bf0a20: examples/quickstart.rs

examples/quickstart.rs:
