/root/repo/target/debug/examples/precision_study-8588482f8f047c9c.d: examples/precision_study.rs

/root/repo/target/debug/examples/precision_study-8588482f8f047c9c: examples/precision_study.rs

examples/precision_study.rs:
