/root/repo/target/debug/examples/online_serving-fde0c01fbbbe5bf5.d: examples/online_serving.rs

/root/repo/target/debug/examples/online_serving-fde0c01fbbbe5bf5: examples/online_serving.rs

examples/online_serving.rs:
