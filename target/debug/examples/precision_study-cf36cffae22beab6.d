/root/repo/target/debug/examples/precision_study-cf36cffae22beab6.d: examples/precision_study.rs

/root/repo/target/debug/examples/precision_study-cf36cffae22beab6: examples/precision_study.rs

examples/precision_study.rs:
