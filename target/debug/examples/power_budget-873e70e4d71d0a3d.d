/root/repo/target/debug/examples/power_budget-873e70e4d71d0a3d.d: examples/power_budget.rs

/root/repo/target/debug/examples/power_budget-873e70e4d71d0a3d: examples/power_budget.rs

examples/power_budget.rs:
