/root/repo/target/debug/examples/general_purpose_offload-88fe5dfc861634aa.d: examples/general_purpose_offload.rs

/root/repo/target/debug/examples/general_purpose_offload-88fe5dfc861634aa: examples/general_purpose_offload.rs

examples/general_purpose_offload.rs:
