/root/repo/target/debug/examples/quickstart-f81bb72307fb2f88.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f81bb72307fb2f88.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
