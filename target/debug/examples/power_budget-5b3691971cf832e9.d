/root/repo/target/debug/examples/power_budget-5b3691971cf832e9.d: examples/power_budget.rs Cargo.toml

/root/repo/target/debug/examples/libpower_budget-5b3691971cf832e9.rmeta: examples/power_budget.rs Cargo.toml

examples/power_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
