/root/repo/target/release/deps/repro-22be62571f8cbec2.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-22be62571f8cbec2: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
