/root/repo/target/release/deps/repro-363d0c9818b84558.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-363d0c9818b84558: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
