/root/repo/target/release/deps/rayon-35eca4c81bb6d639.d: compat/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-35eca4c81bb6d639: compat/rayon/src/lib.rs

compat/rayon/src/lib.rs:
