/root/repo/target/release/deps/criterion-e00a9b4657023818.d: compat/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-e00a9b4657023818: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
