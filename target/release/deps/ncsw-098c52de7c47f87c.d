/root/repo/target/release/deps/ncsw-098c52de7c47f87c.d: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs

/root/repo/target/release/deps/libncsw-098c52de7c47f87c.rlib: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs

/root/repo/target/release/deps/libncsw-098c52de7c47f87c.rmeta: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs

crates/core/src/lib.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/multivpu.rs:
crates/core/src/runner.rs:
crates/core/src/service.rs:
crates/core/src/source.rs:
crates/core/src/target.rs:
