/root/repo/target/release/deps/bytes-be27d83f9809cbe3.d: compat/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-be27d83f9809cbe3.rlib: compat/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-be27d83f9809cbe3.rmeta: compat/bytes/src/lib.rs

compat/bytes/src/lib.rs:
