/root/repo/target/release/deps/properties-4279db0804367e67.d: crates/serve/tests/properties.rs

/root/repo/target/release/deps/properties-4279db0804367e67: crates/serve/tests/properties.rs

crates/serve/tests/properties.rs:
