/root/repo/target/release/deps/vpu_num-76f342a4ba1d05bc.d: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/release/deps/vpu_num-76f342a4ba1d05bc: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs

crates/num/src/lib.rs:
crates/num/src/half.rs:
crates/num/src/rng.rs:
crates/num/src/stats.rs:
