/root/repo/target/release/deps/serde_derive-b9794722e8d93288.d: compat/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-b9794722e8d93288.so: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
