/root/repo/target/release/deps/determinism-536cd93efe3c5a50.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-536cd93efe3c5a50: tests/determinism.rs

tests/determinism.rs:
