/root/repo/target/release/deps/criterion-2710cf4e760157fc.d: compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-2710cf4e760157fc.rlib: compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-2710cf4e760157fc.rmeta: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
