/root/repo/target/release/deps/desim-15c4fb420701dd98.d: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/release/deps/desim-15c4fb420701dd98: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs

crates/desim/src/lib.rs:
crates/desim/src/queue.rs:
crates/desim/src/resource.rs:
crates/desim/src/time.rs:
crates/desim/src/trace.rs:
