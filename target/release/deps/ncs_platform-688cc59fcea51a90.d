/root/repo/target/release/deps/ncs_platform-688cc59fcea51a90.d: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs

/root/repo/target/release/deps/ncs_platform-688cc59fcea51a90: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs

crates/ncs/src/lib.rs:
crates/ncs/src/api.rs:
crates/ncs/src/api2.rs:
crates/ncs/src/device.rs:
crates/ncs/src/fleet.rs:
crates/ncs/src/graphfile.rs:
crates/ncs/src/usb.rs:
