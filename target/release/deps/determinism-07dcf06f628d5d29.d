/root/repo/target/release/deps/determinism-07dcf06f628d5d29.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-07dcf06f628d5d29: tests/determinism.rs

tests/determinism.rs:
