/root/repo/target/release/deps/desim-c295529f456c3d68.d: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/release/deps/libdesim-c295529f456c3d68.rlib: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/release/deps/libdesim-c295529f456c3d68.rmeta: crates/desim/src/lib.rs crates/desim/src/queue.rs crates/desim/src/resource.rs crates/desim/src/time.rs crates/desim/src/trace.rs

crates/desim/src/lib.rs:
crates/desim/src/queue.rs:
crates/desim/src/resource.rs:
crates/desim/src/time.rs:
crates/desim/src/trace.rs:
