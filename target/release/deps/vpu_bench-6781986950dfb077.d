/root/repo/target/release/deps/vpu_bench-6781986950dfb077.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/anchors.rs crates/bench/src/csv.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/future_work.rs crates/bench/src/layers.rs crates/bench/src/mdk_gemm.rs crates/bench/src/power_bench.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/serve_bench.rs crates/bench/src/stream_bench.rs crates/bench/src/timeline.rs crates/bench/src/zoo_bench.rs

/root/repo/target/release/deps/vpu_bench-6781986950dfb077: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/anchors.rs crates/bench/src/csv.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/future_work.rs crates/bench/src/layers.rs crates/bench/src/mdk_gemm.rs crates/bench/src/power_bench.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/serve_bench.rs crates/bench/src/stream_bench.rs crates/bench/src/timeline.rs crates/bench/src/zoo_bench.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/anchors.rs:
crates/bench/src/csv.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/future_work.rs:
crates/bench/src/layers.rs:
crates/bench/src/mdk_gemm.rs:
crates/bench/src/power_bench.rs:
crates/bench/src/report.rs:
crates/bench/src/scale.rs:
crates/bench/src/serve_bench.rs:
crates/bench/src/stream_bench.rs:
crates/bench/src/timeline.rs:
crates/bench/src/zoo_bench.rs:
