/root/repo/target/release/deps/vpu_coprocessor-26ddb2e23e5ba14a.d: src/lib.rs

/root/repo/target/release/deps/libvpu_coprocessor-26ddb2e23e5ba14a.rlib: src/lib.rs

/root/repo/target/release/deps/libvpu_coprocessor-26ddb2e23e5ba14a.rmeta: src/lib.rs

src/lib.rs:
