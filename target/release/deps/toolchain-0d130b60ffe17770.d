/root/repo/target/release/deps/toolchain-0d130b60ffe17770.d: tests/toolchain.rs

/root/repo/target/release/deps/toolchain-0d130b60ffe17770: tests/toolchain.rs

tests/toolchain.rs:
