/root/repo/target/release/deps/ncsw-08981493a76aafb8.d: crates/core/src/bin/ncsw.rs

/root/repo/target/release/deps/ncsw-08981493a76aafb8: crates/core/src/bin/ncsw.rs

crates/core/src/bin/ncsw.rs:
