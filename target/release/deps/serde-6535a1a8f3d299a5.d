/root/repo/target/release/deps/serde-6535a1a8f3d299a5.d: compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-6535a1a8f3d299a5.rlib: compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-6535a1a8f3d299a5.rmeta: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
