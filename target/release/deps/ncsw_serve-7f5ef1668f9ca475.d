/root/repo/target/release/deps/ncsw_serve-7f5ef1668f9ca475.d: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/release/deps/ncsw_serve-7f5ef1668f9ca475: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/fleet.rs:
crates/serve/src/histogram.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
