/root/repo/target/release/deps/rand-f5b53c391b15df9d.d: compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-f5b53c391b15df9d.rlib: compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-f5b53c391b15df9d.rmeta: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
