/root/repo/target/release/deps/end_to_end-74f2c42fddd8cc24.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-74f2c42fddd8cc24: tests/end_to_end.rs

tests/end_to_end.rs:
