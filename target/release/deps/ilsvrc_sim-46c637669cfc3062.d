/root/repo/target/release/deps/ilsvrc_sim-46c637669cfc3062.d: crates/dataset/src/lib.rs crates/dataset/src/calibrate.rs crates/dataset/src/dataset.rs crates/dataset/src/image.rs crates/dataset/src/ppm.rs crates/dataset/src/pretrain.rs crates/dataset/src/synset.rs crates/dataset/src/transform.rs

/root/repo/target/release/deps/libilsvrc_sim-46c637669cfc3062.rlib: crates/dataset/src/lib.rs crates/dataset/src/calibrate.rs crates/dataset/src/dataset.rs crates/dataset/src/image.rs crates/dataset/src/ppm.rs crates/dataset/src/pretrain.rs crates/dataset/src/synset.rs crates/dataset/src/transform.rs

/root/repo/target/release/deps/libilsvrc_sim-46c637669cfc3062.rmeta: crates/dataset/src/lib.rs crates/dataset/src/calibrate.rs crates/dataset/src/dataset.rs crates/dataset/src/image.rs crates/dataset/src/ppm.rs crates/dataset/src/pretrain.rs crates/dataset/src/synset.rs crates/dataset/src/transform.rs

crates/dataset/src/lib.rs:
crates/dataset/src/calibrate.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/image.rs:
crates/dataset/src/ppm.rs:
crates/dataset/src/pretrain.rs:
crates/dataset/src/synset.rs:
crates/dataset/src/transform.rs:
