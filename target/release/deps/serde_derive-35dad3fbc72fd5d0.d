/root/repo/target/release/deps/serde_derive-35dad3fbc72fd5d0.d: compat/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-35dad3fbc72fd5d0: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
