/root/repo/target/release/deps/serde-47856395d7365715.d: compat/serde/src/lib.rs

/root/repo/target/release/deps/serde-47856395d7365715: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
