/root/repo/target/release/deps/mdk-074efba3e0943152.d: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs

/root/repo/target/release/deps/libmdk-074efba3e0943152.rlib: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs

/root/repo/target/release/deps/libmdk-074efba3e0943152.rmeta: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs

crates/mdk/src/lib.rs:
crates/mdk/src/gemm.rs:
crates/mdk/src/offload.rs:
crates/mdk/src/tiling.rs:
