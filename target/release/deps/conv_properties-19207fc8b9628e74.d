/root/repo/target/release/deps/conv_properties-19207fc8b9628e74.d: crates/tensor/tests/conv_properties.rs

/root/repo/target/release/deps/conv_properties-19207fc8b9628e74: crates/tensor/tests/conv_properties.rs

crates/tensor/tests/conv_properties.rs:
