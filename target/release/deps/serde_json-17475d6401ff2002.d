/root/repo/target/release/deps/serde_json-17475d6401ff2002.d: compat/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-17475d6401ff2002.rlib: compat/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-17475d6401ff2002.rmeta: compat/serde_json/src/lib.rs

compat/serde_json/src/lib.rs:
