/root/repo/target/release/deps/toolchain-f2ac2a63c27eefaf.d: tests/toolchain.rs

/root/repo/target/release/deps/toolchain-f2ac2a63c27eefaf: tests/toolchain.rs

tests/toolchain.rs:
