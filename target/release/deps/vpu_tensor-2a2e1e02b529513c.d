/root/repo/target/release/deps/vpu_tensor-2a2e1e02b529513c.d: crates/tensor/src/lib.rs crates/tensor/src/element.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/dense.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/im2col.rs crates/tensor/src/kernels/lrn.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/vpu_tensor-2a2e1e02b529513c: crates/tensor/src/lib.rs crates/tensor/src/element.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/dense.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/im2col.rs crates/tensor/src/kernels/lrn.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/element.rs:
crates/tensor/src/kernels/mod.rs:
crates/tensor/src/kernels/activation.rs:
crates/tensor/src/kernels/conv.rs:
crates/tensor/src/kernels/dense.rs:
crates/tensor/src/kernels/gemm.rs:
crates/tensor/src/kernels/im2col.rs:
crates/tensor/src/kernels/lrn.rs:
crates/tensor/src/kernels/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
