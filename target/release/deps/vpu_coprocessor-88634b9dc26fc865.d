/root/repo/target/release/deps/vpu_coprocessor-88634b9dc26fc865.d: src/lib.rs

/root/repo/target/release/deps/vpu_coprocessor-88634b9dc26fc865: src/lib.rs

src/lib.rs:
