/root/repo/target/release/deps/vpu_tensor-a9bba9af4bfcbe9a.d: crates/tensor/src/lib.rs crates/tensor/src/element.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/dense.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/im2col.rs crates/tensor/src/kernels/lrn.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libvpu_tensor-a9bba9af4bfcbe9a.rlib: crates/tensor/src/lib.rs crates/tensor/src/element.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/dense.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/im2col.rs crates/tensor/src/kernels/lrn.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libvpu_tensor-a9bba9af4bfcbe9a.rmeta: crates/tensor/src/lib.rs crates/tensor/src/element.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/conv.rs crates/tensor/src/kernels/dense.rs crates/tensor/src/kernels/gemm.rs crates/tensor/src/kernels/im2col.rs crates/tensor/src/kernels/lrn.rs crates/tensor/src/kernels/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/element.rs:
crates/tensor/src/kernels/mod.rs:
crates/tensor/src/kernels/activation.rs:
crates/tensor/src/kernels/conv.rs:
crates/tensor/src/kernels/dense.rs:
crates/tensor/src/kernels/gemm.rs:
crates/tensor/src/kernels/im2col.rs:
crates/tensor/src/kernels/lrn.rs:
crates/tensor/src/kernels/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
