/root/repo/target/release/deps/queueing-772d5819013fe0a0.d: crates/serve/tests/queueing.rs

/root/repo/target/release/deps/queueing-772d5819013fe0a0: crates/serve/tests/queueing.rs

crates/serve/tests/queueing.rs:
