/root/repo/target/release/deps/serde_json-dc330bda9f6c5723.d: compat/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-dc330bda9f6c5723: compat/serde_json/src/lib.rs

compat/serde_json/src/lib.rs:
