/root/repo/target/release/deps/vpu_bench-a5571c564fd235da.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/anchors.rs crates/bench/src/csv.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/future_work.rs crates/bench/src/layers.rs crates/bench/src/mdk_gemm.rs crates/bench/src/power_bench.rs crates/bench/src/stream_bench.rs crates/bench/src/zoo_bench.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/timeline.rs

/root/repo/target/release/deps/libvpu_bench-a5571c564fd235da.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/anchors.rs crates/bench/src/csv.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/future_work.rs crates/bench/src/layers.rs crates/bench/src/mdk_gemm.rs crates/bench/src/power_bench.rs crates/bench/src/stream_bench.rs crates/bench/src/zoo_bench.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/timeline.rs

/root/repo/target/release/deps/libvpu_bench-a5571c564fd235da.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/anchors.rs crates/bench/src/csv.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/future_work.rs crates/bench/src/layers.rs crates/bench/src/mdk_gemm.rs crates/bench/src/power_bench.rs crates/bench/src/stream_bench.rs crates/bench/src/zoo_bench.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/timeline.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/anchors.rs:
crates/bench/src/csv.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/future_work.rs:
crates/bench/src/layers.rs:
crates/bench/src/mdk_gemm.rs:
crates/bench/src/power_bench.rs:
crates/bench/src/stream_bench.rs:
crates/bench/src/zoo_bench.rs:
crates/bench/src/report.rs:
crates/bench/src/scale.rs:
crates/bench/src/timeline.rs:
