/root/repo/target/release/deps/vpu_coprocessor-ec0eb28415f06a67.d: src/lib.rs

/root/repo/target/release/deps/libvpu_coprocessor-ec0eb28415f06a67.rlib: src/lib.rs

/root/repo/target/release/deps/libvpu_coprocessor-ec0eb28415f06a67.rmeta: src/lib.rs

src/lib.rs:
