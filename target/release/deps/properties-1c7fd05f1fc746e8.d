/root/repo/target/release/deps/properties-1c7fd05f1fc746e8.d: crates/desim/tests/properties.rs

/root/repo/target/release/deps/properties-1c7fd05f1fc746e8: crates/desim/tests/properties.rs

crates/desim/tests/properties.rs:
