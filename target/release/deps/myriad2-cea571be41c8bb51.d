/root/repo/target/release/deps/myriad2-cea571be41c8bb51.d: crates/myriad2/src/lib.rs crates/myriad2/src/arch.rs crates/myriad2/src/cmx.rs crates/myriad2/src/ddr.rs crates/myriad2/src/exec.rs crates/myriad2/src/power.rs crates/myriad2/src/roofline.rs crates/myriad2/src/shave.rs crates/myriad2/src/sipp.rs crates/myriad2/src/thermal.rs crates/myriad2/src/vliw.rs

/root/repo/target/release/deps/myriad2-cea571be41c8bb51: crates/myriad2/src/lib.rs crates/myriad2/src/arch.rs crates/myriad2/src/cmx.rs crates/myriad2/src/ddr.rs crates/myriad2/src/exec.rs crates/myriad2/src/power.rs crates/myriad2/src/roofline.rs crates/myriad2/src/shave.rs crates/myriad2/src/sipp.rs crates/myriad2/src/thermal.rs crates/myriad2/src/vliw.rs

crates/myriad2/src/lib.rs:
crates/myriad2/src/arch.rs:
crates/myriad2/src/cmx.rs:
crates/myriad2/src/ddr.rs:
crates/myriad2/src/exec.rs:
crates/myriad2/src/power.rs:
crates/myriad2/src/roofline.rs:
crates/myriad2/src/shave.rs:
crates/myriad2/src/sipp.rs:
crates/myriad2/src/thermal.rs:
crates/myriad2/src/vliw.rs:
