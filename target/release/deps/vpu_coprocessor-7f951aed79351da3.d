/root/repo/target/release/deps/vpu_coprocessor-7f951aed79351da3.d: src/lib.rs

/root/repo/target/release/deps/vpu_coprocessor-7f951aed79351da3: src/lib.rs

src/lib.rs:
