/root/repo/target/release/deps/ncs_platform-e09b36ae1a5a2080.d: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs

/root/repo/target/release/deps/libncs_platform-e09b36ae1a5a2080.rlib: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs

/root/repo/target/release/deps/libncs_platform-e09b36ae1a5a2080.rmeta: crates/ncs/src/lib.rs crates/ncs/src/api.rs crates/ncs/src/api2.rs crates/ncs/src/device.rs crates/ncs/src/fleet.rs crates/ncs/src/graphfile.rs crates/ncs/src/usb.rs

crates/ncs/src/lib.rs:
crates/ncs/src/api.rs:
crates/ncs/src/api2.rs:
crates/ncs/src/device.rs:
crates/ncs/src/fleet.rs:
crates/ncs/src/graphfile.rs:
crates/ncs/src/usb.rs:
