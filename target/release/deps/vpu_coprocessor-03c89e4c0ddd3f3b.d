/root/repo/target/release/deps/vpu_coprocessor-03c89e4c0ddd3f3b.d: src/lib.rs

/root/repo/target/release/deps/libvpu_coprocessor-03c89e4c0ddd3f3b.rlib: src/lib.rs

/root/repo/target/release/deps/libvpu_coprocessor-03c89e4c0ddd3f3b.rmeta: src/lib.rs

src/lib.rs:
