/root/repo/target/release/deps/rand-65515281646794f8.d: compat/rand/src/lib.rs

/root/repo/target/release/deps/rand-65515281646794f8: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
