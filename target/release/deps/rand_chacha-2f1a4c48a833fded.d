/root/repo/target/release/deps/rand_chacha-2f1a4c48a833fded.d: compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-2f1a4c48a833fded: compat/rand_chacha/src/lib.rs

compat/rand_chacha/src/lib.rs:
