/root/repo/target/release/deps/hostsim-694befb2dddfb54d.d: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs

/root/repo/target/release/deps/hostsim-694befb2dddfb54d: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs

crates/hostsim/src/lib.rs:
crates/hostsim/src/accel.rs:
crates/hostsim/src/cpu.rs:
crates/hostsim/src/gpu.rs:
crates/hostsim/src/power.rs:
