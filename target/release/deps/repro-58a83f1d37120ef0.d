/root/repo/target/release/deps/repro-58a83f1d37120ef0.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-58a83f1d37120ef0: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
