/root/repo/target/release/deps/proptest-4f10a948ad89510e.d: compat/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-4f10a948ad89510e: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
