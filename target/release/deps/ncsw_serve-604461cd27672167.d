/root/repo/target/release/deps/ncsw_serve-604461cd27672167.d: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/release/deps/libncsw_serve-604461cd27672167.rlib: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/release/deps/libncsw_serve-604461cd27672167.rmeta: crates/serve/src/lib.rs crates/serve/src/fleet.rs crates/serve/src/histogram.rs crates/serve/src/metrics.rs crates/serve/src/server.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/fleet.rs:
crates/serve/src/histogram.rs:
crates/serve/src/metrics.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
