/root/repo/target/release/deps/end_to_end-d587836c92d2815a.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-d587836c92d2815a: tests/end_to_end.rs

tests/end_to_end.rs:
