/root/repo/target/release/deps/simulation_properties-4ab39fdc4fec7022.d: tests/simulation_properties.rs

/root/repo/target/release/deps/simulation_properties-4ab39fdc4fec7022: tests/simulation_properties.rs

tests/simulation_properties.rs:
