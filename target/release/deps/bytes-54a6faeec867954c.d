/root/repo/target/release/deps/bytes-54a6faeec867954c.d: compat/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-54a6faeec867954c: compat/bytes/src/lib.rs

compat/bytes/src/lib.rs:
