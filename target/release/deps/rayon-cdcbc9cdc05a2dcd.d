/root/repo/target/release/deps/rayon-cdcbc9cdc05a2dcd.d: compat/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-cdcbc9cdc05a2dcd.rlib: compat/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-cdcbc9cdc05a2dcd.rmeta: compat/rayon/src/lib.rs

compat/rayon/src/lib.rs:
