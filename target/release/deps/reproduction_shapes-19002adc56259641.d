/root/repo/target/release/deps/reproduction_shapes-19002adc56259641.d: tests/reproduction_shapes.rs

/root/repo/target/release/deps/reproduction_shapes-19002adc56259641: tests/reproduction_shapes.rs

tests/reproduction_shapes.rs:
