/root/repo/target/release/deps/hostsim-1bf023f72c2ad77a.d: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs

/root/repo/target/release/deps/libhostsim-1bf023f72c2ad77a.rlib: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs

/root/repo/target/release/deps/libhostsim-1bf023f72c2ad77a.rmeta: crates/hostsim/src/lib.rs crates/hostsim/src/accel.rs crates/hostsim/src/cpu.rs crates/hostsim/src/gpu.rs crates/hostsim/src/power.rs

crates/hostsim/src/lib.rs:
crates/hostsim/src/accel.rs:
crates/hostsim/src/cpu.rs:
crates/hostsim/src/gpu.rs:
crates/hostsim/src/power.rs:
