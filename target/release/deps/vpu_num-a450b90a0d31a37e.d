/root/repo/target/release/deps/vpu_num-a450b90a0d31a37e.d: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/release/deps/libvpu_num-a450b90a0d31a37e.rlib: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs

/root/repo/target/release/deps/libvpu_num-a450b90a0d31a37e.rmeta: crates/num/src/lib.rs crates/num/src/half.rs crates/num/src/rng.rs crates/num/src/stats.rs

crates/num/src/lib.rs:
crates/num/src/half.rs:
crates/num/src/rng.rs:
crates/num/src/stats.rs:
