/root/repo/target/release/deps/proptest-5e799222cdfe1ebb.d: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-5e799222cdfe1ebb.rlib: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-5e799222cdfe1ebb.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
