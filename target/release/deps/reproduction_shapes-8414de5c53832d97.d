/root/repo/target/release/deps/reproduction_shapes-8414de5c53832d97.d: tests/reproduction_shapes.rs

/root/repo/target/release/deps/reproduction_shapes-8414de5c53832d97: tests/reproduction_shapes.rs

tests/reproduction_shapes.rs:
