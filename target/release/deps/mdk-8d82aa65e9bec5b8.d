/root/repo/target/release/deps/mdk-8d82aa65e9bec5b8.d: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs

/root/repo/target/release/deps/mdk-8d82aa65e9bec5b8: crates/mdk/src/lib.rs crates/mdk/src/gemm.rs crates/mdk/src/offload.rs crates/mdk/src/tiling.rs

crates/mdk/src/lib.rs:
crates/mdk/src/gemm.rs:
crates/mdk/src/offload.rs:
crates/mdk/src/tiling.rs:
