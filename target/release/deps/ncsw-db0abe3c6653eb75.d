/root/repo/target/release/deps/ncsw-db0abe3c6653eb75.d: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs

/root/repo/target/release/deps/ncsw-db0abe3c6653eb75: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/multivpu.rs crates/core/src/runner.rs crates/core/src/service.rs crates/core/src/source.rs crates/core/src/target.rs

crates/core/src/lib.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/multivpu.rs:
crates/core/src/runner.rs:
crates/core/src/service.rs:
crates/core/src/source.rs:
crates/core/src/target.rs:
