/root/repo/target/release/deps/rand_chacha-908d6e433f82fd67.d: compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-908d6e433f82fd67.rlib: compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-908d6e433f82fd67.rmeta: compat/rand_chacha/src/lib.rs

compat/rand_chacha/src/lib.rs:
