/root/repo/target/release/deps/simulation_properties-62e06aaf1ac556d3.d: tests/simulation_properties.rs

/root/repo/target/release/deps/simulation_properties-62e06aaf1ac556d3: tests/simulation_properties.rs

tests/simulation_properties.rs:
