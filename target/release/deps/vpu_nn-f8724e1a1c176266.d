/root/repo/target/release/deps/vpu_nn-f8724e1a1c176266.d: crates/nn/src/lib.rs crates/nn/src/builder.rs crates/nn/src/cost.rs crates/nn/src/googlenet.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/optimize.rs crates/nn/src/prototxt.rs crates/nn/src/weights.rs crates/nn/src/zoo.rs

/root/repo/target/release/deps/vpu_nn-f8724e1a1c176266: crates/nn/src/lib.rs crates/nn/src/builder.rs crates/nn/src/cost.rs crates/nn/src/googlenet.rs crates/nn/src/graph.rs crates/nn/src/init.rs crates/nn/src/layer.rs crates/nn/src/optimize.rs crates/nn/src/prototxt.rs crates/nn/src/weights.rs crates/nn/src/zoo.rs

crates/nn/src/lib.rs:
crates/nn/src/builder.rs:
crates/nn/src/cost.rs:
crates/nn/src/googlenet.rs:
crates/nn/src/graph.rs:
crates/nn/src/init.rs:
crates/nn/src/layer.rs:
crates/nn/src/optimize.rs:
crates/nn/src/prototxt.rs:
crates/nn/src/weights.rs:
crates/nn/src/zoo.rs:
