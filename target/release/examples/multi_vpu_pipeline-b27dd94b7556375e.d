/root/repo/target/release/examples/multi_vpu_pipeline-b27dd94b7556375e.d: examples/multi_vpu_pipeline.rs

/root/repo/target/release/examples/multi_vpu_pipeline-b27dd94b7556375e: examples/multi_vpu_pipeline.rs

examples/multi_vpu_pipeline.rs:
