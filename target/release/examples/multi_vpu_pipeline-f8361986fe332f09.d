/root/repo/target/release/examples/multi_vpu_pipeline-f8361986fe332f09.d: examples/multi_vpu_pipeline.rs

/root/repo/target/release/examples/multi_vpu_pipeline-f8361986fe332f09: examples/multi_vpu_pipeline.rs

examples/multi_vpu_pipeline.rs:
