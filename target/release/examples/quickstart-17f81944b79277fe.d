/root/repo/target/release/examples/quickstart-17f81944b79277fe.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-17f81944b79277fe: examples/quickstart.rs

examples/quickstart.rs:
