/root/repo/target/release/examples/power_budget-1d885597e56cd672.d: examples/power_budget.rs

/root/repo/target/release/examples/power_budget-1d885597e56cd672: examples/power_budget.rs

examples/power_budget.rs:
