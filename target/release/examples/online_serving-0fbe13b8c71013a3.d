/root/repo/target/release/examples/online_serving-0fbe13b8c71013a3.d: examples/online_serving.rs

/root/repo/target/release/examples/online_serving-0fbe13b8c71013a3: examples/online_serving.rs

examples/online_serving.rs:
