/root/repo/target/release/examples/general_purpose_offload-f23cb71c0cbb5430.d: examples/general_purpose_offload.rs

/root/repo/target/release/examples/general_purpose_offload-f23cb71c0cbb5430: examples/general_purpose_offload.rs

examples/general_purpose_offload.rs:
