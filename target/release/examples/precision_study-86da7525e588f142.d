/root/repo/target/release/examples/precision_study-86da7525e588f142.d: examples/precision_study.rs

/root/repo/target/release/examples/precision_study-86da7525e588f142: examples/precision_study.rs

examples/precision_study.rs:
