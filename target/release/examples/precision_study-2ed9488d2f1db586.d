/root/repo/target/release/examples/precision_study-2ed9488d2f1db586.d: examples/precision_study.rs

/root/repo/target/release/examples/precision_study-2ed9488d2f1db586: examples/precision_study.rs

examples/precision_study.rs:
