/root/repo/target/release/examples/power_budget-7e3a118de8bc95c3.d: examples/power_budget.rs

/root/repo/target/release/examples/power_budget-7e3a118de8bc95c3: examples/power_budget.rs

examples/power_budget.rs:
