/root/repo/target/release/examples/deploy_toolchain-d8964341d769918c.d: examples/deploy_toolchain.rs

/root/repo/target/release/examples/deploy_toolchain-d8964341d769918c: examples/deploy_toolchain.rs

examples/deploy_toolchain.rs:
