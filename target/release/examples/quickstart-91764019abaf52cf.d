/root/repo/target/release/examples/quickstart-91764019abaf52cf.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-91764019abaf52cf: examples/quickstart.rs

examples/quickstart.rs:
