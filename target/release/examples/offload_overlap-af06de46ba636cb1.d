/root/repo/target/release/examples/offload_overlap-af06de46ba636cb1.d: examples/offload_overlap.rs

/root/repo/target/release/examples/offload_overlap-af06de46ba636cb1: examples/offload_overlap.rs

examples/offload_overlap.rs:
