/root/repo/target/release/examples/offload_overlap-544ba62574fe1d58.d: examples/offload_overlap.rs

/root/repo/target/release/examples/offload_overlap-544ba62574fe1d58: examples/offload_overlap.rs

examples/offload_overlap.rs:
