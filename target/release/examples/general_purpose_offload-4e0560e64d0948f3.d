/root/repo/target/release/examples/general_purpose_offload-4e0560e64d0948f3.d: examples/general_purpose_offload.rs

/root/repo/target/release/examples/general_purpose_offload-4e0560e64d0948f3: examples/general_purpose_offload.rs

examples/general_purpose_offload.rs:
