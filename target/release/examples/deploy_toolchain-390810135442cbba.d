/root/repo/target/release/examples/deploy_toolchain-390810135442cbba.d: examples/deploy_toolchain.rs

/root/repo/target/release/examples/deploy_toolchain-390810135442cbba: examples/deploy_toolchain.rs

examples/deploy_toolchain.rs:
