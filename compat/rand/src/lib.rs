//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: the [`RngCore`] /
//! [`SeedableRng`] traits, the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and [`seq::SliceRandom`] (`shuffle`, `choose`). Semantics
//! match upstream (half-open/inclusive ranges, `[0, 1)` floats, Fisher–Yates
//! shuffles); the exact bit streams are *not* guaranteed to match upstream
//! `rand`, only to be deterministic for a given generator and seed, which is
//! what the reproduction requires.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: raw word and byte output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step, used to expand a `u64` into seed material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from their full domain (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                sample_below(rng, (self.end - self.start) as u64) as $t + self.start
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                sample_below(rng, span + 1) as $t + lo
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(sample_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(sample_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Unbiased uniform sample in `[0, bound)` via Lemire-style rejection.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the multiply-shift method exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let hi = ((v as u128 * bound as u128) >> 64) as u64;
        let lo = (v as u128 * bound as u128) as u64;
        if lo >= zone {
            return hi;
        }
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn r#gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 += 1;
            splitmix64(&mut s)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = Counter(11);
        for _ in 0..1000 {
            let u: f64 = rng.r#gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Counter(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input untouched");
    }
}
