//! Offline stand-in for `rand_chacha`: a real ChaCha stream cipher used as
//! a deterministic RNG. Only the generators the workspace uses are provided
//! (`ChaCha8Rng`, plus `ChaCha12Rng`/`ChaCha20Rng` for completeness). The
//! keystream is genuine RFC-7539-layout ChaCha; it is deterministic per seed
//! but not guaranteed bit-identical to upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha quarter round.
#[inline(always)]
fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (8, 12 or 20).
fn block(input: &[u32; 16], rounds: u32) -> [u32; 16] {
    let mut s = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        qr(&mut s, 0, 4, 8, 12);
        qr(&mut s, 1, 5, 9, 13);
        qr(&mut s, 2, 6, 10, 14);
        qr(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        qr(&mut s, 0, 5, 10, 15);
        qr(&mut s, 1, 6, 11, 12);
        qr(&mut s, 2, 7, 8, 13);
        qr(&mut s, 3, 4, 9, 14);
    }
    for (out, inp) in s.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    s
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            /// Cipher state: constants, 8 key words, 64-bit block counter,
            /// 64-bit stream id (always 0 here).
            state: [u32; 16],
            /// Current keystream block.
            buf: [u32; 16],
            /// Next unread word index in `buf`; 16 forces a refill.
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buf = block(&self.state, $rounds);
                // 64-bit counter in words 12..14.
                let ctr = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
                self.state[12] = ctr as u32;
                self.state[13] = (ctr >> 32) as u32;
                self.idx = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CONSTANTS);
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name { state, buf: [0; 16], idx: 16 }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds: fast, used for simulation streams.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds (full-strength).");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn rfc7539_block_vector() {
        // RFC 7539 §2.3.2 test vector (20 rounds, counter=1, nonce set).
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        for i in 0..8 {
            let b = [4 * i as u8, 4 * i as u8 + 1, 4 * i as u8 + 2, 4 * i as u8 + 3];
            input[4 + i] = u32::from_le_bytes(b);
        }
        input[12] = 1;
        input[13] = 0x0900_0000;
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let out = block(&input, 20);
        assert_eq!(out[0], 0xe4e7_f110);
        assert_eq!(out[15], 0x4e3c_50a2);
    }

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.r#gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
