//! Offline stand-in for the `bytes` crate: just enough of `Bytes` /
//! `BytesMut` / `Buf` / `BufMut` for the NCS graph-file codec. `Bytes` is a
//! plain `Vec<u8>` plus a read cursor (no refcounted slices — callers here
//! never share buffers).

/// Read-side cursor operations.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side append operations.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `at` unread bytes, advancing `self`
    /// past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to past end of buffer");
        let head = self.data[self.pos..self.pos + at].to_vec();
        self.pos += at;
        Bytes::from_vec(head)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut w = BytesMut::new();
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_CAFE);
        w.put_u64_le(42);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 2 + 4 + 8 + 3);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_CAFE);
        assert_eq!(r.get_u64_le(), 42);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }
}
