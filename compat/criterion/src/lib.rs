//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple wall-clock
//! measurement loop (median-free: warm-up, then `sample_size` timed batches,
//! report mean per iteration and derived throughput). No plots, no stats
//! engine; the benches exist to catch regressions, and this keeps them
//! runnable without a registry.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(self, &id.into(), None, &mut f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput unit.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<S: Display, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Throughput unit used to derive a rate from the mean iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the closure; `iter` runs the workload under timing.
pub struct Bencher {
    /// Accumulated (iterations, elapsed) of the measurement phase.
    samples: Vec<(u64, Duration)>,
    iters_per_sample: u64,
    warming: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if !self.warming {
            self.samples.push((self.iters_per_sample, elapsed));
        }
    }

    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut f: F,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let state = setup();
            let start = Instant::now();
            black_box(f(state));
            total += start.elapsed();
        }
        if !self.warming {
            self.samples.push((self.iters_per_sample, total));
        }
    }
}

fn run_one(
    c: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: run single-iteration batches until the budget is spent, and
    // estimate the per-iteration cost to size measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut bencher = Bencher { samples: Vec::new(), iters_per_sample: 1, warming: true };
    while warm_start.elapsed() < c.warm_up_time && warm_iters < 1_000_000 {
        f(&mut bencher);
        warm_iters += 1;
        if warm_iters >= 3 && warm_start.elapsed() >= c.warm_up_time / 2 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().checked_div(warm_iters.max(1) as u32).unwrap_or_default();

    // Size each sample so the whole measurement fits the time budget.
    let budget_per_sample =
        c.measurement_time.checked_div(c.sample_size as u32).unwrap_or_default();
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    bencher.warming = false;
    bencher.iters_per_sample = iters;
    for _ in 0..c.sample_size {
        f(&mut bencher);
    }

    let (total_iters, total_time) =
        bencher.samples.iter().fold((0u64, Duration::ZERO), |(i, t), &(si, st)| (i + si, t + st));
    let mean_ns = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.1} elem/s", n as f64 * 1e9 / mean_ns),
        Throughput::Bytes(n) => {
            format!("  {:>12.1} MiB/s", n as f64 * 1e9 / mean_ns / (1 << 20) as f64)
        }
    });
    println!(
        "bench {label:<48} {:>12.1} ns/iter ({} samples x {} iters){}",
        mean_ns,
        bencher.samples.len(),
        iters,
        rate.unwrap_or_default()
    );
}

/// `criterion_group!` — both the `name/config/targets` and positional forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_quickly() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("with-input", 4), &4u32, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
