//! `#[derive(Serialize, Deserialize)]` for the vendored serde facade.
//!
//! The build container has no crates.io access, so `syn`/`quote` are
//! unavailable; this crate parses the derive input token stream by hand.
//! Supported shapes — exactly what the workspace uses:
//!
//! * structs: named fields, tuple structs (newtype = serialize as inner,
//!   matching serde's JSON convention), unit structs, generic parameters
//!   (type-param bounds re-emitted, `Serialize`/`Deserialize` bounds added);
//! * enums, externally tagged like serde JSON: unit variants as `"Name"`,
//!   newtype variants as `{"Name": value}`, tuple variants as
//!   `{"Name": [..]}`, struct variants as `{"Name": {..}}`;
//! * `#[serde(transparent)]` on single-field structs.
//!
//! Unsupported field/container attributes are rejected with a compile error
//! rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    /// Raw tokens between `<` and `>` of the declaration, e.g. `E: Element`.
    generics_decl: String,
    /// Bare parameter names for the type path, e.g. `E`.
    generics_use: Vec<String>,
    /// Type parameter names that should receive trait bounds.
    type_params: Vec<String>,
    /// Raw `where` predicates declared on the item, without the keyword.
    where_decl: String,
    transparent: bool,
    data: Data,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Leading attributes (doc comments, #[serde(...)], other derives' attrs).
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else { break };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            return Err("malformed attribute".into());
        };
        let body = g.stream().to_string();
        if let Some(args) = body.strip_prefix("serde") {
            let args = args.trim();
            if args == "(transparent)" {
                transparent = true;
            } else {
                return Err(format!("unsupported serde attribute `{body}`"));
            }
        }
        i += 2;
    }

    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected type name, found `{other}`")),
    };
    i += 1;

    // Generic parameter list.
    let mut generics_decl = String::new();
    let mut generics_use = Vec::new();
    let mut type_params = Vec::new();
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        i += 1;
        let start = i;
        let mut depth = 0usize;
        let mut prev_dash = false;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if prev_dash => {} // `->` in an fn-pointer bound
                    '>' if depth == 0 => break,
                    '>' => depth -= 1,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
            i += 1;
        }
        let params = &tokens[start..i];
        i += 1; // past closing `>`
        generics_decl = tokens_to_string(params);
        for segment in split_top_level(params) {
            if segment.is_empty() {
                continue;
            }
            match &segment[0] {
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    // Lifetime parameter: use as `'a`, no trait bound.
                    if let Some(TokenTree::Ident(id)) = segment.get(1) {
                        generics_use.push(format!("'{id}"));
                    }
                }
                TokenTree::Ident(id) if id.to_string() == "const" => {
                    if let Some(TokenTree::Ident(n)) = segment.get(1) {
                        generics_use.push(n.to_string());
                    }
                }
                TokenTree::Ident(id) => {
                    generics_use.push(id.to_string());
                    type_params.push(id.to_string());
                }
                other => return Err(format!("unsupported generic parameter `{other}`")),
            }
        }
    }

    // Optional `where` clause.
    let mut where_decl = String::new();
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "where") {
        i += 1;
        let start = i;
        while i < tokens.len()
            && !matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
        {
            i += 1;
        }
        where_decl = tokens_to_string(&tokens[start..i]);
    }

    let data = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Data::Struct(Fields::Unit),
        }
    } else if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("enum without a body".into()),
        }
    } else {
        return Err(format!("cannot derive for `{kind}`"));
    };

    Ok(Input { name, generics_decl, generics_use, type_params, where_decl, transparent, data })
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
}

/// Split a token slice on commas that sit outside any `<...>` nesting
/// (groups are atomic token trees, so only angle brackets need tracking).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    let mut depth = 0usize;
    let mut prev_dash = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !prev_dash && depth > 0 => depth -= 1,
                ',' if depth == 0 => {
                    out.push(Vec::new());
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        out.last_mut().unwrap().push(t.clone());
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

/// Strip leading attributes and visibility from one field/variant segment.
fn strip_attrs_and_vis(segment: &[TokenTree]) -> Result<&[TokenTree], String> {
    let mut i = 0;
    while i + 1 < segment.len() {
        let TokenTree::Punct(p) = &segment[i] else { break };
        if p.as_char() != '#' {
            break;
        }
        if let TokenTree::Group(g) = &segment[i + 1] {
            let body = g.stream().to_string();
            if body.starts_with("serde") {
                return Err(format!("unsupported field-level serde attribute `{body}`"));
            }
        }
        i += 2;
    }
    if matches!(segment.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(segment.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    Ok(&segment[i..])
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    for segment in split_top_level(&tokens) {
        let rest = strip_attrs_and_vis(&segment)?;
        match rest.first() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => {}
        }
    }
    Ok(names)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    split_top_level(&tokens).len()
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    for segment in split_top_level(&tokens) {
        let rest = strip_attrs_and_vis(&segment)?;
        let Some(TokenTree::Ident(id)) = rest.first() else {
            if rest.is_empty() {
                continue;
            }
            return Err(format!("expected variant name, found `{}`", rest[0]));
        };
        let fields = match rest.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("explicit discriminants are not supported".into())
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name: id.to_string(), fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

impl Input {
    /// `impl<G> Trait for Name<P> where ...` header.
    fn impl_header(&self, trait_path: &str) -> String {
        let generics = if self.generics_decl.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics_decl)
        };
        let ty_args = if self.generics_use.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics_use.join(", "))
        };
        let mut predicates: Vec<String> = Vec::new();
        if !self.where_decl.is_empty() {
            predicates.push(self.where_decl.clone());
        }
        for p in &self.type_params {
            predicates.push(format!("{p}: {trait_path}"));
        }
        let where_clause = if predicates.is_empty() {
            String::new()
        } else {
            format!(" where {}", predicates.join(", "))
        };
        format!("impl{generics} {trait_path} for {}{ty_args}{where_clause}", self.name)
    }
}

fn gen_serialize(input: &Input) -> String {
    let body = match &input.data {
        Data::Struct(fields) => serialize_fields(fields, input.transparent, "self.", None),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let (pattern, expr) = match &v.fields {
                    Fields::Unit => (
                        String::new(),
                        format!("::serde::Value::Str(::std::string::String::from(\"{}\"))", v.name),
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        (format!("({})", binds.join(", ")), tag_map(&v.name, &inner))
                    }
                    Fields::Named(names) => {
                        let entries: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        let inner =
                            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "));
                        (format!("{{ {} }}", names.join(", ")), tag_map(&v.name, &inner))
                    }
                };
                arms.push_str(&format!("{}::{}{} => {},\n", input.name, v.name, pattern, expr));
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}",
        input.impl_header("::serde::Serialize")
    )
}

/// `{"Tag": inner}` map for enum variants.
fn tag_map(tag: &str, inner: &str) -> String {
    format!("::serde::Value::Map(::std::vec![(::std::string::String::from(\"{tag}\"), {inner})])")
}

/// Serialization expression for a field list accessed via `prefix` (structs:
/// `self.`) or via bound names (enum struct variants pass `None` prefix and
/// pre-bound identifiers — handled at the call site above).
fn serialize_fields(
    fields: &Fields,
    transparent: bool,
    prefix: &str,
    _bound: Option<&[String]>,
) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => {
            // Newtype structs serialize as their inner value (serde JSON
            // convention; also covers #[serde(transparent)]).
            format!("::serde::Serialize::to_value(&{prefix}0)")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&{prefix}{k})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(names) if transparent && names.len() == 1 => {
            format!("::serde::Serialize::to_value(&{prefix}{})", names[0])
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&{prefix}{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(fields) => deserialize_fields(fields, input.transparent, name, "__v"),
        Data::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                match &v.fields {
                    Fields::Unit => {
                        str_arms.push_str(&format!(
                            "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                            v.name
                        ));
                    }
                    other => {
                        let ctor = deserialize_variant(other, name, &v.name);
                        map_arms.push_str(&format!("\"{}\" => {{ {ctor} }}\n", v.name));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                     \"unknown variant `{{}}` of {name}\", __other))),\n}},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 let _ = &__inner;\n\
                 match __tag.as_str() {{\n{map_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                     \"unknown variant `{{}}` of {name}\", __other))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\n\
                     \"expected string or single-entry map for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n {body}\n }}\n}}",
        input.impl_header("::serde::Deserialize")
    )
}

/// Constructor expression for a struct deserialized from `source`.
fn deserialize_fields(fields: &Fields, transparent: bool, path: &str, source: &str) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({path})"),
        Fields::Tuple(1) => format!(
            "::std::result::Result::Ok({path}(::serde::Deserialize::from_value({source})?))"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("__e{k}")).collect();
            let inits: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Deserialize::from_value({b})?"))
                .collect();
            format!(
                "match {source}.as_seq() {{\n\
                 ::std::option::Option::Some([{}]) => ::std::result::Result::Ok({path}({})),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\"expected {n}-element sequence\")),\n}}",
                binds.join(", "),
                inits.join(", ")
            )
        }
        Fields::Named(names) if transparent && names.len() == 1 => format!(
            "::std::result::Result::Ok({path} {{ {}: ::serde::Deserialize::from_value({source})? }})",
            names[0]
        ),
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get({source}, \"{f}\")?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({path} {{ {} }})", inits.join(", "))
        }
    }
}

/// Constructor for a non-unit enum variant deserialized from `__inner`.
fn deserialize_variant(fields: &Fields, name: &str, variant: &str) -> String {
    deserialize_fields(fields, false, &format!("{name}::{variant}"), "__inner")
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

fn run(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => {
            let code = gen(&parsed);
            code.parse().unwrap_or_else(|e| {
                let msg = format!("serde_derive generated invalid code: {e}");
                format!("::std::compile_error!({msg:?});").parse().unwrap()
            })
        }
        Err(msg) => {
            let msg = format!("serde_derive: {msg}");
            format!("::std::compile_error!({msg:?});").parse().unwrap()
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, gen_deserialize)
}
