//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace ships a
//! self-contained (de)serialization facade under the same crate name. Instead
//! of upstream serde's visitor architecture, everything round-trips through a
//! JSON-like [`Value`] tree:
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`;
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`;
//! * `#[derive(Serialize, Deserialize)]` — provided by the sibling
//!   `serde_derive` proc-macro crate (enabled via the `derive` feature),
//!   covering named/tuple/unit structs, generics, `#[serde(transparent)]`,
//!   and externally-tagged enums with unit/tuple/struct variants, i.e. the
//!   serde JSON conventions this workspace relies on.
//!
//! The sibling `serde_json` crate prints/parses `Value` as real JSON text.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON-like data model every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers parse into this variant.
    U64(u64),
    /// Negative integers parse into this variant.
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map — field order is preserved so serialized
    /// output is stable and deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Map lookup by key (linear scan: maps here are field lists).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Short description of the variant for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// (De)serialization error: a message plus nothing else — good enough for
/// the workspace's diagnostics.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch a required struct field out of a serialized map (derive helper).
pub fn map_get<'v>(v: &'v Value, key: &str) -> Result<&'v Value, Error> {
    v.get(key).ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

fn wrong_type(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", got.kind()))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match *v {
                    Value::U64(u) => u,
                    Value::I64(i) if i >= 0 => i as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    ref other => return Err(wrong_type("unsigned integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match *v {
                    Value::I64(i) => i,
                    Value::U64(u) => i64::try_from(u).map_err(|_| Error::custom("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.3e18 => f as i64,
                    ref other => return Err(wrong_type("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(u) => Ok(u as $t),
                    Value::I64(i) => Ok(i as $t),
                    // JSON has no NaN/Inf literal; serializers emit null.
                    Value::Null => Ok(<$t>::NAN),
                    ref other => Err(wrong_type("float", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(wrong_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| wrong_type("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| wrong_type("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq().ok_or_else(|| wrong_type("sequence", v))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, found {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident / $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            #[allow(non_snake_case)]
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_seq() {
                    Some([$($t),+]) => Ok(($($t::from_value($t)?,)+)),
                    _ => Err(wrong_type("fixed-size sequence", v)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| wrong_type("map", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u8> = Deserialize::from_value(&vec![1u8, 2, 3].to_value()).unwrap();
        assert_eq!(v, [1, 2, 3]);
    }

    #[test]
    fn cross_variant_numerics() {
        // Integers written as U64 must deserialize into signed/float slots.
        assert_eq!(i64::from_value(&Value::U64(9)).unwrap(), 9);
        assert_eq!(f32::from_value(&Value::U64(9)).unwrap(), 9.0);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
