//! Offline stand-in for `rayon`.
//!
//! The container building this workspace has no crates.io access, so the
//! `par_*` entry points used by the kernels are provided here as *sequential*
//! adapters: each returns the corresponding `std` iterator, so every
//! downstream adapter chain (`.enumerate()`, `.map()`, `.for_each()`,
//! `.collect()`, …) compiles and runs unchanged, just on one thread.
//! Sequential execution is also bit-deterministic, which the reproduction
//! prefers anyway; the real rayon can be restored by deleting this shim once
//! a registry is reachable.

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceOps};
}

/// `into_par_iter()` for owned collections and ranges — sequential fallback.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

/// Slice-level `par_*` entry points — sequential fallbacks.
pub trait ParallelSliceOps {
    type Item;

    fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, Self::Item>;
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, Self::Item>;
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, Self::Item>;
}

impl<T> ParallelSliceOps for [T] {
    type Item = T;

    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(size)
    }
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(size)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_compile_and_agree_with_sequential() {
        let doubled: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, (0..10).map(|i| i * 2).collect::<Vec<_>>());

        let mut buf = [0u32; 8];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(buf, [0, 0, 1, 1, 2, 2, 3, 3]);

        let sum: u32 = buf.par_iter().sum();
        assert_eq!(sum, 12);
    }
}
