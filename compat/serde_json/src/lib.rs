//! Offline stand-in for `serde_json`: prints and parses the vendored serde
//! [`Value`] model as real JSON text. Map/field order is preserved on both
//! paths, so output is deterministic — a property the serving experiments'
//! byte-identical-report tests rely on. Non-finite floats serialize as
//! `null` (upstream serde_json convention).

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize any supported type from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Convert a typed value into the generic [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Convert a generic [`Value`] tree into a typed value.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip float formatting; mark integral
                // values with `.0` so they read back as floats.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            write_delimited(out, '[', ']', items.len(), indent, level, |out, i| {
                write_value(out, &items[i], indent, level + 1)
            })
        }
        Value::Map(entries) => {
            write_delimited(out, '{', '}', entries.len(), indent, level, |out, i| {
                write_json_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, level + 1)
            })
        }
    }
}

fn write_delimited(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null", Value::Null),
            b't' => self.eat_keyword("true", Value::Bool(true)),
            b'f' => self.eat_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        c => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]`, found `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        c => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}`, found `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len() && !matches!(self.bytes[self.pos], b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's identifiers; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => {
                            return Err(Error::custom(format!("invalid escape `\\{}`", c as char)))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid JSON value at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("x\n\"y\"".into())),
            ("nums".into(), Value::Seq(vec![Value::U64(3), Value::I64(-4), Value::F64(2.5)])),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_keep_roundtrip_precision() {
        let v = Value::F64(0.1 + 0.2);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        // Integral floats stay floats.
        assert_eq!(to_string(&Value::F64(2.0)).unwrap(), "2.0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
