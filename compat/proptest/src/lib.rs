//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range and tuple
//! strategies, `collection::vec`, `sample::select`, and `any::<T>()`.
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test RNG (seeded from the test name, so failures reproduce exactly
//! across runs and machines), and there is no shrinking — the failing case
//! values are printed instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Seed derived from the test's name, so each test has a stable,
    /// independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            let hi = ((v as u128 * bound as u128) >> 64) as u64;
            let lo = (v as u128 * bound as u128) as u64;
            if lo >= zone {
                return hi;
            }
        }
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-run configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. Unlike upstream there is no shrink tree.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! strategy_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                (self.start as u64 + rng.below((self.end - self.start) as u64)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                (lo as u64 + rng.below((hi - lo) as u64 + 1)) as $t
            }
        }
    )*};
}
strategy_uint_range!(u8, u16, u32, u64, usize);

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
strategy_int_range!(i8, i16, i32, i64, isize);

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

macro_rules! strategy_tuple {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Full-domain sampling for `any::<T>()`.
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: sample uniformly from `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! `proptest::collection` — sized collections of sub-strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! `proptest::sample` — choose among explicit values.

    use super::{Strategy, TestRng};

    pub struct Select<T>(Vec<T>);

    /// Uniformly select one of the given values.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    /// Upstream proptest re-exports the crate as `prop` in its prelude
    /// (`prop::sample::select`, `prop::collection::vec`, ...).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Outcome of a single generated case (Err carries the failure message;
/// the sentinel rejects the case via `prop_assume!`).
pub type CaseResult = Result<(), String>;

#[doc(hidden)]
pub const ASSUME_REJECTED: &str = "\u{1}proptest-assume-rejected";

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}", ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::string::String::from(
                $crate::ASSUME_REJECTED,
            ));
        }
    };
}

/// The main macro: a block of `#[test]` functions whose arguments are drawn
/// from strategies. Each function body runs `cases` times with fresh samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(::std::stringify!($name));
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                let values = ( $($crate::Strategy::sample(&($strategy), &mut rng),)+ );
                let values_repr = ::std::format!("{:?}", values);
                let ($($arg,)+) = values;
                let outcome: $crate::CaseResult = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => { case += 1; }
                    ::std::result::Result::Err(e) if e == $crate::ASSUME_REJECTED => {
                        rejected += 1;
                        ::std::assert!(
                            rejected < 4 * config.cases + 64,
                            "test `{}` rejected too many cases via prop_assume!",
                            ::std::stringify!($name),
                        );
                    }
                    ::std::result::Result::Err(e) => {
                        ::std::panic!(
                            "proptest case {} of `{}` failed:\n{}\ninputs: {}",
                            case, ::std::stringify!($name), e, values_repr
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            for x in &xs {
                prop_assert!(*x < 5, "element {} out of range", x);
            }
        }

        #[test]
        fn select_and_assume(k in prop::sample::select(vec![1usize, 3, 5]), n in 0u32..20) {
            prop_assume!(n % 2 == 0);
            prop_assert!(k % 2 == 1);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn any_covers_domain(bits in any::<u16>()) {
            let h = bits;
            prop_assert_eq!(h, bits);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
