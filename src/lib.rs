//! Umbrella crate for the VPU co-processor reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests read naturally. See the README for the map:
//!
//! * [`num`] — software binary16, statistics, seeded RNG streams
//! * [`tensor`] — NCHW tensors and CNN kernels
//! * [`nn`] — network graphs, GoogLeNet topologies, execution
//! * [`sim`] — the discrete-event simulation kernel
//! * [`vpu`] — the Myriad 2 architecture model
//! * [`platform`] — the Neural Compute Stick platform + NCAPI
//! * [`hosts`] — the CPU/GPU reference device models
//! * [`data`] — the synthetic ILSVRC-2012 pipeline
//! * [`framework`] — NCSw: sources, targets, the multi-VPU pipeline
//! * [`serving`] — online inference serving over the simulated fleet
//! * [`obs`] — observability: phase events, metrics, traces, time series
//! * [`analyze`] — trace analysis: attribution, A/B diffing, burn alerts
//! * [`faults`] — deterministic fault injection for the serving fleet
//! * [`ctrl`] — closed-loop autoscaling policies (reactive/predictive/oracle)
//! * [`mdk`] — general-purpose offload (LAMA-style GEMM with CMX tiling)
//! * [`experiments`] — the per-figure experiment harness

pub use desim as sim;
pub use hostsim as hosts;
pub use ilsvrc_sim as data;
pub use mdk;
pub use myriad2 as vpu;
pub use ncs_platform as platform;
pub use ncsw as framework;
pub use ncsw_analyze as analyze;
pub use ncsw_ctrl as ctrl;
pub use ncsw_faults as faults;
pub use ncsw_obs as obs;
pub use ncsw_serve as serving;
pub use vpu_bench as experiments;
pub use vpu_nn as nn;
pub use vpu_num as num;
pub use vpu_tensor as tensor;
