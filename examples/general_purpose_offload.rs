//! General-purpose computing on the VPU — the paper's future work (§VII)
//! and the Ionica & Gregg comparison from its related work (§VI).
//!
//! Offloads blocked GEMMs of growing size to the simulated Myriad 2
//! through the MDK context, reporting achieved Gflop/s and Gflop/s/W
//! next to the Xeon reference, then validates the numerics of one
//! offloaded multiply at both precisions.
//!
//! ```text
//! cargo run --release --example general_purpose_offload
//! ```

use rand::Rng;
use vpu_coprocessor::mdk::{GemmPrecision, MdkContext};
use vpu_coprocessor::vpu::Myriad2Config;

fn main() {
    let mut ctx = MdkContext::new(Myriad2Config::default());

    println!("blocked GEMM on the Myriad 2 (CMX-tiled, 12 SHAVEs):\n");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "size", "prec", "tile", "ms", "Gflop/s", "Gflop/s/W", "mJ"
    );
    for &size in &[128usize, 256, 512, 1024, 2048] {
        for prec in [GemmPrecision::Fp16, GemmPrecision::Fp32] {
            let run = match prec {
                GemmPrecision::Fp16 => ctx.hgemm(size, size, size),
                GemmPrecision::Fp32 => ctx.sgemm(size, size, size),
            };
            println!(
                "{size:>6} {:>6} {:>10} {:>10.2} {:>10.1} {:>12.1} {:>10.2}",
                prec.name(),
                run.plan.tile,
                run.duration.as_millis(),
                run.gflops,
                run.gflops_per_watt,
                run.energy_j * 1e3,
            );
        }
    }
    let cpu = MdkContext::cpu_reference_gflops_per_watt();
    println!("\nXeon E5-2609v2 reference (MKL-class SGEMM against 80 W TDP): {cpu:.1} Gflop/s/W");

    // ---- Validate one offloaded multiply for real ----------------------
    let (m, k, n) = (32, 64, 32);
    let mut rng = vpu_coprocessor::num::rng::seeded(11);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let (_, c32) = ctx.gemm_with_numerics(m, k, n, &a, &b, GemmPrecision::Fp32);
    let (_, c16) = ctx.gemm_with_numerics(m, k, n, &a, &b, GemmPrecision::Fp16);
    let max_err = c32.iter().zip(&c16).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
    println!(
        "\nnumerics check on a {m}x{k}x{n} multiply: max |fp32 − fp16| = {max_err:.5}\n\
         (genuine binary16 rounding — the same arithmetic the inference path uses)"
    );
    println!(
        "\nconclusion: as a vector co-processor the chip sustains tens of\n\
         Gflop/s at ~0.7 W — two orders of magnitude better Gflop/s/W than\n\
         the host CPU — supporting the paper's §VII offload vision."
    );
}
