//! The paper's headline scenario: eight NCS sticks against the CPU and
//! GPU references, with the Fig. 4 execution timeline.
//!
//! ```text
//! cargo run --release --example multi_vpu_pipeline
//! ```

use vpu_coprocessor::framework::multivpu::{MultiVpu, MultiVpuConfig};
use vpu_coprocessor::framework::{IntelCpu, IntelVpu, ModelBundle, NvGpu, TargetDevice};
use vpu_coprocessor::nn::googlenet::Variant;

fn main() {
    // Full-geometry GoogLeNet work profile (weights untrained — only the
    // operation counts matter for throughput).
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let images = 96;
    let batch = 8;

    println!("processing {images} images, batch {batch} (VPU count coupled to batch)\n");
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    let mut cpu = IntelCpu::new(model.clone());
    let mut gpu = NvGpu::new(model.clone());
    let mut vpu = IntelVpu::new(model.clone(), batch);
    for target in [&mut cpu as &mut dyn TargetDevice, &mut gpu, &mut vpu] {
        let r = target.run_throughput(images, batch);
        rows.push((
            target.name().to_string(),
            r.images_per_sec(),
            r.per_image_ms(),
            r.images_per_watt(target.tdp_w(batch)),
        ));
    }
    println!("{:<6} {:>9} {:>10} {:>8}", "target", "img/s", "ms/image", "img/W");
    for (name, ips, ms, ipw) in &rows {
        println!("{name:<6} {ips:>9.1} {ms:>10.2} {ipw:>8.2}");
    }
    let vpu_row = &rows[2];
    let cpu_row = &rows[0];
    println!(
        "\n8 sticks deliver {:.1}x the CPU throughput at {:.0}% of its TDP budget",
        vpu_row.1 / cpu_row.1,
        8.0 * 2.5 / 80.0 * 100.0
    );

    // ---- Fig. 4 timeline on four sticks --------------------------------
    let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(4), &model);
    let run = mv.run_pipeline(8);
    println!(
        "\nFig. 4 timeline — 4 sticks, 8 images ({} per stick), makespan {:.1} ms:",
        2,
        run.makespan().as_millis()
    );
    println!("  l = load (USB in), r = read result, e = on-chip execution\n");
    print!("{}", run.trace.shifted(run.start).render_gantt(90));
}
