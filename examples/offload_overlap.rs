//! Computation offloading: the MPI-style decoupled interface at work.
//!
//! The NCAPI splits inference into a non-blocking `load_tensor` and a
//! blocking `get_result` (paper §II-B: "this model enables the design of
//! decoupled strategies that overlap computations while inference has
//! been offloaded"). This example quantifies that: a host consuming an
//! `MpiStream` of images does `work_ms` of its own processing per image,
//! either serially (load → wait → work) or overlapped (work while the
//! stick runs).
//!
//! ```text
//! cargo run --release --example offload_overlap
//! ```

use std::sync::Arc;
use vpu_coprocessor::data::{DatasetConfig, ValidationSet};
use vpu_coprocessor::framework::{ModelBundle, MpiStream, SourceImage};
use vpu_coprocessor::nn::googlenet::Variant;
use vpu_coprocessor::platform::{Fleet, Ncapi, NcsConfig, Topology};
use vpu_coprocessor::sim::{Duration, SimTime};

/// Host-side processing per image (e.g. decode the next frame, feature
/// post-processing, MPI sends).
const HOST_WORK_MS: f64 = 60.0;
const IMAGES: usize = 15;

fn setup() -> (Ncapi, vpu_coprocessor::platform::GraphHandle, SimTime) {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let mut api = Ncapi::new(Fleet::new(1, Topology::AllRoot, NcsConfig::default()));
    let booted = api.open_device(0, SimTime::ZERO).expect("open");
    let (graph, ready) = api.alloc_graph(0, model.cost16.clone(), booted).expect("alloc");
    (api, graph, ready)
}

fn main() {
    let set = Arc::new(ValidationSet::new(DatasetConfig::ilsvrc_like(
        10,
        IMAGES,
        Variant::Tiny.input_shape(),
        7,
    )));
    let stream = MpiStream::new(set, Duration::from_millis(20.0), IMAGES);
    let work = Duration::from_millis(HOST_WORK_MS);

    // ---- Strategy A: serial (wait for each result before working) -----
    let (mut api, graph, ready) = setup();
    let mut t = ready;
    for i in 0..stream.len() {
        let avail = SimTime::max_of(t, stream.available_at(i));
        let loaded = api.load_tensor(graph, avail, None).expect("load");
        let res = api.get_result(graph, loaded).expect("result");
        t = res.returned_at + work; // host work happens after the wait
    }
    let serial = t - ready;

    // ---- Strategy B: overlapped (Listing 1 pattern) --------------------
    let (mut api, graph, ready) = setup();
    let mut t = ready;
    for i in 0..stream.len() {
        let avail = SimTime::max_of(t, stream.available_at(i));
        let loaded = api.load_tensor(graph, avail, None).expect("load");
        // Host work overlaps the on-device inference ...
        let host_done = loaded + work;
        // ... and get_result blocks only for whatever remains.
        let res = api.get_result(graph, host_done).expect("result");
        t = res.returned_at;
    }
    let overlapped = t - ready;

    println!(
        "{} images from an MPI-like stream, {:.0} ms of host work per image:",
        IMAGES, HOST_WORK_MS
    );
    println!("  serial   (load, wait, then work):  {:.1} ms total", serial.as_millis());
    println!("  overlap  (work while VPU runs):    {:.1} ms total", overlapped.as_millis());
    let saved = serial.as_millis() - overlapped.as_millis();
    println!(
        "  saved {:.1} ms ({:.0}% of the host work hidden behind inference)",
        saved,
        saved / (HOST_WORK_MS * IMAGES as f64) * 100.0
    );
    println!(
        "\nper-inference device latency is ~100.7 ms, so up to ~100 ms of host\n\
         work per image rides for free — \"in most cases, by the time that\n\
         the host process has to wait, the inference is already completed\"\n\
         (paper §II-B)."
    );
}
