//! Quickstart: one simulated Neural Compute Stick, end to end.
//!
//! Mirrors the paper's Listing 1 — open a device, allocate a GoogLeNet
//! graph, `load_tensor` (non-blocking), `get_result` (blocking) — with a
//! real classification running through the software-FP16 network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use vpu_coprocessor::data::{pseudo_train, DatasetConfig, ValidationSet};
use vpu_coprocessor::framework::{ModelBundle, SourceImage};
use vpu_coprocessor::nn::googlenet::Variant;
use vpu_coprocessor::platform::{Fleet, Ncapi, NcsConfig, Topology};
use vpu_coprocessor::sim::SimTime;

fn main() {
    // ---- Build a model + a small synthetic validation set -------------
    // (Stands in for the BVLC caffemodel + ILSVRC images; see DESIGN.md.)
    let variant = Variant::Tiny;
    let spec = Arc::new(variant.build());
    let mut data_cfg = DatasetConfig::ilsvrc_like(10, 50, variant.input_shape(), 2012);
    data_cfg.sigma = 0.15;
    data_cfg.distractor_mix = 0.05;
    let set = Arc::new(ValidationSet::new(data_cfg));
    let weights = pseudo_train(&spec, set.generator(), 2012);
    let model = ModelBundle::deploy(spec, weights);
    println!(
        "model: {} ({} classes, {:.1} MMAC/inference, {:.1} KB fp16 graph)",
        model.spec.name,
        model.classes(),
        model.cost16.total_macs as f64 / 1e6,
        model.cost16.total_weight_bytes() as f64 / 1e3,
    );

    // ---- NCAPI: enumerate, open, allocate ------------------------------
    let fleet = Fleet::new(1, Topology::AllRoot, NcsConfig::default());
    let mut api = Ncapi::new(fleet);
    println!("devices found: {}", api.enumerate());
    let booted = api.open_device(0, SimTime::ZERO).expect("open");
    println!("device 0 booted at t={booted} (firmware upload + RTOS boot)");
    // The timing experiments use the full-size GoogLeNet cost profile;
    // here we ship the tiny model's own profile to keep the example fast.
    let (graph, ready) = api.alloc_graph(0, model.cost16.clone(), booted).expect("alloc");
    println!("graph allocated at t={ready}");

    // ---- Classify three images, Listing-1 style ------------------------
    let folder = vpu_coprocessor::framework::ImageFolder::new(set.clone(), 0);
    let mut t = ready;
    for i in 0..3 {
        let img = folder.fetch(i);
        // Real FP16 arithmetic — this is what the sticks compute.
        let output = model.net16.forward(&img.pixels.quantize_fp16());
        // mvncLoadTensor: returns once the input crossed USB.
        let loaded = api.load_tensor(graph, t, Some(output)).expect("load");
        // ... the host could overlap other work here ...
        // mvncGetResult: blocks until the inference completed.
        let res = api.get_result(graph, loaded).expect("result");
        let out = res.output.expect("fp16 output");
        let (pred, conf) = out.argmax_item(0);
        let truth = set.synsets().get(img.label);
        let guess = set.synsets().get(pred);
        println!(
            "image {i}: latency {:.1} ms | truth {:<18} -> predicted {:<18} ({:.1}% conf) {}",
            (res.returned_at - t).as_millis(),
            truth.name,
            guess.name,
            conf * 100.0,
            if pred == img.label { "✓" } else { "✗" },
        );
        t = res.returned_at;
    }

    // ---- Per-layer profile (mvncGetGraphOption TIME_TAKEN) -------------
    let loaded = api.load_tensor(graph, t, None).expect("load");
    let res = api.get_result(graph, loaded).expect("result");
    println!("\nslowest layers of the last run:");
    let mut layers = res.run.layers.clone();
    layers.sort_by_key(|l| std::cmp::Reverse(l.duration()));
    for l in layers.iter().take(5) {
        println!(
            "  {:<28} {:>9} ({}{})",
            l.name,
            format!("{}", l.duration()),
            l.mnemonic,
            if l.on_sipp { ", SIPP" } else { "" },
        );
    }
    println!(
        "\nchip energy for that inference: {:.2} mJ (avg {:.2} W over {:.1} ms)",
        res.run.energy_j * 1e3,
        res.run.energy_j / res.run.duration().as_secs(),
        res.run.duration().as_millis(),
    );
    println!(
        "stick temperature estimate: {:.1} °C (throttles at 80 °C)",
        api.fleet().devices[0].thermal_c()
    );
}
