//! Fleet sizing under a power budget: how many sticks replace a GPU?
//!
//! Sweeps the multi-VPU fleet from 1 to 16 sticks, reporting throughput,
//! Eq. (1) throughput-per-Watt, and measured per-inference chip energy,
//! then answers the paper's §V question: at what fleet size does the VPU
//! configuration match the CPU and GPU, and at what TDP?
//!
//! ```text
//! cargo run --release --example power_budget
//! ```

use vpu_coprocessor::framework::multivpu::{MultiVpu, MultiVpuConfig};
use vpu_coprocessor::framework::{IntelCpu, ModelBundle, NvGpu, TargetDevice};
use vpu_coprocessor::nn::googlenet::Variant;

fn main() {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);

    // Reference throughputs at their best batch size (16).
    let cpu_ips = {
        let mut t = IntelCpu::new(model.clone());
        t.run_throughput(64, 16).images_per_sec()
    };
    let gpu_ips = {
        let mut t = NvGpu::new(model.clone());
        t.run_throughput(64, 16).images_per_sec()
    };
    println!(
        "references at batch 16:  CPU {cpu_ips:.1} img/s (80 W), GPU {gpu_ips:.1} img/s (80 W)\n"
    );

    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>12} {:>9}",
        "sticks", "img/s", "img/W", "mJ/image", "stick TDP W", "vs GPU"
    );
    let mut cpu_match = None;
    let mut gpu_match = None;
    for n in 1..=16usize {
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(n), &model);
        let images = (n * 8).max(16);
        let run = mv.run_pipeline(images);
        let ips = run.images_per_sec();
        let tdp = 2.5 * n as f64;
        let energy_mj = run.energy_j / images as f64 * 1e3;
        println!(
            "{n:>6} {ips:>9.1} {:>9.2} {energy_mj:>10.1} {tdp:>12.1} {:>8.2}x",
            ips / tdp,
            ips / gpu_ips
        );
        if cpu_match.is_none() && ips >= cpu_ips {
            cpu_match = Some((n, tdp));
        }
        if gpu_match.is_none() && ips >= gpu_ips {
            gpu_match = Some((n, tdp));
        }
    }

    if let Some((n, tdp)) = cpu_match {
        println!(
            "\n→ {n} sticks match the CPU: {tdp:.1} W of stick TDP vs 80 W ({:.1}x reduction; {:.1}x on chip TDP alone)",
            80.0 / tdp,
            80.0 / (0.9 * n as f64)
        );
    }
    if let Some((n, tdp)) = gpu_match {
        println!(
            "→ {n} sticks match the GPU: {tdp:.1} W of stick TDP vs 80 W ({:.1}x reduction; {:.1}x on chip TDP alone)",
            80.0 / tdp,
            80.0 / (0.9 * n as f64)
        );
    }
    println!(
        "\nthe paper's abstract quotes 'similar performance … while reducing\n\
         the TDP up to 8x' — the chip-TDP framing of the CPU match above."
    );
}
