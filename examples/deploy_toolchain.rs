//! The full deployment toolchain, end to end — what `mvNCCompile` does:
//!
//! 1. parse a Caffe deploy **prototxt** (written the explicit way, with
//!    stand-alone ReLU and Dropout layers);
//! 2. run the **graph-compiler passes** (fuse ReLU into convolutions,
//!    drop inference no-ops);
//! 3. quantize the weights and emit the binary **graph file**;
//! 4. upload it to a simulated stick via the NCAPI and classify.
//!
//! ```text
//! cargo run --release --example deploy_toolchain
//! ```

use std::sync::Arc;
use vpu_coprocessor::framework::ModelBundle;
use vpu_coprocessor::nn::{init, optimize, prototxt};
use vpu_coprocessor::platform::graphfile;
use vpu_coprocessor::platform::{Fleet, Ncapi, NcsConfig, Topology};
use vpu_coprocessor::sim::SimTime;
use vpu_coprocessor::tensor::{Shape, Tensor};

const DEPLOY_PROTOTXT: &str = r#"
name: "lenet-ish"
input: "data"
input_dim: 1
input_dim: 3
input_dim: 28
input_dim: 28
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 8 kernel_size: 5 pad: 2 }
}
layer { name: "relu1" type: "ReLU" bottom: "conv1" top: "conv1" }
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "relu1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "conv2"
  type: "Convolution"
  bottom: "pool1"
  top: "conv2"
  convolution_param { num_output: 16 kernel_size: 3 pad: 1 }
}
layer { name: "relu2" type: "ReLU" bottom: "conv2" top: "conv2" }
layer { name: "drop" type: "Dropout" bottom: "relu2" top: "drop" dropout_param { dropout_ratio: 0.4 } }
layer {
  name: "fc"
  type: "InnerProduct"
  bottom: "drop"
  top: "fc"
  inner_product_param { num_output: 10 }
}
layer { name: "prob" type: "Softmax" bottom: "fc" top: "prob" }
"#;

fn main() {
    // 1. Parse.
    let spec = prototxt::parse(DEPLOY_PROTOTXT).expect("parse deploy prototxt");
    println!("parsed '{}': {} layers", spec.name, spec.nodes.len());

    // 2. Optimize.
    let (opt, stats) = optimize::optimize(&spec);
    println!(
        "compiler passes: {} ReLU(s) fused, {} dropout(s) dropped -> {} layers",
        stats.relus_fused,
        stats.dropouts_dropped,
        opt.nodes.len()
    );

    // 3. Compile the graph file.
    let opt = Arc::new(opt);
    let weights = init::xavier(&opt, 42);
    let blob = graphfile::compile(&opt, &weights);
    println!("graph file: {} bytes (fp16 weights + metadata + checksum)", blob.len());
    let parsed = graphfile::parse(&blob).expect("graph file round trip");
    println!(
        "  validated: '{}', input {:?}, {} weighted layers",
        parsed.name,
        parsed.input,
        parsed.layers.len()
    );

    // 4. Deploy the *blob itself* to a stick and classify one input.
    // The device executes exactly the weights the graph file carries
    // (already binary16-rounded), and the USB link is charged the real
    // blob size.
    let model = ModelBundle::deploy(opt.clone(), parsed.to_weights());
    let mut api = Ncapi::new(Fleet::new(1, Topology::AllRoot, NcsConfig::default()));
    api.open_device(0, SimTime::ZERO).expect("open");
    let (graph, ready) = api.alloc_compiled(0, &opt, &blob, SimTime::ZERO).expect("alloc");

    let input = Tensor::<f32>::from_fn(Shape::chw(3, 28, 28), |_, c, h, w| {
        ((h * 28 + w + c * 7) % 19) as f32 / 19.0 - 0.4
    });
    let output = model.net16.forward(&input.quantize_fp16());
    let loaded = api.load_tensor(graph, ready, Some(output)).expect("load");
    let res = api.get_result(graph, loaded).expect("result");
    let out = res.output.expect("output");
    let (pred, conf) = out.argmax_item(0);
    println!(
        "\ninference on the stick: class {pred} at {:.1}% confidence, {:.2} ms end to end",
        conf * 100.0,
        (res.returned_at - ready).as_millis()
    );
    println!("toolchain complete: prototxt -> passes -> graph file -> NCAPI -> result");
}
