//! One fully observed serving run: follow single requests through the
//! Arrive→…→Complete phase chain, print the metric registry, and write
//! a Perfetto-loadable Chrome trace plus the sampled time series.
//!
//! ```text
//! cargo run --release --example observed_serving
//! ```
//!
//! Then open `observed_serving_trace.json` at <https://ui.perfetto.dev>.

use vpu_coprocessor::framework::ModelBundle;
use vpu_coprocessor::nn::googlenet::Variant;
use vpu_coprocessor::obs::{chrome_trace, Phase};
use vpu_coprocessor::serving::{
    serve_observed, ArrivalProcess, FleetSpec, ObsConfig, ServeConfig, ServeReport,
};
use vpu_coprocessor::sim::Duration;

fn main() {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let mut workers = FleetSpec::parse("cpu+gpu+4xvpu").unwrap().build(&model);
    let cfg = ServeConfig::default();
    let load = ArrivalProcess::Poisson { rate_per_sec: 120.0 };

    let (outcome, obs) = serve_observed(
        &mut workers,
        &cfg,
        &load,
        400,
        &ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() },
    );
    let report = ServeReport::of(&outcome, &cfg);

    // The metric registry: counters, gauges, latency histograms.
    print!("{}", obs.registry.summary());

    // Follow the first request that ran on the VPU worker: every phase
    // of its life, stamped on the virtual clock.
    let chained =
        outcome.completed.iter().find_map(|r| Some((r.id, obs.events.request_chain(r.id)?)));
    if let Some((id, chain)) = chained {
        println!("\nrequest {id} phase chain:");
        for (phase, at) in &chain {
            println!("  {:>10}  t={:9.3} ms", phase.name(), at.as_millis());
        }
        assert_eq!(chain.len(), Phase::REQUEST_CHAIN.len());
    }

    println!(
        "\ncompleted {} / shed {}  p99 {:.1} ms  goodput {:.1} req/s",
        report.completed, report.shed, report.latency.p99_ms, report.goodput_rps
    );

    std::fs::write("observed_serving_trace.json", chrome_trace(&obs.events)).unwrap();
    std::fs::write("observed_serving_series.csv", obs.series.csv()).unwrap();
    println!("wrote observed_serving_trace.json (load at ui.perfetto.dev)");
    println!("wrote observed_serving_series.csv");
}
