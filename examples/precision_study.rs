//! FP32 vs FP16: what half precision actually does to a classifier.
//!
//! Runs one calibrated synthetic subset through the same network at both
//! precisions (real arithmetic on both paths) and breaks the differences
//! down — the paper's Fig. 7 plus a deeper look at where the two
//! implementations disagree.
//!
//! ```text
//! cargo run --release --example precision_study
//! ```

use std::sync::Arc;
use vpu_coprocessor::data::calibrate::calibrated_set;
use vpu_coprocessor::data::DatasetConfig;
use vpu_coprocessor::framework::metrics::{accuracy_report, confidence_diff};
use vpu_coprocessor::framework::runner::{predictions_fp16, predictions_fp32};
use vpu_coprocessor::framework::{ImageFolder, ModelBundle};
use vpu_coprocessor::nn::googlenet::Variant;

fn main() {
    let variant = Variant::Tiny;
    let spec = Arc::new(variant.build());
    let mut cfg = DatasetConfig::ilsvrc_like(10, 250, variant.input_shape(), 2012);
    cfg.distractor_mix = 0.10;
    println!("calibrating synthetic dataset to the paper's ~32% top-1 error ...");
    let (set, weights, cal) = calibrated_set(&spec, cfg, 0.32, 150);
    println!(
        "  σ = {:.3} after {} bisection steps (probe error {:.3})\n",
        cal.sigma, cal.iterations, cal.achieved_error
    );
    let model = ModelBundle::deploy(spec, weights);
    let set = Arc::new(set);
    let folder = ImageFolder::new(set.clone(), 0);

    let p32 = predictions_fp32(&model, &folder);
    let p16 = predictions_fp16(&model, &folder);
    let r32 = accuracy_report("cpu/fp32", &p32);
    let r16 = accuracy_report("vpu/fp16", &p16);
    println!("top-1 error:  fp32 {:.3}   fp16 {:.3}", r32.top1_error(), r16.top1_error());
    println!(
        "mean top-1 confidence:  fp32 {:.3}   fp16 {:.3}",
        r32.mean_top1_confidence, r16.mean_top1_confidence
    );

    let diff = confidence_diff(&p32, &p16);
    println!("\nconfidence agreement (both-correct images, n={}):", diff.images_compared);
    println!("  mean |Δconfidence| = {:.5}", diff.mean_abs_diff);
    println!("  max  |Δconfidence| = {:.5}", diff.max_abs_diff);
    println!("  top-1 label disagreements: {} / {}", diff.disagreements, p32.len());

    // Where do the two precisions disagree? Near the decision boundary.
    println!("\nimages where fp32 and fp16 picked different labels:");
    let mut any = false;
    for (a, b) in p32.iter().zip(&p16) {
        if a.predicted != b.predicted {
            any = true;
            println!(
                "  image {:>3}: fp32 -> {} ({:.3}), fp16 -> {} ({:.3}), truth {}",
                a.image, a.predicted, a.confidence, b.predicted, b.confidence, a.label
            );
        }
    }
    if !any {
        println!("  none on this subset — every flip the paper saw is boundary noise");
    }

    // Distribution of |Δconf| in coarse buckets.
    let mut buckets = [0usize; 5];
    for (a, b) in p32.iter().zip(&p16) {
        let d = (a.confidence - b.confidence).abs();
        let k = if d < 1e-4 {
            0
        } else if d < 1e-3 {
            1
        } else if d < 5e-3 {
            2
        } else if d < 2e-2 {
            3
        } else {
            4
        };
        buckets[k] += 1;
    }
    println!("\n|Δ top-1 confidence| histogram over all images:");
    for (label, count) in ["< 1e-4", "< 1e-3", "< 5e-3", "< 2e-2", ">= 2e-2"].iter().zip(buckets) {
        println!("  {label:>8}: {}", "#".repeat(count.min(60)));
    }
    println!(
        "\nconclusion: FP16 moves confidences by ~1e-3 and flips only\n\
         boundary cases — the paper's 'negligible differences due to\n\
         arithmetic precision' (§IV-B), reproduced with real binary16."
    );
}
