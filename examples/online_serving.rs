//! Online serving on the simulated fleet: steady Poisson traffic and a
//! bursty MMPP storm against three fleet shapes, comparing how the
//! dispatch policies hold the p99 under each — then the E20 closed
//! loop: an elastic `8*vpu` stick fleet under the autoscaling
//! controller, reclaiming the idle headroom a static fleet pays for —
//! the E21 self-observability report: what watching the run costs in
//! wall time, recorder nanoseconds and exporter bytes — and the E22
//! gray-failure drill: a stick silently slows 6x and the hedging +
//! quarantine defenses claw the p99 back, pricing the hedges in joules
//! — and the E23 tail sampler: the same observed run kept at 1-in-20,
//! every anomalous chain intact, with one request's causal timeline
//! explained from the thinned trace — and the E24 what-if ranking:
//! which component a 2x speed-up would actually buy p99 from,
//! predicted from the recorded attribution alone.
//!
//! ```text
//! cargo run --release --example online_serving
//! ```

use vpu_coprocessor::framework::ModelBundle;
use vpu_coprocessor::nn::googlenet::Variant;
use vpu_coprocessor::serving::{
    serve, serve_autoscaled, ArrivalProcess, DispatchPolicy, FleetSpec, ScalingConfig, ServeConfig,
    ServeReport,
};
use vpu_coprocessor::sim::Duration;

fn main() {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = 400;

    // Steady traffic near the mixed fleet's comfort zone, and a bursty
    // storm with the same mean rate.
    let steady = ArrivalProcess::Poisson { rate_per_sec: 120.0 };
    let bursty = ArrivalProcess::Mmpp {
        rate_lo_per_sec: 40.0,
        rate_hi_per_sec: 200.0,
        mean_dwell: Duration::from_millis(250.0),
    };

    println!("{n} requests per cell, p99 SLO 500 ms, fleet cpu+gpu+8xvpu\n");
    println!(
        "{:<18} {:>8} {:>8} {:>9} {:>7}  traffic",
        "policy", "p50 ms", "p99 ms", "goodput", "shed%"
    );
    for (label, load) in [("steady", &steady), ("bursty", &bursty)] {
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastOutstanding,
            DispatchPolicy::CostAware,
        ] {
            let cfg = ServeConfig { policy, ..ServeConfig::default() };
            let mut workers = FleetSpec::parse("cpu+gpu+8xvpu").unwrap().build(&model);
            let outcome = serve(&mut workers, &cfg, load, n);
            let r = ServeReport::of(&outcome, &cfg);
            println!(
                "{:<18} {:>8.1} {:>8.1} {:>9.1} {:>7.1}  {}",
                policy.name(),
                r.latency.p50_ms,
                r.latency.p99_ms,
                r.goodput_rps,
                r.shed_rate * 100.0,
                label
            );
        }
    }

    // Fleet shapes under the same steady load: the host devices absorb
    // what a small VPU fleet cannot — but headroom has an energy price.
    // img/W here is completions over *integrated* island energy (busy +
    // gated draw), next to the paper's Eq. 1 nameplate-TDP accounting.
    println!("\ncost-aware dispatch, steady 120 req/s, per fleet:");
    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>7} {:>8} {:>9} {:>8} {:>7}",
        "fleet", "p50 ms", "p99 ms", "goodput", "shed%", "J/inf", "img/W", "Eq.1", "idle%"
    );
    for fleet in ["8xvpu", "cpu+gpu", "cpu+gpu+8xvpu"] {
        let cfg = ServeConfig { policy: DispatchPolicy::CostAware, ..ServeConfig::default() };
        let mut workers = FleetSpec::parse(fleet).unwrap().build(&model);
        let outcome = serve(&mut workers, &cfg, &steady, n);
        let r = ServeReport::of(&outcome, &cfg);
        let e = &r.energy;
        let idle_pct = if e.fleet_j > 0.0 { e.idle_j / e.fleet_j * 100.0 } else { 0.0 };
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>9.1} {:>7.1} {:>8.3} {:>9.2} {:>8.2} {:>7.1}",
            fleet,
            r.latency.p50_ms,
            r.latency.p99_ms,
            r.goodput_rps,
            r.shed_rate * 100.0,
            e.j_per_inference,
            e.img_per_watt,
            e.img_per_watt_tdp,
            idle_pct
        );
    }

    // E20: close the loop on that idle price. Eight independent VPU
    // sticks (`8*vpu` — the elastic unit, unlike the `8xvpu` pipeline)
    // at 20% load, with each `ncsw-ctrl` policy draining and
    // power-gating the sticks the load does not need. `J reclaimed` is
    // the exact idle energy the gated windows avoided; `Δ attain` is
    // what that costs in SLO attainment against the static fleet.
    let spec = FleetSpec::parse("8*vpu").unwrap();
    let probe = spec.build(&model);
    let capacity = spec.capacity_rps(&probe);
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let cfg = ServeConfig { max_batch, ..ServeConfig::default() };
    let scaling = ScalingConfig { elastic: spec.elastic_workers(), ..ScalingConfig::default() };
    let low = ArrivalProcess::Poisson { rate_per_sec: capacity * 0.2 };

    let attain = |o: &vpu_coprocessor::serving::ServeOutcome| {
        let good = o.completed.iter().filter(|r| r.latency() <= cfg.slo).count();
        good as f64 / o.generated.max(1) as f64 * 100.0
    };
    let mut workers = spec.build(&model);
    let stat = serve(&mut workers, &cfg, &low, n);
    let stat_report = ServeReport::of(&stat, &cfg);
    let horizon_s = (stat.energy_horizon() - stat.epoch).as_secs();
    println!("\nE20 autoscaling, fleet 8*vpu at 0.2x nameplate ({:.1} req/s):", capacity * 0.2);
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>10} {:>6} {:>6}",
        "policy", "attain%", "stick·s", "fleet J", "reclaim J", "ups", "downs"
    );
    println!(
        "{:<12} {:>9.2} {:>9.1} {:>9.3} {:>10.3} {:>6} {:>6}",
        "static",
        attain(&stat),
        stat.workers.len() as f64 * horizon_s,
        stat_report.energy.fleet_j,
        0.0,
        0,
        0
    );
    for name in vpu_coprocessor::ctrl::POLICY_NAMES {
        let mut policy = vpu_coprocessor::ctrl::policy(name).unwrap();
        let mut workers = spec.build(&model);
        let outcome = serve_autoscaled(&mut workers, &cfg, &low, n, &scaling, policy.as_mut());
        let r = ServeReport::of(&outcome, &cfg);
        let s = r.scaling.as_ref().unwrap();
        println!(
            "{:<12} {:>9.2} {:>9.1} {:>9.3} {:>10.3} {:>6} {:>6}  Δ attain {:+.2} pts",
            name,
            attain(&outcome),
            s.stick_seconds,
            r.energy.fleet_j,
            s.reclaimed_j,
            s.scale_ups,
            s.scale_downs,
            attain(&outcome) - attain(&stat)
        );
    }

    // E21: what does watching all of this cost? Profile one observed
    // run on the mixed fleet — the wall-clock profiler times the event
    // loop and the exporters while the virtual clock drives the
    // simulation, and the overhead ledger prices the recorder path.
    use vpu_coprocessor::obs::{chrome_trace_to, prof, OverheadLedger, Throughput};
    use vpu_coprocessor::serving::{serve_observed, ObsConfig};
    let mut workers = FleetSpec::parse("cpu+gpu+8xvpu").unwrap().build(&model);
    let cfg = ServeConfig::default();
    prof::start();
    let wall = std::time::Instant::now();
    let (outcome, obs) = serve_observed(
        &mut workers,
        &cfg,
        &steady,
        n,
        &ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() },
    );
    let mut trace = Vec::new();
    let trace_stats = chrome_trace_to(&obs.events, &mut trace).unwrap();
    let mut csv = Vec::new();
    let series_stats = obs.series.csv_to(&mut csv).unwrap();
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let report = prof::stop();
    let throughput = Throughput {
        sim_events: outcome.sim_events,
        requests: outcome.generated as u64,
        virtual_ns: outcome.energy_horizon().since(outcome.epoch).nanos(),
        wall_ns,
    };
    let ledger = OverheadLedger {
        events_recorded: obs.events.len() as u64,
        trace_bytes: trace_stats.bytes,
        series_bytes: series_stats.bytes,
        peak_buffered_bytes: trace_stats.peak_buffered.max(series_stats.peak_buffered),
        recorder_ns: report.counter(prof::RECORDER_NS),
    };
    println!("\nE21 self-observability, one observed run on cpu+gpu+8xvpu:");
    println!("  {}", throughput.render());
    println!("  {}", ledger.render());

    // E22: gray failures. One stick silently slows 6x mid-run — no
    // error, so the circuit breaker never trips — then the same run
    // with the defenses on: hedged dispatch duplicates the slow
    // batches (losers billed as wasted joules) and the quarantine
    // pulls the sick stick from the pool.
    use vpu_coprocessor::faults::{FaultEvent, FaultPlan};
    use vpu_coprocessor::serving::GrayConfig;
    let spec = FleetSpec::parse("vpu+vpu+vpu+vpu").unwrap();
    let probe = spec.build(&model);
    let rate = spec.capacity_rps(&probe) * 0.7;
    let gray_batch = spec.preferred_batch(&probe);
    drop(probe);
    let gray_n = 200; // the E22 bench shape
    let horizon = gray_n as f64 / rate;
    let mut plan = FaultPlan::empty();
    plan.push(
        Some(0),
        FaultEvent::FailSlow {
            at: Duration::from_secs(horizon * 0.15),
            duration: Duration::from_secs(horizon * 0.60),
            factor: 6.0,
        },
    );
    let gray_load = ArrivalProcess::Poisson { rate_per_sec: rate };
    println!("\nE22 gray failure: one of four sticks silently 6x slower for 60% of the run:");
    for (arm, gray) in
        [("defenseless", GrayConfig::default()), ("defended", GrayConfig::defended())]
    {
        let cfg = ServeConfig { max_batch: gray_batch, gray, ..ServeConfig::default() };
        let mut workers = plan.apply(spec.build(&model), cfg.seed);
        let outcome = serve(&mut workers, &cfg, &gray_load, gray_n);
        let r = ServeReport::of(&outcome, &cfg);
        println!(
            "  {:<12} p99 {:>6.1} ms   hedges {:>2} (won {})   quarantines {}   wasted {:.4} J",
            arm,
            r.latency.p99_ms,
            outcome.gray.hedges,
            outcome.gray.hedge_wins,
            outcome.gray.quarantines,
            outcome.gray.hedge_wasted_pj as f64 * 1e-12,
        );
    }

    // E23: observability that scales. Rerun the observed cell with the
    // tail sampler: each request's span chain buffers until its
    // terminal event, anomalies (SLO violations, sheds, retries,
    // hedges...) are always kept in full, a top-K reservoir keeps the
    // latency tail, and a seeded 1-in-N hash keeps a happy-path slice.
    // Sampling is passive — the serving outcome never moves — it only
    // decides which chains survive into the exported trace.
    use vpu_coprocessor::analyze::SpanForest;
    use vpu_coprocessor::obs::{chrome_trace, SamplePolicy};
    let observed = |sample: Option<SamplePolicy>| {
        let mut workers = FleetSpec::parse("cpu+gpu+8xvpu").unwrap().build(&model);
        serve_observed(
            &mut workers,
            &cfg,
            &steady,
            n,
            &ObsConfig {
                sample_every: Duration::from_millis(10.0),
                sample,
                ..ObsConfig::default()
            },
        )
    };
    let (_, full) = observed(None);
    let (_, thinned) = observed(Some(SamplePolicy::parse("1-in-20+top8").unwrap()));
    let stats = thinned.sample.clone().expect("sampled run carries its keep/drop ledger");
    let full_bytes = chrome_trace(&full.events).len();
    let thin_bytes = chrome_trace(&thinned.events).len();
    println!("\nE23 tail sampling, the same observed run at 1-in-20+top8:");
    println!("  {}", stats.render());
    println!(
        "  trace {full_bytes} B -> {thin_bytes} B ({:.1}x smaller), outcome untouched",
        full_bytes as f64 / thin_bytes as f64
    );

    // One kept request, explained from the *thinned* trace: the phase
    // timeline and the nine-segment latency attribution survive intact
    // for every chain the sampler kept — here, the slowest request in
    // the run (reservoir-kept, so always present).
    let forest = SpanForest::build(&thinned.events);
    let slowest = forest
        .requests
        .values()
        .filter_map(|r| r.latency().map(|l| (l.nanos(), r.id)))
        .max()
        .map(|(_, id)| id)
        .expect("the reservoir keeps the latency tail");
    println!();
    match vpu_coprocessor::analyze::explain_request(&thinned.events, slowest) {
        Ok(text) => print!("{text}"),
        Err(e) => println!("explain failed: {e}"),
    }

    // E24: the counterfactual question — which component is *worth*
    // speeding up? The what-if engine virtually scales one component's
    // segment inside the recorded attribution (queue-blind, no
    // re-simulation) and ranks components by predicted p99 gain at
    // f = 0.5. `repro whatif` validates exactly these predictions
    // against re-simulations with the service model actually scaled,
    // and classifies every disagreement (queueing, batch-shift, ...).
    use vpu_coprocessor::analyze::{rank, Analysis};
    let analysis = Analysis::of(&full.events);
    println!("\nE24 what-if ranking, every component virtually 2x faster (from the trace alone):");
    println!(
        "  {:<11} {:>8} {:>6} {:>13} {:>13} {:>9}",
        "component", "affected", "seg%", "base p99 ms", "pred p99 ms", "gain ms"
    );
    for p in rank(&analysis, 0.5) {
        println!(
            "  {:<11} {:>8} {:>6.1} {:>13.1} {:>13.1} {:>9.1}",
            p.component,
            p.affected,
            p.seg_share * 100.0,
            p.base.p99_ms,
            p.predicted.p99_ms,
            p.p99_gain_ms()
        );
    }
}
