//! Online serving on the simulated fleet: steady Poisson traffic and a
//! bursty MMPP storm against three fleet shapes, comparing how the
//! dispatch policies hold the p99 under each.
//!
//! ```text
//! cargo run --release --example online_serving
//! ```

use vpu_coprocessor::framework::ModelBundle;
use vpu_coprocessor::nn::googlenet::Variant;
use vpu_coprocessor::serving::{
    serve, ArrivalProcess, DispatchPolicy, FleetSpec, ServeConfig, ServeReport,
};
use vpu_coprocessor::sim::Duration;

fn main() {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = 400;

    // Steady traffic near the mixed fleet's comfort zone, and a bursty
    // storm with the same mean rate.
    let steady = ArrivalProcess::Poisson { rate_per_sec: 120.0 };
    let bursty = ArrivalProcess::Mmpp {
        rate_lo_per_sec: 40.0,
        rate_hi_per_sec: 200.0,
        mean_dwell: Duration::from_millis(250.0),
    };

    println!("{n} requests per cell, p99 SLO 500 ms, fleet cpu+gpu+8xvpu\n");
    println!(
        "{:<18} {:>8} {:>8} {:>9} {:>7}  traffic",
        "policy", "p50 ms", "p99 ms", "goodput", "shed%"
    );
    for (label, load) in [("steady", &steady), ("bursty", &bursty)] {
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastOutstanding,
            DispatchPolicy::CostAware,
        ] {
            let cfg = ServeConfig { policy, ..ServeConfig::default() };
            let mut workers = FleetSpec::parse("cpu+gpu+8xvpu").unwrap().build(&model);
            let outcome = serve(&mut workers, &cfg, load, n);
            let r = ServeReport::of(&outcome, &cfg);
            println!(
                "{:<18} {:>8.1} {:>8.1} {:>9.1} {:>7.1}  {}",
                policy.name(),
                r.latency.p50_ms,
                r.latency.p99_ms,
                r.goodput_rps,
                r.shed_rate * 100.0,
                label
            );
        }
    }

    // Fleet shapes under the same steady load: the host devices absorb
    // what a small VPU fleet cannot — but headroom has an energy price.
    // img/W here is completions over *integrated* island energy (busy +
    // gated draw), next to the paper's Eq. 1 nameplate-TDP accounting.
    println!("\ncost-aware dispatch, steady 120 req/s, per fleet:");
    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>7} {:>8} {:>9} {:>8} {:>7}",
        "fleet", "p50 ms", "p99 ms", "goodput", "shed%", "J/inf", "img/W", "Eq.1", "idle%"
    );
    for fleet in ["8xvpu", "cpu+gpu", "cpu+gpu+8xvpu"] {
        let cfg = ServeConfig { policy: DispatchPolicy::CostAware, ..ServeConfig::default() };
        let mut workers = FleetSpec::parse(fleet).unwrap().build(&model);
        let outcome = serve(&mut workers, &cfg, &steady, n);
        let r = ServeReport::of(&outcome, &cfg);
        let e = &r.energy;
        let idle_pct = if e.fleet_j > 0.0 { e.idle_j / e.fleet_j * 100.0 } else { 0.0 };
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>9.1} {:>7.1} {:>8.3} {:>9.2} {:>8.2} {:>7.1}",
            fleet,
            r.latency.p50_ms,
            r.latency.p99_ms,
            r.goodput_rps,
            r.shed_rate * 100.0,
            e.j_per_inference,
            e.img_per_watt,
            e.img_per_watt_tdp,
            idle_pct
        );
    }
}
