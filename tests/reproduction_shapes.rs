//! Reproduction acceptance tests: the qualitative *shape* of every
//! figure must hold at CI scale (DESIGN.md §5 fidelity targets).
//!
//! These run the actual experiment harness (tiny scale) and assert the
//! relations the paper's conclusions rest on — who wins, by roughly what
//! factor, where crossovers fall.

use vpu_coprocessor::experiments::{ablations, anchors, fig6, fig7, fig8, timeline, Scale};

#[test]
fn headline_every_anchor_within_8_percent() {
    let a = anchors::anchors(Scale::Tiny);
    assert!(
        a.worst_deviation() < 0.08,
        "worst anchor deviation {:.1}%",
        a.worst_deviation() * 100.0
    );
}

#[test]
fn fig6a_vpu_matches_gpu_and_beats_cpu() {
    let r = fig6::fig6a(Scale::Tiny);
    let get =
        |n: &str| r.series.iter().find(|s| s.target == n).map(|s| s.mean_img_per_sec()).unwrap();
    let (cpu, gpu, vpu) = (get("cpu"), get("gpu"), get("vpu"));
    // "a multi-VPU configuration provides similar performance compared to
    // reference CPU and GPU implementations" — VPU ~ GPU, both >> CPU.
    assert!((vpu - gpu).abs() / gpu < 0.15, "vpu {vpu} vs gpu {gpu}");
    assert!(vpu / cpu > 1.4, "vpu {vpu} vs cpu {cpu}");
}

#[test]
fn fig6b_scaling_ordering() {
    let r = fig6::fig6b(Scale::Tiny);
    let at8 = |n: &str| {
        r.series.iter().find(|s| s.target == n).map(|s| s.normalized.last().unwrap().1).unwrap()
    };
    // Near-ideal VPU scaling, GPU ~2x, CPU flat.
    assert!(at8("vpu") > 6.8);
    assert!(at8("gpu") < 2.2 && at8("gpu") > 1.6);
    assert!(at8("cpu") < 1.3);
}

#[test]
fn fig7_fp16_is_negligibly_different() {
    let r = fig7::fig7(Scale::Tiny);
    let gap = (r.mean_cpu_error() - r.mean_vpu_error()).abs();
    assert!(gap < 0.05, "fp32/fp16 error gap {gap}");
    let cd = r.mean_conf_diff();
    assert!(cd > 0.0 && cd < 0.02, "confidence diff {cd}");
}

#[test]
fn fig8a_power_efficiency_ordering() {
    let r = fig8::fig8a(Scale::Tiny);
    let vpu = r.series.iter().find(|s| s.target == "vpu").unwrap().points[0].2;
    let gpu = r.series.iter().find(|s| s.target == "gpu").unwrap().points.last().unwrap().2;
    let cpu = r.series.iter().find(|s| s.target == "cpu").unwrap().points.last().unwrap().2;
    // "over 3x higher" throughput/W.
    assert!(vpu / gpu > 3.0, "vpu/gpu {}", vpu / gpu);
    assert!(vpu / cpu > 6.0, "vpu/cpu {}", vpu / cpu);
}

#[test]
fn fig8b_projection_crossovers() {
    let r = fig8::fig8b(Scale::Tiny);
    let max = |n: &str| {
        r.series
            .iter()
            .find(|s| s.target == n)
            .map(|s| s.simulated.iter().map(|&(_, v)| v).fold(0.0, f64::max))
            .unwrap()
    };
    // 16-stick VPU ≈ 3.4x CPU, ≈ 1.9x GPU (paper §V).
    assert!((2.8..4.0).contains(&(max("vpu") / max("cpu"))));
    assert!((1.6..2.2).contains(&(max("vpu") / max("gpu"))));
}

#[test]
fn fig4_timeline_overlaps() {
    let t = timeline::timeline_with(4, 8);
    assert!(t.overlap_fraction > 0.6, "devices must overlap: {}", t.overlap_fraction);
}

#[test]
fn ablations_tell_a_consistent_story() {
    let usb = ablations::ablation_usb(Scale::Tiny);
    assert!(usb.rows[0].1 >= usb.rows[2].1, "root ports can't be slower than one hub");
    let shave = ablations::ablation_shave();
    assert!(shave.rows.last().unwrap().2 / shave.rows[0].2 > 8.0, "SHAVE scaling");
}
