//! Property-based tests over the cross-crate simulation invariants.

use proptest::prelude::*;
use std::sync::Arc;
use vpu_coprocessor::framework::multivpu::{MultiVpu, MultiVpuConfig};
use vpu_coprocessor::framework::ModelBundle;
use vpu_coprocessor::nn::googlenet::Variant;
use vpu_coprocessor::nn::graph::CompiledNetwork;
use vpu_coprocessor::nn::{init, NetBuilder};
use vpu_coprocessor::num::f16;
use vpu_coprocessor::tensor::kernels::gemm::AccumMode;
use vpu_coprocessor::tensor::{Shape, Tensor};

/// Build a random small conv net from proptest-chosen parameters.
fn random_net(oc1: usize, k: usize, classes: usize) -> Arc<vpu_coprocessor::nn::NetworkSpec> {
    let mut b = NetBuilder::new("prop", Shape::chw(3, 12, 12));
    let x = b.input();
    let c = b.conv("c1", x, oc1, k, 1, k / 2, true);
    let p = b.max_pool("p1", c, 2, 2, 0);
    let d = b.dense("fc", p, classes);
    b.softmax("prob", d);
    Arc::new(b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FP16 inference stays within a bounded distance of FP32 for any
    /// small network and any bounded input — the Fig. 7 claim as an
    /// invariant.
    #[test]
    fn fp16_drift_is_bounded(
        oc1 in 2usize..6,
        k in prop::sample::select(vec![1usize, 3, 5]),
        classes in 2usize..8,
        fill in -0.5f32..0.5,
        seed in 0u64..500,
    ) {
        let spec = random_net(oc1, k, classes);
        let w = init::xavier(&spec, seed);
        let n32 = CompiledNetwork::<f32>::compile(spec.clone(), &w, AccumMode::Widened);
        let n16 = CompiledNetwork::<f16>::compile(spec, &w, AccumMode::Native);
        let input = Tensor::<f32>::full(Shape::chw(3, 12, 12), fill);
        let o32 = n32.forward(&input);
        let o16 = n16.forward(&input.quantize_fp16());
        prop_assert!(!o32.has_nan());
        prop_assert!(!o16.has_nan());
        let drift: f32 = o32
            .as_slice()
            .iter()
            .zip(o16.as_slice())
            .map(|(a, b)| (a - b.to_f32()).abs())
            .fold(0.0, f32::max);
        prop_assert!(drift < 0.05, "max probability drift {drift}");
        // Probabilities stay a distribution at both precisions.
        let s32: f32 = o32.as_slice().iter().sum();
        prop_assert!((s32 - 1.0).abs() < 1e-4);
    }

    /// Softmax output is always a probability distribution, regardless
    /// of the logits the trunk produced.
    #[test]
    fn outputs_are_distributions(
        oc1 in 2usize..5,
        classes in 2usize..6,
        seed in 0u64..500,
        pixel in -1.0f32..1.0,
    ) {
        let spec = random_net(oc1, 3, classes);
        let w = init::xavier(&spec, seed);
        let net = CompiledNetwork::<f32>::compile(spec, &w, AccumMode::Widened);
        let out = net.forward(&Tensor::full(Shape::chw(3, 12, 12), pixel));
        let sum: f32 = out.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(out.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Multi-VPU throughput is monotone in fleet size and never beats
    /// ideal linear scaling.
    #[test]
    fn fleet_scaling_is_monotone_and_subideal(count in 2usize..5) {
        let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
        let single = {
            let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(1), &model);
            mv.run_pipeline(6).images_per_sec()
        };
        let multi = {
            let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(count), &model);
            mv.run_pipeline(6 * count).images_per_sec()
        };
        prop_assert!(multi > single * (count as f64) * 0.85, "poor scaling: {multi} vs {single}x{count}");
        prop_assert!(multi <= single * (count as f64) * 1.02, "superlinear scaling is impossible");
    }

    /// Results always come back in per-device FIFO order, whatever the
    /// fleet size and image count.
    #[test]
    fn fifo_order_always_holds(devices in 1usize..5, per_dev in 1usize..4) {
        let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
        let count = devices * per_dev;
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(devices), &model);
        let run = mv.run_pipeline(count);
        for d in 0..devices {
            let times: Vec<_> = (d..count).step_by(devices).map(|i| run.result_times[i]).collect();
            for w in times.windows(2) {
                prop_assert!(w[1] > w[0], "device {d} results out of order");
            }
        }
    }
}
