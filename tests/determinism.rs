//! Reproducibility: every experiment must be bit-identical across runs.
//!
//! The whole point of driving the devices from virtual time and seeded
//! RNG streams is that `cargo run -- fig6a` prints the same numbers on
//! every machine, every time. These tests re-run representative slices
//! of the stack twice and require exact equality.

use std::sync::Arc;
use vpu_coprocessor::data::{pseudo_train, DatasetConfig, ValidationSet};
use vpu_coprocessor::framework::multivpu::{MultiVpu, MultiVpuConfig};
use vpu_coprocessor::framework::runner::predictions_fp16;
use vpu_coprocessor::framework::{ImageFolder, IntelCpu, ModelBundle, TargetDevice};
use vpu_coprocessor::nn::googlenet::Variant;

#[test]
fn dataset_and_training_are_bit_identical() {
    let build = || {
        let spec = Arc::new(Variant::Tiny.build());
        let cfg = DatasetConfig::ilsvrc_like(10, 50, Variant::Tiny.input_shape(), 5);
        let set = ValidationSet::new(cfg);
        let w = pseudo_train(&spec, set.generator(), 5);
        (set.image(17).pixels, w)
    };
    let (img_a, w_a) = build();
    let (img_b, w_b) = build();
    assert_eq!(img_a, img_b);
    assert_eq!(w_a, w_b);
}

#[test]
fn fp16_predictions_are_bit_identical_across_runs() {
    let run = || {
        let spec = Arc::new(Variant::Tiny.build());
        let mut cfg = DatasetConfig::ilsvrc_like(10, 30, Variant::Tiny.input_shape(), 5);
        cfg.sigma = 0.3;
        let set = Arc::new(ValidationSet::new(cfg));
        let w = pseudo_train(&spec, set.generator(), 5);
        let model = ModelBundle::deploy(spec, w);
        predictions_fp16(&model, &ImageFolder::new(set, 0))
            .iter()
            .map(|p| (p.predicted, p.confidence.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn pipeline_timing_is_bit_identical_across_runs() {
    let run = || {
        let model = ModelBundle::googlenet_untrained(Variant::Full, 3);
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(4), &model);
        mv.run_pipeline(16).result_times
    };
    assert_eq!(run(), run());
}

#[test]
fn host_target_reports_are_bit_identical() {
    let run = || {
        let model = ModelBundle::googlenet_untrained(Variant::Full, 3);
        let mut cpu = IntelCpu::new(model);
        let r = cpu.run_throughput(32, 8);
        (r.wall, r.samples.mean.to_bits(), r.samples.stddev.to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn e15_serve_report_is_byte_identical_across_runs() {
    // The serving subsystem is pure virtual time + seeded streams, so
    // the whole E15 sweep must serialize to the exact same JSON.
    let run = || {
        let exp = vpu_coprocessor::experiments::serve_bench::serve_exp(
            vpu_coprocessor::experiments::Scale::Tiny,
        );
        serde_json::to_string(&exp).expect("serialize")
    };
    assert_eq!(run(), run());
}

#[test]
fn serve_outcome_is_bit_identical_across_runs() {
    use vpu_coprocessor::serving::{serve, ArrivalProcess, FleetSpec, ServeConfig};
    let run = || {
        let model = ModelBundle::googlenet_untrained(Variant::Tiny, 1);
        let mut workers = FleetSpec::parse("cpu+gpu+2xvpu").unwrap().build(&model);
        let load = ArrivalProcess::Mmpp {
            rate_lo_per_sec: 50.0,
            rate_hi_per_sec: 400.0,
            mean_dwell: vpu_coprocessor::sim::Duration::from_millis(80.0),
        };
        let outcome = serve(&mut workers, &ServeConfig::default(), &load, 200);
        outcome.completed.iter().map(|r| (r.id, r.completed, r.worker)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn energy_accounting_is_bit_identical_and_passive() {
    // The energy meter integrates island power over the same virtual
    // clock the scheduler runs on: it never advances time, never draws
    // from an RNG stream, and its picojoule counters are pure integer
    // arithmetic — so both the serve outcome and the energy totals must
    // be bit-identical across runs.
    use vpu_coprocessor::serving::{serve, ArrivalProcess, FleetSpec, ServeConfig};
    let run = || {
        let model = ModelBundle::googlenet_untrained(Variant::Tiny, 1);
        let mut workers = FleetSpec::parse("cpu+gpu+2xvpu").unwrap().build(&model);
        let load = ArrivalProcess::Poisson { rate_per_sec: 150.0 };
        let outcome = serve(&mut workers, &ServeConfig::default(), &load, 150);
        let totals = outcome.energy.totals(outcome.energy_horizon());
        let order =
            outcome.completed.iter().map(|r| (r.id, r.completed, r.worker)).collect::<Vec<_>>();
        (order, totals.active_pj, totals.wasted_pj, totals.idle_pj, totals.fleet_pj())
    };
    let (order_a, active, wasted, idle, fleet) = run();
    let (order_b, active_b, wasted_b, idle_b, fleet_b) = run();
    assert_eq!(order_a, order_b, "metering must not perturb the schedule");
    assert_eq!((active, wasted, idle, fleet), (active_b, wasted_b, idle_b, fleet_b));
    // Integer conservation: the fleet total is exactly its split.
    assert_eq!(fleet, active + wasted + idle);
    assert!(active > 0, "a loaded fleet must charge busy energy");
}

#[test]
fn observed_serve_trace_is_byte_identical_across_runs() {
    // The exporters format virtual-time stamps with fixed-precision
    // integer arithmetic (no floats in the hot path), so a traced run is
    // reproducible down to the byte: the Chrome JSON, the sampled CSV
    // and the metric summary must all match exactly across runs.
    use vpu_coprocessor::experiments::{serve_bench::traced_serve, Scale};
    use vpu_coprocessor::serving::DispatchPolicy;
    use vpu_coprocessor::sim::Duration;
    let run = || {
        let t = traced_serve(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::CostAware,
            Duration::from_millis(10.0),
        );
        (t.chrome_json, t.series_csv, t.summary)
    };
    let (json_a, csv_a, sum_a) = run();
    let (json_b, csv_b, sum_b) = run();
    assert_eq!(json_a, json_b, "Chrome trace JSON must be byte-identical");
    assert_eq!(csv_a, csv_b, "time-series CSV must be byte-identical");
    assert_eq!(sum_a, sum_b, "metric summary must be byte-identical");
    // Golden anchors: the document shape the exporter promises.
    assert!(json_a.starts_with(r#"{"displayTimeUnit":"ms","traceEvents":["#));
    assert!(json_a.contains(r#""ph":"M""#) && json_a.contains(r#""ph":"X""#));
    // Power lanes ride along as counter events, reproducibly.
    assert!(json_a.contains(r#""ph":"C""#), "trace must carry power counter samples");
    assert!(csv_a.starts_with("time_ms,queue_depth,inflight_batches,"));
    let header = csv_a.lines().next().unwrap();
    assert!(header.contains(",power_"), "series must carry per-worker power columns");
    assert!(header.ends_with(",energy_j,img_per_watt"), "series must end with energy columns");
}

#[test]
fn profiler_is_passive_bit_identical_outputs() {
    // The wall-clock profiler only reads `Instant` — it never touches
    // virtual time or the RNG streams — so running the same traced
    // experiment with profiling enabled must reproduce every
    // virtual-clock artifact byte-for-byte, while the report itself
    // proves the dispatcher scopes and the recorder meter were live.
    use vpu_coprocessor::experiments::{serve_bench::traced_serve, Scale};
    use vpu_coprocessor::obs::prof;
    use vpu_coprocessor::serving::DispatchPolicy;
    use vpu_coprocessor::sim::Duration;
    let run = || {
        traced_serve(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::CostAware,
            Duration::from_millis(10.0),
        )
    };
    let plain = run();
    assert!(!prof::enabled(), "profiler must default to off");
    prof::start();
    let profiled = run();
    let report = prof::stop();
    assert!(!prof::enabled(), "stop() must disable the profiler again");
    assert_eq!(plain.chrome_json, profiled.chrome_json);
    assert_eq!(plain.series_csv, profiled.series_csv);
    assert_eq!(plain.summary, profiled.summary);
    assert_eq!(
        serde_json::to_string(&plain.report).unwrap(),
        serde_json::to_string(&profiled.report).unwrap(),
        "the serving report must not see the profiler"
    );
    // The profiled run did observe real work.
    assert!(report.total_wall_ns > 0);
    assert!(report.scope_ns("serve.loop") > 0, "the event loop scope must be hit");
    assert!(report.scope_ns("serve.dispatch") > 0, "the dispatch scope must be hit");
    assert!(report.scope_ns("export.chrome") > 0, "the exporter scope must be hit");
    assert!(report.counter(prof::RECORDER_EVENTS) > 0, "the recorder meter must count events");
    // The ledger counts the whole log (serve-loop events plus alert
    // spans folded in afterwards); the recorder meter counts only the
    // serve-loop path it wraps.
    assert!(report.counter(prof::RECORDER_EVENTS) <= profiled.overhead.events_recorded);
}

#[test]
fn gray_defended_artifacts_are_byte_identical_across_runs() {
    // Hedging, quarantine and verify-on-complete all run on virtual
    // time and seeded streams — a defended run under injected gray
    // faults must reproduce every artifact byte-for-byte, including
    // the wasted-energy picojoule counters.
    use vpu_coprocessor::experiments::{serve_bench::traced_serve_gray, Scale};
    use vpu_coprocessor::faults::{FaultEvent, FaultPlan};
    use vpu_coprocessor::serving::{DispatchPolicy, GrayConfig};
    use vpu_coprocessor::sim::Duration;
    let run = || {
        let mut plan = FaultPlan::empty();
        plan.push(
            Some(2),
            FaultEvent::FailSlow {
                at: Duration::from_millis(200.0),
                duration: Duration::from_millis(800.0),
                factor: 6.0,
            },
        );
        plan.push(Some(0), FaultEvent::ResultCorrupt { per_image_prob: 0.05 });
        let t = traced_serve_gray(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::LeastOutstanding,
            Duration::from_millis(10.0),
            Some(&plan),
            GrayConfig::defended(),
        );
        let report = serde_json::to_string(&t.report).expect("serialize");
        (t.chrome_json, t.series_csv, t.summary, report)
    };
    let (json_a, csv_a, sum_a, rep_a) = run();
    let (json_b, csv_b, sum_b, rep_b) = run();
    assert_eq!(json_a, json_b, "defended trace JSON must be byte-identical");
    assert_eq!(csv_a, csv_b, "defended series CSV must be byte-identical");
    assert_eq!(sum_a, sum_b, "defended summary must be byte-identical");
    assert_eq!(rep_a, rep_b, "defended serve report must be byte-identical");
}

#[test]
fn gray_defenses_off_are_passive_byte_identical_to_plain_run() {
    // With every defense off and an empty fault plan, the gray code
    // path must not perturb the simulation at all: the artifacts must
    // match the plain traced run byte-for-byte.
    use vpu_coprocessor::experiments::serve_bench::{traced_serve, traced_serve_gray};
    use vpu_coprocessor::experiments::Scale;
    use vpu_coprocessor::serving::{DispatchPolicy, GrayConfig};
    use vpu_coprocessor::sim::Duration;
    let plain = traced_serve(
        Scale::Tiny,
        Duration::from_millis(500.0),
        DispatchPolicy::CostAware,
        Duration::from_millis(10.0),
    );
    let off = traced_serve_gray(
        Scale::Tiny,
        Duration::from_millis(500.0),
        DispatchPolicy::CostAware,
        Duration::from_millis(10.0),
        None,
        GrayConfig::default(),
    );
    assert_eq!(plain.chrome_json, off.chrome_json, "gray-off trace must match plain run");
    assert_eq!(plain.series_csv, off.series_csv, "gray-off series must match plain run");
    assert_eq!(plain.summary, off.summary, "gray-off summary must match plain run");
    assert_eq!(
        serde_json::to_string(&plain.report).unwrap(),
        serde_json::to_string(&off.report).unwrap(),
        "gray-off report must match plain run"
    );
}

#[test]
fn sampled_trace_is_byte_identical_and_all_keep_matches_plain() {
    // Tail sampling draws only from its own seeded stream and decides
    // keep/drop after the run, so a sampled trace must reproduce
    // byte-for-byte — and the all-keep policy must be a pure
    // pass-through, byte-identical to running with no policy at all.
    use vpu_coprocessor::experiments::serve_bench::{traced_serve, traced_serve_sampled};
    use vpu_coprocessor::experiments::Scale;
    use vpu_coprocessor::obs::SamplePolicy;
    use vpu_coprocessor::serving::{DispatchPolicy, GrayConfig};
    use vpu_coprocessor::sim::Duration;
    let sampled = |spec: &str| {
        traced_serve_sampled(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::CostAware,
            Duration::from_millis(10.0),
            None,
            GrayConfig::default(),
            Some(SamplePolicy::parse(spec).expect("spec")),
        )
    };
    let a = sampled("1-in-25+top8");
    let b = sampled("1-in-25+top8");
    assert_eq!(a.chrome_json, b.chrome_json, "sampled trace JSON must be byte-identical");
    assert_eq!(a.series_csv, b.series_csv, "sampled series CSV must be byte-identical");
    assert_eq!(a.summary, b.summary, "sampled summary must be byte-identical");
    let (sa, sb) = (a.sample.expect("sampling ledger"), b.sample.expect("sampling ledger"));
    assert_eq!(sa, sb, "the sampling ledger must reproduce exactly");
    assert!(sa.requests_dropped() > 0, "1-in-25 on a tiny run must drop some requests");
    let plain = traced_serve(
        Scale::Tiny,
        Duration::from_millis(500.0),
        DispatchPolicy::CostAware,
        Duration::from_millis(10.0),
    );
    let all = sampled("all");
    assert_eq!(plain.chrome_json, all.chrome_json, "all-keep trace must match the unsampled run");
    assert_eq!(plain.series_csv, all.series_csv, "all-keep series must match the unsampled run");
    assert_eq!(plain.summary, all.summary, "all-keep summary must match the unsampled run");
    assert!(all.sample.expect("ledger").keeps_all());
}

#[test]
fn incident_bundles_are_byte_identical_across_runs() {
    // The flight recorder snapshots off the same virtual clock the
    // scheduler runs on, so a faulted run must produce the same
    // incident bundles — trigger, window and replay command — every
    // time.
    use vpu_coprocessor::experiments::serve_bench::traced_serve_sampled;
    use vpu_coprocessor::experiments::Scale;
    use vpu_coprocessor::faults::FaultPlan;
    use vpu_coprocessor::serving::{DispatchPolicy, GrayConfig};
    use vpu_coprocessor::sim::Duration;
    let run = || {
        let plan = FaultPlan::parse("unplug@100ms:reconnect@400ms").expect("plan");
        let t = traced_serve_sampled(
            Scale::Tiny,
            Duration::from_millis(500.0),
            DispatchPolicy::CostAware,
            Duration::from_millis(10.0),
            Some(&plan),
            GrayConfig::default(),
            None,
        );
        t.incidents
            .iter()
            .map(|b| {
                (
                    b.n,
                    b.trigger.clone(),
                    b.at_ms.to_bits(),
                    b.trace_window.clone(),
                    b.replay.clone(),
                )
            })
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "an unplug fault must fire at least one incident bundle");
    assert_eq!(a, b, "incident bundles must be byte-identical across runs");
    let (_, trigger, _, window, replay) = &a[0];
    assert_eq!(trigger, "circuit-open");
    assert!(window.starts_with(r#"{"displayTimeUnit":"ms","traceEvents":["#));
    assert!(
        replay.starts_with("repro serve "),
        "replay must be a runnable repro command: {replay}"
    );
    assert!(replay.contains("--faults unplug@100ms:reconnect@400ms"));
}

#[test]
fn different_seeds_change_results() {
    let preds = |seed: u64| {
        let spec = Arc::new(Variant::Tiny.build());
        let mut cfg = DatasetConfig::ilsvrc_like(10, 30, Variant::Tiny.input_shape(), seed);
        cfg.sigma = 0.3;
        let set = Arc::new(ValidationSet::new(cfg));
        let w = pseudo_train(&spec, set.generator(), seed);
        let model = ModelBundle::deploy(spec, w);
        predictions_fp16(&model, &ImageFolder::new(set, 0))
            .iter()
            .map(|p| p.confidence.to_bits())
            .collect::<Vec<_>>()
    };
    assert_ne!(preds(1), preds(2), "seeds must matter");
}

#[test]
fn autoscaled_artifacts_are_byte_identical_per_policy() {
    // Same seed + same scaling policy => the same decisions at the same
    // virtual instants: trace JSON, series CSV (with its extra
    // live_sticks/scale_events columns) and the scaling report must all
    // reproduce byte-for-byte, for every policy.
    use vpu_coprocessor::experiments::autoscale_bench::traced_autoscale;
    use vpu_coprocessor::experiments::Scale;
    use vpu_coprocessor::sim::Duration;
    for policy in vpu_coprocessor::ctrl::POLICY_NAMES {
        let run = || {
            let t = traced_autoscale(Scale::Tiny, policy, Duration::from_millis(10.0));
            let scaling = serde_json::to_string(&t.report.scaling).expect("serialize");
            (t.chrome_json, t.series_csv, scaling)
        };
        let (json_a, csv_a, rep_a) = run();
        let (json_b, csv_b, rep_b) = run();
        assert_eq!(json_a, json_b, "{policy}: trace JSON must be byte-identical");
        assert_eq!(csv_a, csv_b, "{policy}: series CSV must be byte-identical");
        assert_eq!(rep_a, rep_b, "{policy}: scaling report must be byte-identical");
        let header = csv_a.lines().next().unwrap();
        assert!(
            header.ends_with(",live_sticks,scale_events"),
            "{policy}: autoscaled series must export the scaling columns: {header}"
        );
        assert!(json_a.contains(r#""name":"Drain""#), "{policy}: trace must carry Drain events");
    }
}
