//! Fleet-wide energy telemetry: end-to-end conservation.
//!
//! The server integrates island power models over virtual-clock busy
//! spans in exact integer picojoules (pJ = mW x ns). The exported
//! Chrome trace carries the same ledger as per-worker power counter
//! lanes, and the analyzer re-integrates those samples and attributes
//! the active energy across requests and latency segments. These tests
//! close the loop on *real* serving runs — healthy and faulted — and
//! require the books to balance exactly, as u64 equalities, at every
//! level: trace vs server, attribution vs active energy, per-request
//! segment splits vs the request's share.

use vpu_coprocessor::analyze::Analysis;
use vpu_coprocessor::experiments::serve_bench::{traced_serve_with_faults, TracedServe};
use vpu_coprocessor::experiments::Scale;
use vpu_coprocessor::faults::FaultPlan;
use vpu_coprocessor::serving::DispatchPolicy;
use vpu_coprocessor::sim::Duration;

fn tiny_run(faults: Option<&FaultPlan>) -> TracedServe {
    traced_serve_with_faults(
        Scale::Tiny,
        Duration::from_millis(500.0),
        DispatchPolicy::CostAware,
        Duration::from_millis(10.0),
        faults,
    )
}

/// All the exact-conservation laws, checked against one traced run.
fn assert_books_balance(run: &TracedServe) {
    let analysis = Analysis::from_chrome(&run.chrome_json).expect("exported trace parses");
    let e = analysis.energy.as_ref().expect("observed traces carry power lanes");

    // Law 1: the trace alone re-integrates the server's exact total.
    // Not "close" — the same u64, because both sides compute pJ = mW*ns
    // from the same step function.
    assert_eq!(e.fleet_pj, run.report.energy.fleet_pj, "trace vs server fleet energy");
    assert_eq!(e.fleet_pj, e.active_pj + e.wasted_pj + e.idle_pj, "fleet split");

    // Law 2: attribution is lossless — every active picojoule lands on
    // exactly one completed request.
    assert_eq!(e.attributed_pj, e.active_pj, "attributed vs active");
    let request_sum: u64 = e.requests.iter().map(|r| r.pj).sum();
    assert_eq!(request_sum, e.attributed_pj, "per-request sum");

    // Law 3: each request's nine-segment split telescopes to its share.
    for r in &e.requests {
        let segs: u64 = r.segs.iter().sum();
        assert_eq!(segs, r.pj, "request {} segment split", r.id);
    }

    // Law 4: per-worker ledgers tile the fleet total.
    let worker_sum: u64 = e.workers.iter().map(|w| w.total_pj).sum();
    assert_eq!(worker_sum, e.fleet_pj, "per-worker tiling");

    // The float views are just the integers at the display edge.
    let fleet_j = e.fleet_pj as f64 * 1e-12;
    assert!((run.report.energy.fleet_j - fleet_j).abs() <= 1e-9 * fleet_j.max(1.0));
}

#[test]
fn energy_books_balance_exactly_on_a_healthy_run() {
    let run = tiny_run(None);
    assert!(run.report.energy.fleet_pj > 0, "energy must integrate");
    assert_books_balance(&run);
}

#[test]
fn energy_books_balance_exactly_under_faults_and_waste_is_charged() {
    // Mid-run faults make workers fail batches and fail over: the
    // failed attempts' latency is never attributed to a request, but
    // their energy was really drawn — it must appear as *wasted*
    // energy, and every conservation law must still hold exactly.
    let plan =
        FaultPlan::parse("execerr@0.2,w1:unplug@200ms:reconnect@600ms").expect("valid fault spec");
    let run = tiny_run(Some(&plan));
    assert!(run.report.faults.injected > 0, "the plan must actually bite");
    assert_books_balance(&run);

    let analysis = Analysis::from_chrome(&run.chrome_json).unwrap();
    let e = analysis.energy.unwrap();
    assert!(e.wasted_pj > 0, "failed attempts must charge wasted energy");
    // Wasted joules surface in the server report too, in agreement.
    let wasted_j = e.wasted_pj as f64 * 1e-12;
    assert!((run.report.energy.wasted_j - wasted_j).abs() <= 1e-9 * wasted_j.max(1.0));
}

#[test]
fn faults_cost_energy_relative_to_the_healthy_run() {
    // Same seeded arrivals, same fleet: the faulted run can only burn
    // *more* total energy per completion (retries + wasted attempts),
    // never less per completed inference than the healthy run's actual
    // work — and the wasted split is where the difference shows.
    let healthy = tiny_run(None);
    let plan = FaultPlan::parse("execerr@0.3").expect("valid fault spec");
    let faulted = tiny_run(Some(&plan));
    assert_eq!(healthy.report.energy.wasted_j, 0.0, "healthy runs waste nothing");
    assert!(faulted.report.energy.wasted_j > 0.0);
    assert!(
        faulted.report.energy.j_per_inference > healthy.report.energy.j_per_inference,
        "faults must raise J/inference: {} vs {}",
        faulted.report.energy.j_per_inference,
        healthy.report.energy.j_per_inference
    );
}

#[test]
fn traced_energy_report_is_byte_identical_across_runs() {
    // The whole energy block is integer-derived, so its JSON must
    // reproduce byte-for-byte — including under faults.
    let plan = FaultPlan::parse("execerr@0.2").expect("valid fault spec");
    let ser = |r: &TracedServe| serde_json::to_string(&r.report.energy).expect("serialize");
    assert_eq!(ser(&tiny_run(Some(&plan))), ser(&tiny_run(Some(&plan))));
    assert_eq!(ser(&tiny_run(None)), ser(&tiny_run(None)));
}

#[test]
fn energy_books_balance_exactly_on_a_dynamic_fleet() {
    // Autoscaling power-gates sticks mid-run, so the per-worker power
    // step functions now contain genuine off windows. Every exact
    // conservation law must survive that: the trace re-integrates the
    // server's fleet total, attribution stays lossless, and the ledger
    // additionally proves the gating reclaimed real idle energy.
    use vpu_coprocessor::experiments::autoscale_bench::traced_autoscale;
    for policy in ["reactive", "oracle"] {
        let run = traced_autoscale(Scale::Tiny, policy, Duration::from_millis(10.0));
        assert_books_balance(&run);
        let s = run.report.scaling.as_ref().expect("autoscaled runs report a scaling block");
        assert!(s.scale_downs > 0, "{policy}: low load must trigger drains: {s:?}");
        assert!(s.reclaimed_pj > 0, "{policy}: gated windows must reclaim idle energy");
        assert!(
            s.stick_seconds < s.static_stick_seconds,
            "{policy}: a dynamic fleet must pay fewer powered stick-seconds \
             ({} vs {})",
            s.stick_seconds,
            s.static_stick_seconds
        );
    }
}
