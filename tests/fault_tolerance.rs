//! Acceptance tests for fault injection + fault-aware failover.
//!
//! The contract, end to end through the umbrella crate:
//! (1) a mid-run stick unplug on a redundant VPU fleet loses nothing —
//! every admitted request completes after failover/retry or is shed
//! with a recorded cause, exactly once; (2) wrapping a fleet with the
//! *empty* fault plan is byte-identical to not wrapping it at all
//! (report JSON and exported trace); (3) the same seed and the same
//! fault plan replay the identical run; (4) the fault report carries
//! MTTR and the p99-during-failover tail.

use vpu_coprocessor::faults::{FaultEvent, FaultPlan};
use vpu_coprocessor::framework::ModelBundle;
use vpu_coprocessor::nn::googlenet::Variant;
use vpu_coprocessor::obs::chrome_trace;
use vpu_coprocessor::serving::{
    serve, serve_observed, ArrivalProcess, FleetSpec, ObsConfig, ServeConfig, ServeOutcome,
    ServeReport, ShedCause,
};
use vpu_coprocessor::sim::Duration;

const FLEET: &str = "vpu+vpu+vpu+vpu";
const REQUESTS: usize = 300;
const RATE: f64 = 28.0; // ~0.65x of the 4-stick nameplate capacity

fn model() -> ModelBundle {
    ModelBundle::googlenet_untrained(Variant::Tiny, 1)
}

fn faulted_run(plan: &FaultPlan) -> (ServeOutcome, ServeConfig) {
    let cfg = ServeConfig::default();
    let mut workers = FleetSpec::parse(FLEET).unwrap().build(&model());
    workers = plan.apply(workers, cfg.seed);
    let load = ArrivalProcess::Poisson { rate_per_sec: RATE };
    let outcome = serve(&mut workers, &cfg, &load, REQUESTS);
    (outcome, cfg)
}

/// An unplug landing mid-run for the tiny-model fleet at `RATE`
/// (horizon ~10s), healing two seconds later.
fn mid_run_unplug() -> FaultPlan {
    let mut plan = FaultPlan::empty();
    plan.push(
        Some(1),
        FaultEvent::StickUnplug {
            at: Duration::from_secs(2.0),
            reconnect_after: Some(Duration::from_secs(2.0)),
        },
    );
    plan
}

#[test]
fn mid_run_unplug_loses_no_admitted_request() {
    let (outcome, cfg) = faulted_run(&mid_run_unplug());

    // Conservation: every generated request completed or was shed with
    // a recorded cause — nothing silently lost.
    assert_eq!(outcome.completed.len() + outcome.shed.len(), REQUESTS);

    // Exactly once: no id appears twice across completions and sheds.
    let mut ids: Vec<u64> =
        outcome.completed.iter().map(|r| r.id).chain(outcome.shed.iter().map(|s| s.id)).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), REQUESTS, "a request completed or shed more than once");

    // The failure actually fired and the failover machinery engaged.
    assert!(outcome.faults.injected > 0, "unplug never hit a dispatch");
    assert!(outcome.faults.retries > 0, "no batch was retried");
    assert!(outcome.completed.iter().any(|r| r.attempts > 1), "no request survived a retry");
    assert!(!outcome.faults.outages.is_empty(), "circuit breaker never opened");

    // The report carries the failover metrics.
    let report = ServeReport::of(&outcome, &cfg);
    assert!(report.faults.mttr_ms > 0.0, "{:?}", report.faults);
    assert!(report.faults.p99_during_failover_ms > 0.0, "{:?}", report.faults);
    assert!(report.faults.retries_per_request > 0.0);

    // Anything shed by the failover path carries the dedicated cause.
    for s in &outcome.shed {
        assert!(
            matches!(
                s.cause,
                ShedCause::Rejected
                    | ShedCause::Evicted
                    | ShedCause::Deadline
                    | ShedCause::RetriesExhausted
            ),
            "{s:?}"
        );
    }
}

#[test]
fn empty_fault_plan_is_byte_identical_to_no_plan() {
    let cfg = ServeConfig::default();
    let load = ArrivalProcess::Poisson { rate_per_sec: RATE };
    let ocfg = ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() };

    let mut plain = FleetSpec::parse(FLEET).unwrap().build(&model());
    let (plain_outcome, plain_obs) = serve_observed(&mut plain, &cfg, &load, REQUESTS, &ocfg);

    let mut wrapped = FleetSpec::parse(FLEET).unwrap().build(&model());
    wrapped = FaultPlan::empty().apply(wrapped, cfg.seed);
    let (wrapped_outcome, wrapped_obs) = serve_observed(&mut wrapped, &cfg, &load, REQUESTS, &ocfg);

    // Reports serialize byte-identically...
    let a = serde_json::to_string(&ServeReport::of(&plain_outcome, &cfg)).unwrap();
    let b = serde_json::to_string(&ServeReport::of(&wrapped_outcome, &cfg)).unwrap();
    assert_eq!(a, b, "empty fault plan changed the report");
    // ...and so does the full event trace.
    assert_eq!(
        chrome_trace(&plain_obs.events),
        chrome_trace(&wrapped_obs.events),
        "empty fault plan changed the trace"
    );
    // A healthy run reports zero fault activity.
    assert_eq!(wrapped_outcome.faults.injected, 0);
    assert!(wrapped_outcome.faults.outages.is_empty());
}

#[test]
fn same_seed_and_plan_replay_byte_identically() {
    let run = || {
        let cfg = ServeConfig::default();
        let mut workers = FleetSpec::parse(FLEET).unwrap().build(&model());
        workers = mid_run_unplug().apply(workers, cfg.seed);
        let load = ArrivalProcess::Poisson { rate_per_sec: RATE };
        let ocfg = ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() };
        let (outcome, obs) = serve_observed(&mut workers, &cfg, &load, REQUESTS, &ocfg);
        (
            serde_json::to_string(&ServeReport::of(&outcome, &cfg)).unwrap(),
            chrome_trace(&obs.events),
        )
    };
    let (report_a, trace_a) = run();
    let (report_b, trace_b) = run();
    assert_eq!(report_a, report_b, "faulted report is not deterministic");
    assert_eq!(trace_a, trace_b, "faulted trace is not deterministic");
}

#[test]
fn deadline_aware_shedding_degrades_more_gracefully_than_reject() {
    // Kill three of four sticks without reconnect while offering 70% of
    // the *healthy* nameplate: the survivor sees ~2.8x its capacity, so
    // admission *must* shed. Deadline-aware shedding refuses hopeless
    // work at arrival instead of letting it rot in the queue.
    let spec = FleetSpec::parse(FLEET).unwrap();
    let probe = spec.build(&model());
    let rate = spec.capacity_rps(&probe) * 0.7;
    drop(probe);
    let n = 4_000usize;
    let horizon_secs = n as f64 / rate;

    let mut plan = FaultPlan::empty();
    for w in [0usize, 1, 2] {
        plan.push(
            Some(w),
            FaultEvent::StickUnplug {
                at: Duration::from_secs(horizon_secs * 0.25),
                reconnect_after: None,
            },
        );
    }
    let run = |shed| {
        // A deep queue makes the policies diverge: Reject lets admitted
        // work rot for seconds; DeadlineAware refuses it at arrival once
        // the backlog alone exceeds the SLO on surviving capacity.
        let cfg = ServeConfig {
            shed,
            queue_capacity: 4096,
            slo: Duration::from_millis(500.0),
            ..ServeConfig::default()
        };
        let mut workers = spec.build(&model());
        workers = plan.apply(workers, cfg.seed);
        let load = ArrivalProcess::Poisson { rate_per_sec: rate };
        let outcome = serve(&mut workers, &cfg, &load, n);
        (outcome.completed.len() + outcome.shed.len(), ServeReport::of(&outcome, &cfg))
    };
    let (total_r, reject) = run(vpu_coprocessor::serving::ShedPolicy::Reject);
    let (total_d, deadline) = run(vpu_coprocessor::serving::ShedPolicy::DeadlineAware);
    assert_eq!(total_r, n);
    assert_eq!(total_d, n);
    assert!(reject.shed > 0 && deadline.shed > 0, "quartered capacity must shed");
    assert!(
        deadline.shed_by_policy.deadline > 0,
        "deadline-aware never used its cause: {:?} (reject side: {:?})",
        deadline.shed_by_policy,
        reject.shed_by_policy
    );
    // Refusing hopeless work keeps the completed tail no worse.
    assert!(
        deadline.latency.p99_ms <= reject.latency.p99_ms * 1.05,
        "deadline-aware p99 {} vs reject p99 {}",
        deadline.latency.p99_ms,
        reject.latency.p99_ms
    );
}
