//! Integration: the deployment toolchain — prototxt in, classified
//! result out of a simulated stick, numerics preserved at every step.

use std::sync::Arc;
use vpu_coprocessor::framework::ModelBundle;
use vpu_coprocessor::nn::graph::CompiledNetwork;
use vpu_coprocessor::nn::{googlenet, init, optimize, prototxt};
use vpu_coprocessor::num::f16;
use vpu_coprocessor::platform::graphfile;
use vpu_coprocessor::tensor::kernels::gemm::AccumMode;
use vpu_coprocessor::tensor::{Shape, Tensor};

#[test]
fn prototxt_to_graphfile_preserves_numerics() {
    // Emit GoogLeNet-tiny as prototxt, re-parse, optimize, compile to the
    // binary graph format, reload — inference must match the fp16 result
    // of the original spec bit for bit.
    let spec = Arc::new(googlenet::tiny());
    let weights = init::xavier(&spec, 5);
    let input = Tensor::<f32>::full(Shape::chw(3, 32, 32), 0.15).quantize_fp16();
    let reference =
        CompiledNetwork::<f16>::compile(spec.clone(), &weights, AccumMode::Native).forward(&input);

    let text = prototxt::emit(&spec);
    let parsed = prototxt::parse(&text).expect("parse");
    let (opt, stats) = optimize::optimize(&parsed);
    // The emitted graph was already fused; passes must be no-ops.
    assert_eq!(stats.relus_fused, 0);
    let opt = Arc::new(opt);
    let blob = graphfile::compile(&opt, &weights);
    let reloaded = graphfile::parse(&blob).expect("graph file").to_weights();
    let out = CompiledNetwork::<f16>::compile(opt, &reloaded, AccumMode::Native).forward(&input);
    assert_eq!(out, reference);
}

#[test]
fn unfused_prototxt_optimizes_to_equivalent_network() {
    let text = r#"
name: "m"
input: "data"
input_dim: 1
input_dim: 3
input_dim: 16
input_dim: 16
layer { name: "c1" type: "Convolution" bottom: "data" top: "c1"
        convolution_param { num_output: 6 kernel_size: 3 pad: 1 } }
layer { name: "r1" type: "ReLU" bottom: "c1" top: "c1" }
layer { name: "p1" type: "Pooling" bottom: "r1" top: "p1"
        pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layer { name: "fc" type: "InnerProduct" bottom: "p1" top: "fc"
        inner_product_param { num_output: 4 } }
layer { name: "prob" type: "Softmax" bottom: "fc" top: "prob" }
"#;
    let spec = Arc::new(prototxt::parse(text).expect("parse"));
    let weights = init::xavier(&spec, 9);
    let (opt, stats) = optimize::optimize(&spec);
    assert_eq!(stats.relus_fused, 1);
    let opt = Arc::new(opt);
    let input = Tensor::<f32>::from_fn(Shape::chw(3, 16, 16), |_, c, h, w| {
        (c as f32 - h as f32 * 0.1 + w as f32 * 0.05) * 0.2
    });
    let a = CompiledNetwork::<f32>::compile(spec, &weights, AccumMode::Widened).forward(&input);
    let b = CompiledNetwork::<f32>::compile(opt, &weights, AccumMode::Widened).forward(&input);
    assert_eq!(a, b, "compiler passes must be numerically exact");
}

#[test]
fn graph_file_size_drives_device_memory_accounting() {
    // The ModelBundle's fp16 cost and the actual compiled blob agree on
    // the payload the USB link and DDR see.
    let spec = Arc::new(googlenet::tiny());
    let weights = init::xavier(&spec, 2);
    let blob = graphfile::compile(&spec, &weights);
    let model = ModelBundle::deploy(spec, weights);
    let payload = model.cost16.total_weight_bytes() as usize;
    // Blob = payload + header/metadata (< 2 KB for this net) + checksum.
    assert!(blob.len() > payload);
    assert!(blob.len() < payload + 2048, "metadata overhead too large");
}
