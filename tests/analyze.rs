//! End-to-end trace analysis: a real observed serving run, exported to
//! Chrome trace JSON, parsed back and attributed — with the exactness
//! and determinism guarantees the `repro analyze` / `repro diff` CLI
//! (and the CI regression gate built on it) depend on.

use vpu_coprocessor::analyze::{diff, Analysis, DiffConfig, Verdict};
use vpu_coprocessor::experiments::serve_bench::traced_serve;
use vpu_coprocessor::experiments::Scale;
use vpu_coprocessor::serving::DispatchPolicy;
use vpu_coprocessor::sim::Duration;

fn tiny_run(policy: DispatchPolicy) -> String {
    traced_serve(Scale::Tiny, Duration::from_millis(500.0), policy, Duration::from_millis(10.0))
        .chrome_json
}

#[test]
fn attribution_of_a_real_run_is_exact_and_accounts_for_every_request() {
    let run = traced_serve(
        Scale::Tiny,
        Duration::from_millis(500.0),
        DispatchPolicy::CostAware,
        Duration::from_millis(10.0),
    );
    let analysis = Analysis::from_chrome(&run.chrome_json).expect("exported trace parses");
    // Every request the server reported is in the trace, with the same
    // completed/shed split.
    assert_eq!(analysis.e2e.count, run.report.completed, "completed mismatch");
    assert_eq!(analysis.shed.total(), run.report.shed, "shed mismatch");
    assert_eq!(analysis.forest.requests.len(), run.requests, "request mismatch");
    // The tentpole invariant: per-segment sums equal end-to-end latency
    // exactly — not approximately — for every completed request.
    assert!(!analysis.breakdowns.is_empty());
    for b in &analysis.breakdowns {
        assert!(b.exact(), "request {} lost time: {b:?}", b.id);
    }
    // The attribution table totals to the summed end-to-end latency.
    let table_ms: f64 = analysis.table.rows.iter().map(|r| r.total_ms).sum();
    let e2e_ms = analysis.e2e.mean_ms * analysis.e2e.count as f64;
    assert!((table_ms - e2e_ms).abs() < 1e-6, "table {table_ms} vs e2e {e2e_ms}");
    // Exactly one critical segment per completed request.
    let criticals: usize = analysis.table.rows.iter().map(|r| r.critical).sum();
    assert_eq!(criticals, analysis.breakdowns.len());
}

#[test]
fn self_diff_is_neutral_and_verdict_json_is_byte_identical() {
    let a = Analysis::from_chrome(&tiny_run(DispatchPolicy::CostAware)).unwrap();
    let d = diff(&a, &a, &DiffConfig::default());
    assert!(!d.regression);
    for m in d.metrics.iter().chain(&d.segments) {
        assert_eq!(m.verdict, Verdict::Neutral, "{}", m.metric);
        assert_eq!(m.delta, 0.0);
    }
    // The verdict file CI gates on reproduces byte-for-byte: same seed,
    // same policies, same JSON.
    let again = {
        let a = Analysis::from_chrome(&tiny_run(DispatchPolicy::CostAware)).unwrap();
        let b = Analysis::from_chrome(&tiny_run(DispatchPolicy::RoundRobin)).unwrap();
        serde_json::to_string(&diff(&a, &b, &DiffConfig::default())).unwrap()
    };
    let first = {
        let a = Analysis::from_chrome(&tiny_run(DispatchPolicy::CostAware)).unwrap();
        let b = Analysis::from_chrome(&tiny_run(DispatchPolicy::RoundRobin)).unwrap();
        serde_json::to_string(&diff(&a, &b, &DiffConfig::default())).unwrap()
    };
    assert_eq!(first, again);
}

#[test]
fn paired_runs_join_on_request_id_and_flamegraph_is_deterministic() {
    let a = Analysis::from_chrome(&tiny_run(DispatchPolicy::RoundRobin)).unwrap();
    let b = Analysis::from_chrome(&tiny_run(DispatchPolicy::CostAware)).unwrap();
    let d = diff(&a, &b, &DiffConfig::default());
    // Identical seeded arrivals: the paired join is total.
    assert_eq!(d.only_a, 0, "{d:?}");
    assert_eq!(d.only_b, 0, "{d:?}");
    assert_eq!(d.joined, a.e2e.count.min(b.e2e.count));
    // Folded stacks reproduce and cover the full attributed time.
    let f1 = vpu_coprocessor::analyze::folded(&a);
    let f2 = vpu_coprocessor::analyze::folded(&a);
    assert_eq!(f1, f2);
    assert!(f1.lines().all(|l| l.starts_with("serve;")), "{f1}");
}
