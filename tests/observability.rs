//! Acceptance tests for the observability subsystem, through the
//! public umbrella-crate API.
//!
//! The contract: (1) observing a run never perturbs it — the
//! `NullRecorder` path and the observed path produce bit-identical
//! serving outcomes; (2) a traced run exposes the full
//! Arrive→Admit→BatchClose→Dispatch→UsbWrite→Exec→UsbRead→Complete
//! chain with non-decreasing virtual timestamps for at least one
//! request; (3) the sampled time series carries queue-depth and
//! per-worker-utilization columns; (4) the exported Chrome JSON passes
//! the structural validator CI runs.

use vpu_coprocessor::obs::Phase;
use vpu_coprocessor::serving::{
    serve, serve_observed, ArrivalProcess, FleetSpec, ObsConfig, ServeConfig, ServeOutcome,
};
use vpu_coprocessor::sim::Duration;

fn fingerprint(o: &ServeOutcome) -> (Vec<(u64, vpu_coprocessor::sim::SimTime, usize)>, usize) {
    (o.completed.iter().map(|r| (r.id, r.completed, r.worker)).collect(), o.shed.len())
}

fn observed_run() -> (ServeOutcome, vpu_coprocessor::serving::ServeObservation) {
    let model = vpu_coprocessor::framework::ModelBundle::googlenet_untrained(
        vpu_coprocessor::nn::googlenet::Variant::Tiny,
        1,
    );
    let mut workers = FleetSpec::parse("cpu+2xvpu").unwrap().build(&model);
    let cfg = ServeConfig::default();
    let load = ArrivalProcess::Poisson { rate_per_sec: 300.0 };
    serve_observed(
        &mut workers,
        &cfg,
        &load,
        200,
        &ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() },
    )
}

#[test]
fn observation_does_not_perturb_the_run() {
    let model = vpu_coprocessor::framework::ModelBundle::googlenet_untrained(
        vpu_coprocessor::nn::googlenet::Variant::Tiny,
        1,
    );
    let cfg = ServeConfig::default();
    let load = ArrivalProcess::Poisson { rate_per_sec: 300.0 };
    let mut plain_workers = FleetSpec::parse("cpu+2xvpu").unwrap().build(&model);
    let plain = serve(&mut plain_workers, &cfg, &load, 200);
    let (observed, _) = observed_run();
    assert_eq!(fingerprint(&plain), fingerprint(&observed));
}

#[test]
fn traced_request_exposes_the_full_phase_chain() {
    let (outcome, obs) = observed_run();
    // VPU-served requests traverse every phase; host-served ones skip
    // the USB/VPU lanes. Find at least one fully chained request.
    let chained =
        outcome.completed.iter().filter_map(|r| obs.events.request_chain(r.id)).collect::<Vec<_>>();
    assert!(!chained.is_empty(), "no request exposes the full phase chain");
    for chain in &chained {
        assert_eq!(chain.len(), Phase::REQUEST_CHAIN.len());
        for (i, (phase, _)) in chain.iter().enumerate() {
            assert_eq!(*phase, Phase::REQUEST_CHAIN[i]);
        }
        for pair in chain.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "phase chain must be time-ordered: {chain:?}");
        }
    }
}

#[test]
fn time_series_has_depth_and_utilization_columns() {
    let (_, obs) = observed_run();
    let csv = obs.series.csv();
    let header = csv.lines().next().expect("csv has a header");
    assert!(header.starts_with("time_ms,queue_depth,inflight_batches,"));
    assert!(header.contains("util_cpu") && header.contains("util_vpu_x2"), "{header}");
    assert!(csv.lines().count() > 2, "series must contain samples");
}

#[test]
fn exported_chrome_trace_validates() {
    let (_, obs) = observed_run();
    let json = vpu_coprocessor::obs::chrome_trace(&obs.events);
    let check = vpu_coprocessor::experiments::trace_check::validate(&json)
        .expect("exported trace must validate");
    assert!(check.chained > 0);
}

#[test]
fn streaming_exporters_match_buffered_on_a_real_run() {
    // The buffered exporters are thin shims over the streaming writers,
    // but verify the contract end-to-end on a real observed run: an
    // event-at-a-time stream into a raw sink must equal the buffered
    // string byte-for-byte, with exact stats and bounded buffering.
    use vpu_coprocessor::obs::{chrome_trace, ChromeWriter};
    let (_, obs) = observed_run();
    let buffered = chrome_trace(&obs.events);
    let mut sink = Vec::new();
    let stats = {
        let mut w = ChromeWriter::new(&mut sink, &obs.events.lanes()).unwrap();
        for ev in obs.events.events() {
            w.event(ev).unwrap();
        }
        w.finish().unwrap()
    };
    assert_eq!(String::from_utf8(sink).unwrap(), buffered);
    assert_eq!(stats.bytes, buffered.len() as u64);
    assert!(
        stats.peak_buffered > 0 && stats.peak_buffered < stats.bytes,
        "streaming must hold at most one row in memory, not the document: {stats:?}"
    );
    let csv = obs.series.csv();
    let mut csv_sink = Vec::new();
    let csv_stats = obs.series.csv_to(&mut csv_sink).unwrap();
    assert_eq!(String::from_utf8(csv_sink).unwrap(), csv);
    assert_eq!(csv_stats.bytes, csv.len() as u64);
    assert!(csv_stats.peak_buffered > 0 && csv_stats.peak_buffered < csv_stats.bytes);
}

#[test]
fn tail_sampling_is_passive_and_keeps_anomalous_chains_in_full() {
    // The sampler watches the stream and decides keep/drop after each
    // request's terminal event — it never touches virtual time or the
    // serve RNG streams, so the outcome is bit-identical to an
    // unsampled run. Every anomalous request (shed, SLO-violating or
    // retried) must survive sampling with its full chain intact, and
    // the sampled log must still pass the structural trace validator.
    use vpu_coprocessor::analyze::{Outcome, SpanForest};
    use vpu_coprocessor::obs::SamplePolicy;
    let run = |sample: Option<SamplePolicy>| {
        let model = vpu_coprocessor::framework::ModelBundle::googlenet_untrained(
            vpu_coprocessor::nn::googlenet::Variant::Tiny,
            1,
        );
        let mut workers = FleetSpec::parse("cpu+2xvpu").unwrap().build(&model);
        // Overload the fleet against a tight SLO so the run produces
        // real anomalies (sheds and SLO violations) to retain.
        let cfg = ServeConfig { slo: Duration::from_millis(30.0), ..ServeConfig::default() };
        let load = ArrivalProcess::Poisson { rate_per_sec: 20000.0 };
        serve_observed(
            &mut workers,
            &cfg,
            &load,
            200,
            &ObsConfig {
                sample_every: Duration::from_millis(10.0),
                sample,
                ..ObsConfig::default()
            },
        )
    };
    let (full_out, full_obs) = run(None);
    let (out, obs) = run(Some(SamplePolicy::parse("1-in-20+top4").unwrap()));
    assert_eq!(fingerprint(&full_out), fingerprint(&out), "sampling must not perturb the run");
    assert!(full_obs.sample.is_none(), "an unsampled run must not carry a sampling ledger");
    let stats = obs.sample.clone().expect("a sampled run must carry the keep/drop ledger");
    assert_eq!(stats.spec, "1-in-20+top4");
    assert!(stats.requests_kept < stats.requests_seen, "1-in-20 must drop requests: {stats:?}");
    assert!(stats.events_kept < stats.events_seen, "dropping chains must drop events: {stats:?}");
    assert!(stats.reservoir > 0, "the top-K-slowest reservoir must keep something: {stats:?}");
    // Anomalies, judged from the FULL log, must all survive bit-for-bit.
    let slo = Duration::from_millis(30.0);
    let forest = SpanForest::build(&full_obs.events);
    let anomalous: Vec<u64> = forest
        .requests
        .values()
        .filter(|r| {
            matches!(r.outcome(), Outcome::Shed)
                || r.retries > 0
                || r.latency().is_some_and(|l| l.nanos() > slo.nanos())
        })
        .map(|r| r.id)
        .collect();
    assert!(!anomalous.is_empty(), "the overloaded run must produce anomalous requests");
    for id in &anomalous {
        let full_chain: Vec<_> = full_obs.events.for_request(*id).into_iter().copied().collect();
        let kept_chain: Vec<_> = obs.events.for_request(*id).into_iter().copied().collect();
        assert!(!kept_chain.is_empty(), "anomalous request {id} was dropped by the sampler");
        assert_eq!(full_chain, kept_chain, "request {id} must keep its full chain");
    }
    // The thinned log still validates structurally.
    let json = vpu_coprocessor::obs::chrome_trace(&obs.events);
    let check = vpu_coprocessor::experiments::trace_check::validate(&json)
        .expect("sampled trace must validate");
    assert!(check.chained > 0);
}

#[test]
fn overhead_ledger_is_conserved_on_disk() {
    // The ledger's byte counts are exactly the artifact sizes, and
    // writing through a counting sink to a real file conserves them:
    // bytes counted == bytes on disk.
    use std::io::Write;
    use vpu_coprocessor::experiments::{serve_bench::traced_serve, Scale};
    use vpu_coprocessor::obs::CountingWrite;
    use vpu_coprocessor::serving::DispatchPolicy;
    let t = traced_serve(
        Scale::Tiny,
        Duration::from_millis(500.0),
        DispatchPolicy::CostAware,
        Duration::from_millis(10.0),
    );
    assert!(t.overhead.events_recorded > 0, "a traced run records events");
    assert_eq!(t.overhead.trace_bytes, t.chrome_json.len() as u64);
    assert_eq!(t.overhead.series_bytes, t.series_csv.len() as u64);
    assert!(t.overhead.peak_buffered_bytes > 0);
    assert!(t.overhead.peak_buffered_bytes < t.overhead.trace_bytes + t.overhead.series_bytes);
    let path = std::env::temp_dir().join("ncsw_obs_ledger_conservation.json");
    let mut counting = CountingWrite::new(std::fs::File::create(&path).unwrap());
    counting.write_all(t.chrome_json.as_bytes()).unwrap();
    counting.flush().unwrap();
    let written = counting.written();
    drop(counting);
    let on_disk = std::fs::metadata(&path).unwrap().len();
    std::fs::remove_file(&path).ok();
    assert_eq!(written, on_disk, "counted bytes must equal the file size on disk");
    assert_eq!(written, t.overhead.trace_bytes);
}
