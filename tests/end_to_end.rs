//! End-to-end integration: dataset → pseudo-training → deployment →
//! NCAPI devices → metrics, across every crate in the workspace.

use std::sync::Arc;
use vpu_coprocessor::data::{pseudo_train, DatasetConfig, ValidationSet};
use vpu_coprocessor::framework::metrics::{accuracy_report, confidence_diff};
use vpu_coprocessor::framework::multivpu::{MultiVpu, MultiVpuConfig};
use vpu_coprocessor::framework::runner::{
    predictions_fp16, predictions_fp16_on_device, predictions_fp32,
};
use vpu_coprocessor::framework::{ImageFolder, ModelBundle, SourceImage};
use vpu_coprocessor::nn::googlenet::Variant;
use vpu_coprocessor::platform::{Fleet, Ncapi, NcsConfig, Topology};
use vpu_coprocessor::sim::SimTime;

fn trained() -> (ModelBundle, Arc<ValidationSet>) {
    let variant = Variant::Tiny;
    let spec = Arc::new(variant.build());
    let mut cfg = DatasetConfig::ilsvrc_like(10, 50, variant.input_shape(), 33);
    cfg.sigma = 0.2;
    cfg.distractor_mix = 0.05;
    let set = Arc::new(ValidationSet::new(cfg));
    let weights = pseudo_train(&spec, set.generator(), 33);
    (ModelBundle::deploy(spec, weights), set)
}

#[test]
fn classification_travels_through_the_simulated_stick() {
    let (model, set) = trained();
    let folder = ImageFolder::new(set, 0);

    // Reference: direct fp16 inference.
    let direct = predictions_fp16(&model, &folder);

    // Through the full platform: USB, firmware, RISC queue, chip.
    let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(3), &model);
    let on_device = predictions_fp16_on_device(&model, &folder, &mut mv);

    assert_eq!(direct.len(), on_device.len());
    for (a, b) in direct.iter().zip(&on_device) {
        assert_eq!(a.predicted, b.predicted, "device must not change the answer");
        assert_eq!(a.confidence, b.confidence);
        assert_eq!(a.label, b.label);
    }
}

#[test]
fn fp32_fp16_accuracy_story_holds_end_to_end() {
    let (model, set) = trained();
    let folders = ImageFolder::all_subsets(set);
    let mut total32 = 0usize;
    let mut total16 = 0usize;
    let mut images = 0usize;
    for f in &folders {
        let p32 = predictions_fp32(&model, f);
        let p16 = predictions_fp16(&model, f);
        let d = confidence_diff(&p32, &p16);
        assert!(d.mean_abs_diff < 0.05, "confidence drift {}", d.mean_abs_diff);
        total32 += accuracy_report("cpu", &p32).wrong;
        total16 += accuracy_report("vpu", &p16).wrong;
        images += f.len();
    }
    let e32 = total32 as f64 / images as f64;
    let e16 = total16 as f64 / images as f64;
    assert!((e32 - e16).abs() < 0.08, "precision gap {e32} vs {e16}");
}

#[test]
fn ncapi_round_trip_with_real_output_payload() {
    let (model, set) = trained();
    let folder = ImageFolder::new(set.clone(), 1);
    let mut api = Ncapi::new(Fleet::new(1, Topology::AllRoot, NcsConfig::default()));
    api.open_device(0, SimTime::ZERO).unwrap();
    let (g, ready) = api.alloc_graph(0, model.cost16.clone(), SimTime::ZERO).unwrap();

    let img = folder.fetch(0);
    let expect = model.net16.forward(&img.pixels.quantize_fp16());
    let loaded = api.load_tensor(g, ready, Some(expect.clone())).unwrap();
    let res = api.get_result(g, loaded).unwrap();
    assert_eq!(res.output.unwrap(), expect);
    assert!(res.returned_at > loaded);
    assert!(!res.run.layers.is_empty());
}

#[test]
fn eight_device_fleet_reaches_paper_envelope_end_to_end() {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 9);
    let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(8), &model);
    let run = mv.run_pipeline(64);
    let ips = run.images_per_sec();
    assert!((70.0..85.0).contains(&ips), "8-stick fleet at {ips} img/s");
    // Energy: 64 inferences at ~65-70 mJ each.
    assert!((2.0..8.0).contains(&run.energy_j), "fleet energy {}", run.energy_j);
    // The trace must show all 8 chips and their hosts.
    assert_eq!(run.trace.lanes().iter().filter(|l| l.starts_with("vpu")).count(), 8);
}

#[test]
fn umbrella_reexports_are_wired() {
    // Spot-check that every facade module is reachable and consistent.
    let h = vpu_coprocessor::num::f16::from_f32(1.5);
    assert_eq!(h.to_f32(), 1.5);
    let shape = vpu_coprocessor::tensor::Shape::chw(3, 8, 8);
    assert_eq!(shape.len(), 192);
    let spec = vpu_coprocessor::nn::googlenet::tiny();
    assert_eq!(spec.output_shape().item_len(), 10);
    let cfg = vpu_coprocessor::vpu::Myriad2Config::default();
    assert_eq!(cfg.shaves, 12);
    let tdp = vpu_coprocessor::hosts::Tdp::default();
    assert_eq!(tdp.cpu_w, 80.0);
    assert_eq!(vpu_coprocessor::sim::SimTime::ZERO.nanos(), 0);
}
