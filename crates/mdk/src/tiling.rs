//! CMX tiling planner for blocked GEMM.
//!
//! Ionica & Gregg's Myriad DGEMM keeps one C tile plus the matching A
//! row-panel and B column-panel strips resident in each SHAVE's 128 KB
//! CMX slice, streaming panels from DDR between tile passes. The planner
//! picks the largest square tile whose three buffers fit, then derives
//! the resulting DDR panel traffic — which is what decides whether a
//! given problem is compute- or memory-bound on the chip.

use serde::{Deserialize, Serialize};

/// A blocked-GEMM execution plan for `C[m×n] += A[m×k] · B[k×n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingPlan {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Square C-tile edge held per SHAVE.
    pub tile: usize,
    /// K-strip depth streamed per pass.
    pub tile_k: usize,
    pub elem_bytes: usize,
    /// CMX bytes available per SHAVE slice.
    pub slice_bytes: usize,
}

impl TilingPlan {
    /// Plan a GEMM into `slice_bytes` of per-SHAVE CMX.
    ///
    /// Buffer budget per slice: C tile (`tile²`), plus an A strip
    /// (`tile × tile_k`) and a B strip (`tile_k × tile`), double-buffered
    /// so the DMA of the next strips overlaps compute.
    pub fn plan(m: usize, k: usize, n: usize, elem_bytes: usize, slice_bytes: usize) -> TilingPlan {
        assert!(m > 0 && k > 0 && n > 0, "empty GEMM");
        assert!(elem_bytes == 2 || elem_bytes == 4, "fp16 or fp32 only");
        // Fix the K strip at 64 (a full VAU software-pipeline body), then
        // grow the square tile while everything fits.
        let tile_k = k.min(64);
        let fits = |t: usize| {
            let c = t * t;
            let strips = 2 * (t * tile_k + tile_k * t); // double-buffered
            (c + strips) * elem_bytes <= slice_bytes
        };
        let mut tile = 8;
        while tile * 2 <= m.clamp(8, 512) && fits(tile * 2) {
            tile *= 2;
        }
        assert!(fits(tile), "even the minimal tile does not fit CMX");
        TilingPlan { m, k, n, tile, tile_k, elem_bytes, slice_bytes }
    }

    /// Tiles along each C dimension.
    pub fn tiles_m(&self) -> usize {
        self.m.div_ceil(self.tile)
    }

    pub fn tiles_n(&self) -> usize {
        self.n.div_ceil(self.tile)
    }

    /// K strips per tile pass.
    pub fn k_strips(&self) -> usize {
        self.k.div_ceil(self.tile_k)
    }

    /// Total multiply-accumulates.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// DDR bytes streamed: every C tile pass reads one A row-strip set
    /// and one B column-strip set; C is read+written once.
    pub fn ddr_bytes(&self) -> u64 {
        let a_reads = self.tiles_n() as u64 * (self.m as u64 * self.k as u64);
        let b_reads = self.tiles_m() as u64 * (self.k as u64 * self.n as u64);
        let c_traffic = 2 * self.m as u64 * self.n as u64;
        (a_reads + b_reads + c_traffic) * self.elem_bytes as u64
    }

    /// Bytes moved through the CMX crossbar (each operand element enters
    /// CMX once per strip it participates in, plus C updates).
    pub fn cmx_bytes(&self) -> u64 {
        self.ddr_bytes()
    }

    /// Arithmetic intensity in MACs per DDR byte: the roofline abscissa.
    pub fn intensity(&self) -> f64 {
        self.macs() as f64 / self.ddr_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLICE: usize = 128 * 1024;

    #[test]
    fn tile_fits_slice() {
        for &(m, k, n, e) in
            &[(512usize, 512usize, 512usize, 2usize), (1024, 1024, 1024, 4), (64, 64, 64, 2)]
        {
            let p = TilingPlan::plan(m, k, n, e, SLICE);
            let bytes = (p.tile * p.tile + 4 * p.tile * p.tile_k) * e;
            assert!(bytes <= SLICE, "{m}x{k}x{n}@{e}: {bytes} > slice");
            assert!(p.tile >= 8);
        }
    }

    #[test]
    fn fp16_tiles_larger_than_fp32() {
        let h = TilingPlan::plan(1024, 1024, 1024, 2, SLICE);
        let s = TilingPlan::plan(1024, 1024, 1024, 4, SLICE);
        assert!(h.tile >= s.tile);
    }

    #[test]
    fn tile_counts_cover_matrix() {
        let p = TilingPlan::plan(300, 200, 500, 4, SLICE);
        assert!(p.tiles_m() * p.tile >= 300);
        assert!(p.tiles_n() * p.tile >= 500);
        assert!(p.k_strips() * p.tile_k >= 200);
    }

    #[test]
    fn macs_and_traffic() {
        let p = TilingPlan::plan(256, 256, 256, 2, SLICE);
        assert_eq!(p.macs(), 256u64.pow(3));
        // Traffic at least the compulsory misses (A + B + C once).
        let compulsory = (3 * 256 * 256 * 2) as u64;
        assert!(p.ddr_bytes() >= compulsory);
        assert!(p.intensity() > 1.0, "blocked GEMM must have reuse");
    }

    #[test]
    fn bigger_tiles_mean_higher_intensity() {
        // A quarter-size slice forces smaller tiles and thus more
        // panel re-streaming.
        let big = TilingPlan::plan(1024, 1024, 1024, 2, SLICE);
        let small = TilingPlan::plan(1024, 1024, 1024, 2, SLICE / 4);
        assert!(big.tile > small.tile);
        assert!(big.intensity() > small.intensity());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        TilingPlan::plan(0, 1, 1, 2, SLICE);
    }
}
