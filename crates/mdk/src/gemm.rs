//! LAMA-style GEMM on the chip: timing model + real-numerics validation.

use crate::tiling::TilingPlan;
use desim::{Duration, SimTime};
use myriad2::exec::KernelWork;
use myriad2::Myriad2;
use serde::{Deserialize, Serialize};
use vpu_num::f16;
use vpu_tensor::kernels::gemm as host_gemm;
use vpu_tensor::AccumMode;

/// Arithmetic precision of the offloaded GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GemmPrecision {
    /// Native binary16: 8 VAU lanes.
    Fp16,
    /// IEEE binary32: 4 VAU lanes (128-bit VAU).
    Fp32,
}

impl GemmPrecision {
    pub fn elem_bytes(self) -> usize {
        match self {
            GemmPrecision::Fp16 => 2,
            GemmPrecision::Fp32 => 4,
        }
    }

    pub fn vau_lanes(self) -> usize {
        match self {
            GemmPrecision::Fp16 => 8,
            GemmPrecision::Fp32 => 4,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            GemmPrecision::Fp16 => "fp16",
            GemmPrecision::Fp32 => "fp32",
        }
    }
}

/// Sustained VAU issue efficiency of the hand-tuned GEMM inner loop.
/// Hand-scheduled VLIW GEMM sustains far more of peak than the general
/// NCSDK convolution kernels (Ionica & Gregg report >50 % on Myriad 1).
pub const GEMM_ISSUE_EFFICIENCY: f64 = 0.55;

/// Measured result of one offloaded GEMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmRun {
    pub precision: GemmPrecision,
    pub plan: TilingPlan,
    pub duration: Duration,
    pub energy_j: f64,
    /// Achieved Gflop/s (2 flops per MAC, the BLAS convention).
    pub gflops: f64,
    /// Gflop/s per Watt of measured chip power (Ionica & Gregg's metric).
    pub gflops_per_watt: f64,
}

/// Build the chip work description for a planned GEMM.
pub fn kernel_for(plan: &TilingPlan, precision: GemmPrecision) -> KernelWork {
    KernelWork {
        name: format!(
            "{}gemm-{}x{}x{} (tile {})",
            if precision == GemmPrecision::Fp16 { "h" } else { "s" },
            plan.m,
            plan.k,
            plan.n,
            plan.tile
        ),
        macs: plan.macs(),
        // Loop bookkeeping: one IAU op per inner-product strip element.
        aux_ops: plan.macs() / plan.tile_k.max(1) as u64,
        cmx_bytes: plan.cmx_bytes(),
        ddr_bytes: plan.ddr_bytes(),
        vau_lanes: Some(precision.vau_lanes()),
        issue_efficiency: Some(GEMM_ISSUE_EFFICIENCY),
    }
}

/// Offload one `m×k×n` GEMM to `chip`, starting no earlier than `ready`.
pub fn gemm_on_chip(
    chip: &mut Myriad2,
    m: usize,
    k: usize,
    n: usize,
    precision: GemmPrecision,
    ready: SimTime,
) -> GemmRun {
    let slice = (chip.config().cmx_bytes() / chip.config().shaves as u64) as usize;
    let plan = TilingPlan::plan(m, k, n, precision.elem_bytes(), slice);
    let work = kernel_for(&plan, precision);
    let run = chip.run_kernels(&[work], ready);
    let secs = run.duration().as_secs();
    let gflops = 2.0 * plan.macs() as f64 / secs / 1e9;
    let avg_w = chip.power_model().avg_power(&run.activity);
    GemmRun {
        precision,
        plan,
        duration: run.duration(),
        energy_j: run.energy_j,
        gflops,
        gflops_per_watt: gflops / avg_w.max(1e-9),
    }
}

/// Execute the GEMM numerics for real at the offload precision and
/// return the result widened to f32 (validation path for small sizes).
pub fn gemm_numerics(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    precision: GemmPrecision,
) -> Vec<f32> {
    match precision {
        GemmPrecision::Fp32 => {
            let mut c = vec![0.0f32; m * n];
            host_gemm::gemm(m, k, n, a, b, &mut c, AccumMode::Widened);
            c
        }
        GemmPrecision::Fp16 => {
            let ah: Vec<f16> = a.iter().map(|&x| f16::from_f32(x)).collect();
            let bh: Vec<f16> = b.iter().map(|&x| f16::from_f32(x)).collect();
            let mut ch = vec![f16::ZERO; m * n];
            host_gemm::gemm(m, k, n, &ah, &bh, &mut ch, AccumMode::Native);
            ch.iter().map(|h| h.to_f32()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use myriad2::Myriad2Config;

    fn chip() -> Myriad2 {
        Myriad2::new(Myriad2Config::default())
    }

    #[test]
    fn fp16_gemm_reaches_tens_of_gflops() {
        let mut c = chip();
        let r = gemm_on_chip(&mut c, 1024, 1024, 1024, GemmPrecision::Fp16, SimTime::ZERO);
        // 12 SHAVEs x 8 lanes x 600 MHz x 0.55 ≈ 63 Gflop/s ceiling (x2 fl/MAC).
        assert!((40.0..70.0).contains(&r.gflops), "fp16 {} Gflop/s", r.gflops);
        assert!(r.gflops_per_watt > 40.0, "{} Gflop/s/W", r.gflops_per_watt);
    }

    #[test]
    fn fp32_runs_at_half_the_lanes() {
        let mut c = chip();
        let h = gemm_on_chip(&mut c, 1024, 1024, 1024, GemmPrecision::Fp16, SimTime::ZERO);
        let s = gemm_on_chip(&mut c, 1024, 1024, 1024, GemmPrecision::Fp32, SimTime::ZERO);
        let ratio = h.gflops / s.gflops;
        assert!((1.6..2.4).contains(&ratio), "fp16/fp32 ratio {ratio}");
    }

    #[test]
    fn small_gemm_dominated_by_overheads() {
        let mut c = chip();
        let small = gemm_on_chip(&mut c, 64, 64, 64, GemmPrecision::Fp16, SimTime::ZERO);
        let big = gemm_on_chip(&mut c, 1024, 1024, 1024, GemmPrecision::Fp16, SimTime::ZERO);
        assert!(small.gflops < big.gflops / 2.0, "small {} vs big {}", small.gflops, big.gflops);
    }

    #[test]
    fn energy_scales_with_problem_size() {
        let mut c = chip();
        let a = gemm_on_chip(&mut c, 256, 256, 256, GemmPrecision::Fp16, SimTime::ZERO);
        let b = gemm_on_chip(&mut c, 512, 512, 512, GemmPrecision::Fp16, SimTime::ZERO);
        assert!(b.energy_j > 4.0 * a.energy_j, "8x work must cost >4x energy");
    }

    #[test]
    fn numerics_fp16_vs_fp32_bounded() {
        use rand::Rng;
        let (m, k, n) = (16, 32, 16);
        let mut rng = vpu_num::rng::seeded(4);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c32 = gemm_numerics(m, k, n, &a, &b, GemmPrecision::Fp32);
        let c16 = gemm_numerics(m, k, n, &a, &b, GemmPrecision::Fp16);
        let mut max_err = 0.0f32;
        for (x, y) in c32.iter().zip(&c16) {
            max_err = max_err.max((x - y).abs());
        }
        assert!(max_err > 0.0, "fp16 must differ");
        assert!(max_err < 0.05, "fp16 error {max_err}");
    }

    #[test]
    fn kernel_description_is_complete() {
        let plan = TilingPlan::plan(512, 512, 512, 2, 128 * 1024);
        let w = kernel_for(&plan, GemmPrecision::Fp16);
        assert_eq!(w.macs, 512u64.pow(3));
        assert_eq!(w.vau_lanes, Some(8));
        assert!(w.ddr_bytes > 0);
        assert!(w.name.contains("hgemm"));
    }
}
