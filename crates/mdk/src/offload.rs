//! Host-side offload context: the MDK analogue of the NCSw target API.

use crate::gemm::{gemm_numerics, gemm_on_chip, GemmPrecision, GemmRun};
use desim::SimTime;
use myriad2::{Myriad2, Myriad2Config};

/// A general-purpose offload session on one chip.
///
/// ```
/// use mdk::MdkContext;
/// use myriad2::Myriad2Config;
/// let mut ctx = MdkContext::new(Myriad2Config::default());
/// let run = ctx.hgemm(512, 512, 512);
/// assert!(run.gflops > 40.0);            // tens of Gflop/s at ~0.7 W
/// assert!(run.gflops_per_watt > 40.0);   // vs ~3 for the Xeon
/// ```
///
/// The future-work vision of the paper (§VII): "scientific applications
/// could then use the VPU chips to offload certain operations that
/// involve tensor computation". This context plays the role the NCAPI
/// graph handle plays for inference: own the chip, queue kernels, report
/// achieved Gflops and Gflops/W.
pub struct MdkContext {
    chip: Myriad2,
    submitted: usize,
}

impl MdkContext {
    pub fn new(cfg: Myriad2Config) -> Self {
        MdkContext { chip: Myriad2::with_lane(cfg, "mdk"), submitted: 0 }
    }

    pub fn chip(&self) -> &Myriad2 {
        &self.chip
    }

    pub fn kernels_submitted(&self) -> usize {
        self.submitted
    }

    /// Offload a single-precision GEMM (timing/energy simulation).
    pub fn sgemm(&mut self, m: usize, k: usize, n: usize) -> GemmRun {
        self.submitted += 1;
        gemm_on_chip(&mut self.chip, m, k, n, GemmPrecision::Fp32, SimTime::ZERO)
    }

    /// Offload a half-precision GEMM (timing/energy simulation).
    pub fn hgemm(&mut self, m: usize, k: usize, n: usize) -> GemmRun {
        self.submitted += 1;
        gemm_on_chip(&mut self.chip, m, k, n, GemmPrecision::Fp16, SimTime::ZERO)
    }

    /// Offload a GEMM *and* compute its numerics at the device precision;
    /// returns `(run, C)` with `C` widened to f32. Use for validation and
    /// for applications that consume the results.
    pub fn gemm_with_numerics(
        &mut self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        precision: GemmPrecision,
    ) -> (GemmRun, Vec<f32>) {
        assert_eq!(a.len(), m * k, "A dims");
        assert_eq!(b.len(), k * n, "B dims");
        self.submitted += 1;
        let run = gemm_on_chip(&mut self.chip, m, k, n, precision, SimTime::ZERO);
        let c = gemm_numerics(m, k, n, a, b, precision);
        (run, c)
    }

    /// Gflops/W of a host CPU doing the same GEMM at its sustained rate
    /// (for the comparison tables): MKL-class efficiency on the paper's
    /// Xeon against its 80 W TDP.
    pub fn cpu_reference_gflops_per_watt() -> f64 {
        let cfg = hostsim::CpuConfig::default();
        let sustained = cfg.peak_macs_per_sec() * 0.75 * 2.0 / 1e9; // GEMM sustains more than conv
        sustained / cfg.tdp_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_queues_kernels_serially() {
        let mut ctx = MdkContext::new(Myriad2Config::default());
        let a = ctx.hgemm(512, 512, 512);
        let b = ctx.hgemm(512, 512, 512);
        assert_eq!(ctx.kernels_submitted(), 2);
        assert_eq!(a.duration, b.duration, "identical work, identical time");
    }

    #[test]
    fn numerics_match_direct_path() {
        use rand::Rng;
        let mut rng = vpu_num::rng::seeded(9);
        let (m, k, n) = (8, 8, 8);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut ctx = MdkContext::new(Myriad2Config::default());
        let (_, c) = ctx.gemm_with_numerics(m, k, n, &a, &b, GemmPrecision::Fp32);
        let direct = gemm_numerics(m, k, n, &a, &b, GemmPrecision::Fp32);
        assert_eq!(c, direct);
    }

    #[test]
    fn vpu_wins_the_per_watt_comparison_decisively() {
        let mut ctx = MdkContext::new(Myriad2Config::default());
        let vpu = ctx.sgemm(1024, 1024, 1024);
        let cpu = MdkContext::cpu_reference_gflops_per_watt();
        // The whole premise of the paper: 1 W class chip vs 80 W hosts.
        assert!(
            vpu.gflops_per_watt > 10.0 * cpu,
            "vpu {} vs cpu {} Gflop/s/W",
            vpu.gflops_per_watt,
            cpu
        );
    }

    #[test]
    #[should_panic(expected = "A dims")]
    fn dimension_mismatch_rejected() {
        let mut ctx = MdkContext::new(Myriad2Config::default());
        ctx.gemm_with_numerics(4, 4, 4, &[0.0; 3], &[0.0; 16], GemmPrecision::Fp32);
    }
}
