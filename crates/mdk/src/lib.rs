//! MDK — general-purpose computing on the simulated Myriad 2.
//!
//! The paper notes (§II-B) that "fine-grained general-purpose computing
//! using C/C++ is also possible through the Movidius Development Kit
//! (MDK) … and provides several optimized libraries designed for the
//! Myriad 2 VPU chip (e.g., LAMA, a linear algebra library)", and its
//! future work (§VII) is exactly "integrating the VPU chip as a
//! conventional vector processor for general-purpose computing". The
//! related work it builds on — Ionica & Gregg's Myriad 1 study — measures
//! a custom GEMM with CMX tiling in Gflops and Gflops/W.
//!
//! This crate implements that path on the simulator:
//!
//! * [`tiling`] — the CMX tiling planner: blocks A/B/C panels into the
//!   16 × 128 KB scratchpad so each SHAVE streams its tile without
//!   touching DDR in the inner loop;
//! * [`gemm`] — LAMA-style `sgemm`/`hgemm`: a timing model built from the
//!   tiling plan (DDR panel traffic + VAU issue cycles) plus real
//!   numerics via `vpu-tensor` for validation;
//! * [`offload`] — the host-side context mirroring the NCSw target API:
//!   submit a GEMM, overlap host work, collect the result with measured
//!   Gflops and Gflops/W.

pub mod gemm;
pub mod offload;
pub mod tiling;

pub use gemm::{GemmPrecision, GemmRun};
pub use offload::MdkContext;
pub use tiling::TilingPlan;
