//! Structured, virtual-clock-stamped observability events.
//!
//! Every event carries the propagated request context ([`Ctx`]) so one
//! request can be followed from arrival through queueing, batching, USB
//! transfer, SHAVE execution and completion — the per-phase breakdown
//! the paper's Fig. 4 timeline argues from. Events are `Copy` and hold
//! no heap data, so emitting them through a disabled recorder costs a
//! branch and nothing else.

use desim::SimTime;
use serde::{Deserialize, Serialize};

/// Lifecycle phase of a request (or the lane activity serving it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// The open-loop generator produced the request.
    Arrive,
    /// Admission control accepted it.
    Admit,
    /// It entered the bounded request queue.
    Enqueue,
    /// The batch containing it closed (fill or deadline).
    BatchClose,
    /// The batch was handed to a worker.
    Dispatch,
    /// Host→device transfer of its input tensor.
    UsbWrite,
    /// On-device (SHAVE) execution.
    Exec,
    /// Device→host transfer of its result.
    UsbRead,
    /// Its result returned to the host.
    Complete,
    /// Admission control shed it (reject, eviction, deadline or
    /// exhausted retries).
    Shed,
    /// A fault fired on a worker (unplug, throttle, transient error) —
    /// a span covers the virtual time the failed attempt burned.
    FaultInject,
    /// A request was re-enqueued at the queue head after its batch
    /// failed, to be re-planned onto a healthy worker.
    RetryAttempt,
    /// A batch's dispatch failed and its members left the worker — the
    /// event carries the *failed* worker so a trace links it back to
    /// the prior `Dispatch` on that worker.
    Failover,
    /// The circuit breaker opened a worker (stops routing to it).
    CircuitOpen,
    /// The circuit breaker let traffic back (half-open probe or full
    /// close) — no `Exec` may appear on a worker between its
    /// `CircuitOpen` and the next `CircuitClose`.
    CircuitClose,
    /// An SLO burn-rate alert window (multi-window fast/slow burn) —
    /// derived from the sampled time series, not from the serving loop.
    SloAlert,
    /// A power-counter sample on a worker's power lane: the event's
    /// `value` is the worker's draw in integer milliwatts from this
    /// instant until the lane's next sample (exported as a Chrome
    /// `ph:"C"` counter event).
    PowerSample,
    /// The autoscaler stopped dispatching to a worker: from this
    /// instant no `Dispatch` may land on it until a later `ScaleUp`
    /// completes. In-flight batches keep running.
    Drain,
    /// The drained worker's in-flight batches finished and it
    /// power-gated — always at or after the last `Exec` on the worker.
    ScaleDown,
    /// The autoscaler powered a gated worker back on — a span covering
    /// the provisioning delay; the worker is dispatchable from the
    /// span's end.
    ScaleUp,
    /// A speculative duplicate of a batch was dispatched to a second
    /// worker after the hedge delay elapsed without the primary
    /// completing — a span covering the hedge attempt on the hedge
    /// worker's lane.
    Hedge,
    /// The hedged duplicate finished before the primary: the batch's
    /// results come from the hedge worker and the primary's remaining
    /// span is charged as wasted energy.
    HedgeWin,
    /// The primary finished before its hedged duplicate: the
    /// duplicate's span is charged as wasted energy.
    HedgeCancel,
    /// A completed result failed its end-to-end checksum verification
    /// (wire corruption) — the request is re-enqueued or shed, never
    /// surfaced to the client.
    IntegrityFail,
    /// The latency-outlier health score quarantined a fail-slow worker:
    /// no `Exec` may appear on the worker between this instant and the
    /// next `Probation` on it.
    Quarantine,
    /// A quarantined worker re-entered service on probation (the
    /// quarantine window expired); the next outlier re-quarantines it
    /// with an escalated window.
    Probation,
}

impl Phase {
    pub const ALL: [Phase; 26] = [
        Phase::Arrive,
        Phase::Admit,
        Phase::Enqueue,
        Phase::BatchClose,
        Phase::Dispatch,
        Phase::UsbWrite,
        Phase::Exec,
        Phase::UsbRead,
        Phase::Complete,
        Phase::Shed,
        Phase::FaultInject,
        Phase::RetryAttempt,
        Phase::Failover,
        Phase::CircuitOpen,
        Phase::CircuitClose,
        Phase::SloAlert,
        Phase::PowerSample,
        Phase::Drain,
        Phase::ScaleDown,
        Phase::ScaleUp,
        Phase::Hedge,
        Phase::HedgeWin,
        Phase::HedgeCancel,
        Phase::IntegrityFail,
        Phase::Quarantine,
        Phase::Probation,
    ];

    /// The happy-path phase sequence of one request on a VPU worker.
    pub const REQUEST_CHAIN: [Phase; 8] = [
        Phase::Arrive,
        Phase::Admit,
        Phase::BatchClose,
        Phase::Dispatch,
        Phase::UsbWrite,
        Phase::Exec,
        Phase::UsbRead,
        Phase::Complete,
    ];

    /// The canonical phase name — single source of truth consumed by
    /// the Chrome exporter, `trace_check` and the analyzer. `const` so
    /// validators can build required-phase tables at compile time.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Arrive => "Arrive",
            Phase::Admit => "Admit",
            Phase::Enqueue => "Enqueue",
            Phase::BatchClose => "BatchClose",
            Phase::Dispatch => "Dispatch",
            Phase::UsbWrite => "UsbWrite",
            Phase::Exec => "Exec",
            Phase::UsbRead => "UsbRead",
            Phase::Complete => "Complete",
            Phase::Shed => "Shed",
            Phase::FaultInject => "FaultInject",
            Phase::RetryAttempt => "RetryAttempt",
            Phase::Failover => "Failover",
            Phase::CircuitOpen => "CircuitOpen",
            Phase::CircuitClose => "CircuitClose",
            Phase::SloAlert => "SloAlert",
            Phase::PowerSample => "PowerSample",
            Phase::Drain => "Drain",
            Phase::ScaleDown => "ScaleDown",
            Phase::ScaleUp => "ScaleUp",
            Phase::Hedge => "Hedge",
            Phase::HedgeWin => "HedgeWin",
            Phase::HedgeCancel => "HedgeCancel",
            Phase::IntegrityFail => "IntegrityFail",
            Phase::Quarantine => "Quarantine",
            Phase::Probation => "Probation",
        }
    }

    /// Inverse of [`Phase::name`] — how the analyzer maps an exported
    /// trace back onto the event model.
    pub fn parse(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Why admission control dropped a request. Carried on every `Shed`
/// event (and surfaced as an `args.cause` string in exported traces) so
/// a trace alone can reproduce the shed breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ShedCause {
    /// Tail-dropped on arrival: the bounded queue was full.
    Rejected,
    /// Evicted from the queue head to admit a newer request.
    Evicted,
    /// Dropped by deadline-aware admission as hopeless against the SLO.
    Deadline,
    /// Dropped after exhausting failover retry attempts.
    RetriesExhausted,
}

impl ShedCause {
    pub const ALL: [ShedCause; 4] =
        [ShedCause::Rejected, ShedCause::Evicted, ShedCause::Deadline, ShedCause::RetriesExhausted];

    pub const fn name(self) -> &'static str {
        match self {
            ShedCause::Rejected => "rejected",
            ShedCause::Evicted => "evicted",
            ShedCause::Deadline => "deadline",
            ShedCause::RetriesExhausted => "retries-exhausted",
        }
    }

    pub fn parse(name: &str) -> Option<ShedCause> {
        ShedCause::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Track an event belongs to. One Chrome-trace track is emitted per
/// distinct lane. `worker` is the fleet slot that owns a device-level
/// lane, so two multi-stick pipelines in one fleet don't collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Lane {
    /// The serving loop itself (arrivals, admission).
    Server,
    /// The bounded request queue.
    Queue,
    /// A whole fleet worker (host devices with no finer structure).
    Worker(u32),
    /// The host thread driving NCS device `dev` of worker `worker`.
    Host { worker: u32, dev: u32 },
    /// On-chip execution of NCS device `dev` of worker `worker`.
    Vpu { worker: u32, dev: u32 },
    /// The USB root controller of worker `worker`'s fabric.
    UsbRoot { worker: u32 },
    /// USB hub `hub` of worker `worker`'s fabric.
    UsbHub { worker: u32, hub: u32 },
    /// Derived SLO burn-rate alert windows (no serving-loop activity).
    Alerts,
    /// Power-counter lane of fleet worker `worker`: a step function of
    /// the worker's draw in milliwatts, sampled at every busy-span
    /// boundary by the energy meter.
    Power(u32),
}

impl Lane {
    /// Stable human-readable track name.
    pub fn name(self) -> String {
        match self {
            Lane::Server => "server".to_string(),
            Lane::Queue => "queue".to_string(),
            Lane::Alerts => "alerts".to_string(),
            Lane::Worker(w) => format!("worker{w}"),
            Lane::Host { worker, dev } => format!("w{worker}.host{dev}"),
            Lane::Vpu { worker, dev } => format!("w{worker}.vpu{dev}"),
            Lane::UsbRoot { worker } => format!("w{worker}.usb-root"),
            Lane::UsbHub { worker, hub } => format!("w{worker}.usb-hub{hub}"),
            Lane::Power(w) => format!("w{w}.power"),
        }
    }

    /// Inverse of [`Lane::name`] — reconstructs the lane from a track
    /// name found in an exported trace's `thread_name` metadata.
    pub fn parse(name: &str) -> Option<Lane> {
        match name {
            "server" => return Some(Lane::Server),
            "queue" => return Some(Lane::Queue),
            "alerts" => return Some(Lane::Alerts),
            _ => {}
        }
        if let Some(w) = name.strip_prefix("worker") {
            return w.parse().ok().map(Lane::Worker);
        }
        let rest = name.strip_prefix('w')?;
        let (worker, tail) = rest.split_once('.')?;
        let worker: u32 = worker.parse().ok()?;
        if tail == "power" {
            return Some(Lane::Power(worker));
        }
        if let Some(dev) = tail.strip_prefix("host") {
            return dev.parse().ok().map(|dev| Lane::Host { worker, dev });
        }
        if let Some(dev) = tail.strip_prefix("vpu") {
            return dev.parse().ok().map(|dev| Lane::Vpu { worker, dev });
        }
        if tail == "usb-root" {
            return Some(Lane::UsbRoot { worker });
        }
        if let Some(hub) = tail.strip_prefix("usb-hub") {
            return hub.parse().ok().map(|hub| Lane::UsbHub { worker, hub });
        }
        None
    }

    /// Display rank used to order tracks in the trace viewer: serving
    /// loop first, then queue, alerts, workers, host threads, chips,
    /// USB lanes.
    pub fn sort_rank(self) -> u32 {
        match self {
            Lane::Server => 0,
            Lane::Queue => 1,
            Lane::Alerts => 2,
            Lane::Worker(w) => 10 + w,
            Lane::Power(w) => 500 + w,
            Lane::Host { worker, dev } => 1_000 + worker * 100 + dev,
            Lane::Vpu { worker, dev } => 10_000 + worker * 100 + dev,
            Lane::UsbRoot { worker } => 100_000 + worker * 100,
            Lane::UsbHub { worker, hub } => 100_000 + worker * 100 + 1 + hub,
        }
    }
}

/// Propagated request context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ctx {
    pub request_id: Option<u64>,
    pub batch_id: Option<u64>,
    pub worker: Option<u32>,
}

impl Ctx {
    pub const NONE: Ctx = Ctx { request_id: None, batch_id: None, worker: None };

    pub fn request(request_id: u64) -> Ctx {
        Ctx { request_id: Some(request_id), ..Ctx::NONE }
    }

    pub fn with_batch(mut self, batch_id: u64) -> Ctx {
        self.batch_id = Some(batch_id);
        self
    }

    pub fn with_worker(mut self, worker: u32) -> Ctx {
        self.worker = Some(worker);
        self
    }
}

/// One observability event: an instant (`end == None`) or a busy span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    pub phase: Phase,
    pub lane: Lane,
    pub start: SimTime,
    pub end: Option<SimTime>,
    pub ctx: Ctx,
    /// Why a `Shed` event dropped its request; `None` elsewhere.
    pub cause: Option<ShedCause>,
    /// Counter reading of a [`Phase::PowerSample`] event (milliwatts);
    /// `None` for every other phase.
    pub value: Option<u64>,
}

impl Event {
    pub fn instant(phase: Phase, lane: Lane, at: SimTime, ctx: Ctx) -> Event {
        Event { phase, lane, start: at, end: None, ctx, cause: None, value: None }
    }

    pub fn span(phase: Phase, lane: Lane, start: SimTime, end: SimTime, ctx: Ctx) -> Event {
        debug_assert!(end >= start, "span ends before it starts");
        Event { phase, lane, start, end: Some(end), ctx, cause: None, value: None }
    }

    /// A [`Phase::PowerSample`] counter event: the lane reads
    /// `milliwatts` from `at` until its next sample.
    pub fn counter(lane: Lane, at: SimTime, milliwatts: u64, ctx: Ctx) -> Event {
        Event {
            phase: Phase::PowerSample,
            lane,
            start: at,
            end: None,
            ctx,
            cause: None,
            value: Some(milliwatts),
        }
    }

    pub fn with_cause(mut self, cause: ShedCause) -> Event {
        self.cause = Some(cause);
        self
    }

    /// Span end for spans, the instant itself otherwise.
    pub fn finish(&self) -> SimTime {
        self.end.unwrap_or(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_names_are_stable() {
        assert_eq!(Lane::Server.name(), "server");
        assert_eq!(Lane::Worker(3).name(), "worker3");
        assert_eq!(Lane::Host { worker: 2, dev: 1 }.name(), "w2.host1");
        assert_eq!(Lane::UsbHub { worker: 0, hub: 1 }.name(), "w0.usb-hub1");
        assert_eq!(Lane::Power(2).name(), "w2.power");
    }

    #[test]
    fn sort_ranks_group_by_category() {
        assert!(Lane::Server.sort_rank() < Lane::Queue.sort_rank());
        assert!(Lane::Queue.sort_rank() < Lane::Worker(0).sort_rank());
        assert!(Lane::Worker(15).sort_rank() < Lane::Power(0).sort_rank());
        assert!(Lane::Power(15).sort_rank() < Lane::Host { worker: 0, dev: 0 }.sort_rank());
        assert!(
            Lane::Vpu { worker: 0, dev: 7 }.sort_rank() < Lane::UsbRoot { worker: 0 }.sort_rank()
        );
    }

    #[test]
    fn phase_and_cause_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::parse(p.name()), Some(p));
        }
        assert_eq!(Phase::parse("NotAPhase"), None);
        for c in ShedCause::ALL {
            assert_eq!(ShedCause::parse(c.name()), Some(c));
        }
        assert_eq!(ShedCause::parse("unplugged"), None);
    }

    #[test]
    fn lane_names_round_trip() {
        let lanes = [
            Lane::Server,
            Lane::Queue,
            Lane::Alerts,
            Lane::Worker(3),
            Lane::Host { worker: 2, dev: 1 },
            Lane::Vpu { worker: 0, dev: 7 },
            Lane::UsbRoot { worker: 4 },
            Lane::UsbHub { worker: 1, hub: 2 },
            Lane::Power(5),
        ];
        for l in lanes {
            assert_eq!(Lane::parse(&l.name()), Some(l), "{}", l.name());
        }
        assert_eq!(Lane::parse("w1.bus0"), None);
        assert_eq!(Lane::parse("workerx"), None);
    }

    #[test]
    fn shed_cause_rides_on_events() {
        let ev = Event::instant(Phase::Shed, Lane::Server, SimTime(5), Ctx::request(1))
            .with_cause(ShedCause::Rejected);
        assert_eq!(ev.cause, Some(ShedCause::Rejected));
        assert_eq!(Event::instant(Phase::Arrive, Lane::Server, SimTime(5), Ctx::NONE).cause, None);
    }

    #[test]
    fn counter_events_carry_a_milliwatt_value() {
        let ev = Event::counter(Lane::Power(1), SimTime(7), 900, Ctx::NONE.with_batch(3));
        assert_eq!(ev.phase, Phase::PowerSample);
        assert_eq!(ev.value, Some(900));
        assert_eq!(ev.end, None);
        assert_eq!(Event::instant(Phase::Arrive, Lane::Server, SimTime(5), Ctx::NONE).value, None);
    }

    #[test]
    fn ctx_builder_propagates() {
        let c = Ctx::request(7).with_batch(3).with_worker(1);
        assert_eq!(c.request_id, Some(7));
        assert_eq!(c.batch_id, Some(3));
        assert_eq!(c.worker, Some(1));
        assert_eq!(Ctx::NONE, Ctx::default());
    }
}
