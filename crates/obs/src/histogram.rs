//! Log-bucketed latency histogram.
//!
//! HDR-style layout: buckets are grouped by the value's magnitude (its
//! highest set bit) with 32 linear sub-buckets per octave, giving a
//! worst-case quantile error of ~3% across the full `u64` nanosecond
//! range in a fixed 2 KiB footprint. Quantiles report the bucket's upper
//! bound, so they never under-state a latency.

use desim::Duration;

const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32 linear sub-buckets per octave

/// Fixed-size log-bucketed histogram of durations (nanoseconds).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        // Octaves 0..=63, SUB sub-buckets each; values below SUB land in
        // the first linear region exactly.
        LogHistogram { counts: vec![0; (64 * SUB) as usize], total: 0, sum_ns: 0, max_ns: 0 }
    }

    fn index(ns: u64) -> usize {
        if ns < SUB {
            return ns as usize;
        }
        let octave = 63 - ns.leading_zeros() as u64; // >= SUB_BITS as u64
        let shift = octave - SUB_BITS as u64;
        let sub = (ns >> shift) & (SUB - 1);
        ((octave - SUB_BITS as u64 + 1) * SUB + sub) as usize
    }

    /// Upper bound of the bucket at `idx` (inclusive).
    fn upper_bound(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB {
            return idx;
        }
        let group = idx / SUB - 1;
        let sub = idx % SUB;
        // Bucket covers [ (SUB+sub) << group, ((SUB+sub+1) << group) - 1 ].
        ((SUB + sub + 1) << group) - 1
    }

    pub fn record(&mut self, d: Duration) {
        let ns = d.nanos();
        self.counts[Self::index(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn len(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Fold `other` into `self`, as if every sample recorded into
    /// `other` had been recorded here instead. Bucket layout is fixed,
    /// so the merge is an element-wise add: quantiles of the merged
    /// histogram equal quantiles of the concatenated sample stream
    /// exactly (the sharded-sweep reduction property, see the
    /// `merge_equals_concatenation` test).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Quantile `q` in [0, 1]: the smallest bucket upper bound below
    /// which at least `q` of the samples fall (capped at the recorded
    /// maximum, so `quantile(1.0) == max()`).
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(Self::upper_bound(i).min(self.max_ns));
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_in_linear_region() {
        let mut h = LogHistogram::new();
        for ns in [0u64, 1, 5, 31] {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.quantile(0.25).nanos(), 0);
        assert_eq!(h.max().nanos(), 31);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LogHistogram::new();
        // 1..=10_000 microseconds, uniformly.
        for us in 1..=10_000u64 {
            h.record(Duration::from_nanos(us * 1_000));
        }
        for (q, expect_us) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).nanos() as f64 / 1_000.0;
            let err = (got - expect_us).abs() / expect_us;
            assert!(err < 0.04, "q{q}: got {got} want ~{expect_us} (err {err})");
        }
    }

    /// The mergeability property the sharded sweep runner relies on:
    /// for any split of a sample stream across shards, merged
    /// nearest-rank quantiles equal quantiles of the concatenated
    /// stream, exactly.
    #[test]
    fn merge_equals_concatenation() {
        // A deterministic pseudo-random stream, split round-robin
        // across three shards.
        let mut x: u64 = 0x1234_5678;
        let samples: Vec<u64> = (0..5_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 50_000_000 // up to 50 ms
            })
            .collect();
        let mut shards = [LogHistogram::new(), LogHistogram::new(), LogHistogram::new()];
        let mut concat = LogHistogram::new();
        for (i, &ns) in samples.iter().enumerate() {
            shards[i % 3].record(Duration::from_nanos(ns));
            concat.record(Duration::from_nanos(ns));
        }
        let mut merged = LogHistogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.len(), concat.len());
        assert_eq!(merged.mean(), concat.mean());
        assert_eq!(merged.max(), concat.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), concat.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let mut h = LogHistogram::new();
        h.record(Duration::from_millis(3.0));
        h.record(Duration::from_millis(9.0));
        let mut merged = LogHistogram::new();
        merged.merge(&h);
        for q in [0.5, 1.0] {
            assert_eq!(merged.quantile(q), h.quantile(q));
        }
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn quantiles_never_understate() {
        let mut h = LogHistogram::new();
        let v = Duration::from_millis(101.3);
        h.record(v);
        assert!(h.quantile(0.5) >= v);
        assert_eq!(h.quantile(1.0), v);
        assert_eq!(h.mean(), v);
    }
}
