//! Log-bucketed latency histogram.
//!
//! HDR-style layout: buckets are grouped by the value's magnitude (its
//! highest set bit) with 32 linear sub-buckets per octave, giving a
//! worst-case quantile error of ~3% across the full `u64` nanosecond
//! range in a fixed 2 KiB footprint. Quantiles report the bucket's upper
//! bound, so they never under-state a latency.

use desim::Duration;

const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32 linear sub-buckets per octave

/// Fixed-size log-bucketed histogram of durations (nanoseconds).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        // Octaves 0..=63, SUB sub-buckets each; values below SUB land in
        // the first linear region exactly.
        LogHistogram { counts: vec![0; (64 * SUB) as usize], total: 0, sum_ns: 0, max_ns: 0 }
    }

    fn index(ns: u64) -> usize {
        if ns < SUB {
            return ns as usize;
        }
        let octave = 63 - ns.leading_zeros() as u64; // >= SUB_BITS as u64
        let shift = octave - SUB_BITS as u64;
        let sub = (ns >> shift) & (SUB - 1);
        ((octave - SUB_BITS as u64 + 1) * SUB + sub) as usize
    }

    /// Upper bound of the bucket at `idx` (inclusive).
    fn upper_bound(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB {
            return idx;
        }
        let group = idx / SUB - 1;
        let sub = idx % SUB;
        // Bucket covers [ (SUB+sub) << group, ((SUB+sub+1) << group) - 1 ].
        ((SUB + sub + 1) << group) - 1
    }

    pub fn record(&mut self, d: Duration) {
        let ns = d.nanos();
        self.counts[Self::index(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn len(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Quantile `q` in [0, 1]: the smallest bucket upper bound below
    /// which at least `q` of the samples fall (capped at the recorded
    /// maximum, so `quantile(1.0) == max()`).
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(Self::upper_bound(i).min(self.max_ns));
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_in_linear_region() {
        let mut h = LogHistogram::new();
        for ns in [0u64, 1, 5, 31] {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.quantile(0.25).nanos(), 0);
        assert_eq!(h.max().nanos(), 31);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LogHistogram::new();
        // 1..=10_000 microseconds, uniformly.
        for us in 1..=10_000u64 {
            h.record(Duration::from_nanos(us * 1_000));
        }
        for (q, expect_us) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).nanos() as f64 / 1_000.0;
            let err = (got - expect_us).abs() / expect_us;
            assert!(err < 0.04, "q{q}: got {got} want ~{expect_us} (err {err})");
        }
    }

    #[test]
    fn quantiles_never_understate() {
        let mut h = LogHistogram::new();
        let v = Duration::from_millis(101.3);
        h.record(v);
        assert!(h.quantile(0.5) >= v);
        assert_eq!(h.quantile(1.0), v);
        assert_eq!(h.mean(), v);
    }
}
