//! The [`Recorder`] sink every instrumented layer writes to, plus the
//! standard implementations: a no-op recorder for uninstrumented hot
//! paths, an in-memory event log, and the Fig. 4 Gantt adapter that
//! keeps [`desim::TraceLog`] rendering working on top of the new
//! event stream.

use crate::event::{Ctx, Event, Lane, Phase};
use desim::{SimTime, TraceLog};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;

/// A sink for observability events. Implementations must be cheap:
/// instrumented hot paths guard event *construction* on
/// [`Recorder::enabled`], so a disabled recorder costs one branch.
pub trait Recorder {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: Event);
}

/// Records nothing; [`Recorder::enabled`] is `false`, so call sites
/// skip event construction entirely and the hot path stays
/// allocation-free and bit-identical to an uninstrumented run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: Event) {}
}

/// An append-only in-memory event log (the input to the exporters).
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
    /// Lazily-built request-id → event-position index, extended on
    /// demand by [`EventLog::for_request`]. The log is append-only, so
    /// positions never go stale; the index just catches up to `len()`.
    index: RefCell<ReqIndex>,
}

// Manual serde: only the events travel; the index is a cache rebuilt
// on demand.
impl Serialize for EventLog {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("events".to_string(), self.events.to_value())])
    }
}

impl Deserialize for EventLog {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let events = Vec::<Event>::from_value(serde::map_get(v, "events")?)?;
        Ok(EventLog { events, index: RefCell::new(ReqIndex::default()) })
    }
}

/// See [`EventLog::index`]: `upto` is how many events have been
/// indexed so far.
#[derive(Debug, Clone, Default)]
struct ReqIndex {
    by_request: HashMap<u64, Vec<usize>>,
    upto: usize,
}

/// Identity lives in the events alone; the index is a cache.
impl PartialEq for EventLog {
    fn eq(&self, other: &EventLog) -> bool {
        self.events == other.events
    }
}

impl Recorder for EventLog {
    fn record(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

impl EventLog {
    pub fn new() -> Self {
        EventLog::default()
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest finish instant across all events.
    pub fn horizon(&self) -> SimTime {
        self.events.iter().map(|e| e.finish()).max().unwrap_or(SimTime::ZERO)
    }

    /// Distinct lanes in first-appearance order.
    pub fn lanes(&self) -> Vec<Lane> {
        let mut lanes = Vec::new();
        for e in &self.events {
            if !lanes.contains(&e.lane) {
                lanes.push(e.lane);
            }
        }
        lanes
    }

    /// All events tagged with `request_id`, in record order.
    ///
    /// Amortized O(events of that request): the first call after new
    /// appends extends the per-request index, so span-tree joins and
    /// `repro explain` stay linear on large traces instead of
    /// re-scanning the whole log per request.
    pub fn for_request(&self, request_id: u64) -> Vec<&Event> {
        let mut idx = self.index.borrow_mut();
        if idx.upto < self.events.len() {
            for (pos, ev) in self.events.iter().enumerate().skip(idx.upto) {
                if let Some(id) = ev.ctx.request_id {
                    idx.by_request.entry(id).or_default().push(pos);
                }
            }
            idx.upto = self.events.len();
        }
        idx.by_request
            .get(&request_id)
            .map(|positions| positions.iter().map(|&p| &self.events[p]).collect())
            .unwrap_or_default()
    }

    /// The first-start instant of each [`Phase::REQUEST_CHAIN`] phase for
    /// `request_id`, in chain order — `Some` only when every phase of the
    /// chain is present (i.e. the request was served by a device with
    /// USB-level detail) and the instants are non-decreasing.
    pub fn request_chain(&self, request_id: u64) -> Option<Vec<(Phase, SimTime)>> {
        let evs = self.for_request(request_id);
        let mut chain = Vec::with_capacity(Phase::REQUEST_CHAIN.len());
        for phase in Phase::REQUEST_CHAIN {
            let first = evs.iter().filter(|e| e.phase == phase).map(|e| e.start).min()?;
            chain.push((phase, first));
        }
        for pair in chain.windows(2) {
            if pair[1].1 < pair[0].1 {
                return None;
            }
        }
        Some(chain)
    }
}

/// Forwards each event to two recorders (e.g. the Fig. 4 adapter plus
/// an external event log).
pub struct Tee<'a> {
    pub a: &'a mut dyn Recorder,
    pub b: &'a mut dyn Recorder,
}

impl Recorder for Tee<'_> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn record(&mut self, ev: Event) {
        if self.a.enabled() {
            self.a.record(ev);
        }
        if self.b.enabled() {
            self.b.record(ev);
        }
    }
}

/// Adapter: renders device-lane events into the [`TraceLog`] span shape
/// the Fig. 4 ASCII Gantt (and its tests) consume — `host{d}` lanes with
/// `load`/`read` spans, `vpu{d}` lanes with `exec` spans. Non-device
/// lanes and instant events are ignored.
#[derive(Debug, Default)]
pub struct GanttRecorder {
    log: TraceLog,
}

impl GanttRecorder {
    pub fn new() -> Self {
        GanttRecorder::default()
    }

    pub fn into_log(self) -> TraceLog {
        self.log
    }
}

impl Recorder for GanttRecorder {
    fn record(&mut self, ev: Event) {
        let Some(end) = ev.end else { return };
        let (lane, label) = match (ev.lane, ev.phase) {
            (Lane::Host { dev, .. }, Phase::UsbWrite) => (format!("host{dev}"), "load"),
            (Lane::Host { dev, .. }, Phase::UsbRead) => (format!("host{dev}"), "read"),
            (Lane::Vpu { dev, .. }, Phase::Exec) => (format!("vpu{dev}"), "exec"),
            _ => return,
        };
        self.log.push(lane, label, ev.start, end);
    }
}

/// Per-batch observability context a dispatcher hands to a device's
/// `serve` path: the recorder, the batch id, the owning fleet slot and
/// the request ids of the batch members in submission order.
pub struct BatchObs<'a> {
    pub rec: &'a mut dyn Recorder,
    pub batch_id: u64,
    pub worker: u32,
    /// Request id per batch member; empty outside a serving context.
    pub ids: &'a [u64],
}

impl<'a> BatchObs<'a> {
    /// A context that records nothing (standalone pipeline runs).
    pub fn disabled(rec: &'a mut NullRecorder) -> BatchObs<'a> {
        BatchObs { rec, batch_id: 0, worker: 0, ids: &[] }
    }

    pub fn enabled(&self) -> bool {
        self.rec.enabled()
    }

    /// Context for batch member `image` (request id when known).
    pub fn ctx(&self, image: usize) -> Ctx {
        Ctx {
            request_id: self.ids.get(image).copied(),
            batch_id: Some(self.batch_id),
            worker: Some(self.worker),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(5), Ctx::NONE));
    }

    #[test]
    fn event_log_collects_and_indexes() {
        let mut log = EventLog::new();
        log.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(1), Ctx::request(0)));
        log.record(Event::span(
            Phase::Exec,
            Lane::Worker(0),
            SimTime(2),
            SimTime(9),
            Ctx::request(0),
        ));
        assert_eq!(log.len(), 2);
        assert_eq!(log.horizon(), SimTime(9));
        assert_eq!(log.lanes(), vec![Lane::Server, Lane::Worker(0)]);
        assert_eq!(log.for_request(0).len(), 2);
        assert!(log.request_chain(0).is_none(), "partial chain must not validate");
    }

    #[test]
    fn request_chain_requires_every_phase_in_order() {
        let mut log = EventLog::new();
        let lane = Lane::Host { worker: 0, dev: 0 };
        for (i, phase) in Phase::REQUEST_CHAIN.iter().enumerate() {
            log.record(Event::instant(*phase, lane, SimTime(i as u64), Ctx::request(4)));
        }
        let chain = log.request_chain(4).expect("full chain");
        assert_eq!(chain.len(), Phase::REQUEST_CHAIN.len());
        assert_eq!(chain[0], (Phase::Arrive, SimTime(0)));
        assert_eq!(chain[7], (Phase::Complete, SimTime(7)));
    }

    #[test]
    fn for_request_index_tracks_interleaved_appends() {
        let mut log = EventLog::new();
        log.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(1), Ctx::request(0)));
        log.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(2), Ctx::request(1)));
        // Query builds the index...
        assert_eq!(log.for_request(0).len(), 1);
        // ...then appends after the index exists must still be found.
        log.record(Event::instant(Phase::Complete, Lane::Server, SimTime(3), Ctx::request(0)));
        log.record(Event::instant(Phase::Complete, Lane::Server, SimTime(4), Ctx::request(1)));
        assert_eq!(log.for_request(0).len(), 2);
        assert_eq!(log.for_request(1).len(), 2);
        assert!(log.for_request(7).is_empty());
        // Record order is preserved within a request.
        let phases: Vec<Phase> = log.for_request(0).iter().map(|e| e.phase).collect();
        assert_eq!(phases, vec![Phase::Arrive, Phase::Complete]);
        // The index is a cache: clones and equality ignore it.
        let clone = log.clone();
        assert_eq!(clone, log);
        assert_eq!(clone.for_request(1).len(), 2);
    }

    #[test]
    fn gantt_adapter_matches_legacy_tracelog_shape() {
        let mut g = GanttRecorder::new();
        let w = 0;
        g.record(Event::span(
            Phase::UsbWrite,
            Lane::Host { worker: w, dev: 1 },
            SimTime(0),
            SimTime(10),
            Ctx::NONE,
        ));
        g.record(Event::span(
            Phase::Exec,
            Lane::Vpu { worker: w, dev: 1 },
            SimTime(10),
            SimTime(90),
            Ctx::NONE,
        ));
        g.record(Event::span(
            Phase::UsbRead,
            Lane::Host { worker: w, dev: 1 },
            SimTime(90),
            SimTime(95),
            Ctx::NONE,
        ));
        // Queue events are not device lanes: ignored.
        g.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(0), Ctx::NONE));
        let log = g.into_log();
        let mut expect = TraceLog::new();
        expect.push("host1", "load", SimTime(0), SimTime(10));
        expect.push("vpu1", "exec", SimTime(10), SimTime(90));
        expect.push("host1", "read", SimTime(90), SimTime(95));
        assert_eq!(log, expect);
    }
}
