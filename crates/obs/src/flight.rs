//! Always-on flight recorder: a bounded ring of recent events that
//! snapshots itself when an incident trigger fires.
//!
//! Full traces don't scale and sampled traces are decided per request —
//! neither answers "what was the *whole fleet* doing in the seconds
//! before the circuit opened?". The [`FlightRecorder`] keeps a small
//! ring of the most recent events (bounded both by a virtual-clock
//! window and a hard capacity) at negligible cost, and when an
//! in-stream incident trigger fires (`CircuitOpen`, `IntegrityFail`) it
//! freezes the ring into an [`IncidentSnapshot`]. The bench layer adds
//! the third trigger — a two-window SLO burn-rate alert, which is only
//! computable after the run — via [`FlightRecorder::force_snapshot`],
//! and wraps snapshots into `incident_<n>.json` bundles carrying the
//! fleet/load/fault spec, seed and a one-line replay command.
//!
//! Like every [`Recorder`], the flight recorder is passive: it observes
//! the event stream and never alters simulation outcomes.

use crate::event::{Event, Phase};
use crate::recorder::Recorder;
use desim::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Bounds and trigger damping for the [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightConfig {
    /// Virtual-clock width of the ring: events older than `window`
    /// behind the newest start time are evicted.
    pub window: Duration,
    /// Hard cap on ring length, whatever the window says.
    pub capacity: usize,
    /// Stop snapshotting after this many incidents (bounds memory on
    /// pathological runs).
    pub max_incidents: usize,
    /// Minimum virtual time between snapshots — a flapping circuit
    /// produces one bundle per flap window, not one per flap.
    pub cooldown: Duration,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            window: Duration::from_millis(250.0),
            capacity: 4096,
            max_incidents: 8,
            cooldown: Duration::from_millis(250.0),
        }
    }
}

/// A frozen copy of the ring at the moment a trigger fired.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentSnapshot {
    /// Snapshot ordinal within the run (names `incident_<n>.json`).
    pub n: usize,
    /// What fired: an in-stream phase name (`circuit-open`,
    /// `integrity-fail`) or a bench-side trigger (`burn-rate-alert`).
    pub trigger: String,
    /// Virtual time of the trigger.
    pub at: SimTime,
    /// The ring's trace window, oldest first.
    pub events: Vec<Event>,
}

/// Always-on bounded ring buffer of recent events (see module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    ring: VecDeque<Event>,
    /// High-water mark of virtual time seen so far — spans are recorded
    /// at varying points, so the newest *start* drives eviction.
    now_ns: u64,
    incidents: Vec<IncidentSnapshot>,
    last_snapshot_ns: Option<u64>,
}

impl FlightRecorder {
    pub fn new(cfg: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            cfg,
            ring: VecDeque::new(),
            now_ns: 0,
            incidents: Vec::new(),
            last_snapshot_ns: None,
        }
    }

    /// Incidents snapshotted so far.
    pub fn incidents(&self) -> &[IncidentSnapshot] {
        &self.incidents
    }

    /// Consume the recorder, returning its snapshots.
    pub fn into_incidents(self) -> Vec<IncidentSnapshot> {
        self.incidents
    }

    /// Current ring contents (oldest first).
    pub fn window(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    fn evict(&mut self) {
        let horizon = self.now_ns.saturating_sub(self.cfg.window.nanos());
        while let Some(front) = self.ring.front() {
            if front.start.nanos() >= horizon && self.ring.len() <= self.cfg.capacity {
                break;
            }
            self.ring.pop_front();
        }
    }

    fn may_snapshot(&self, at: SimTime) -> bool {
        self.incidents.len() < self.cfg.max_incidents
            && self
                .last_snapshot_ns
                .is_none_or(|last| at.nanos().saturating_sub(last) >= self.cfg.cooldown.nanos())
    }

    /// Freeze the ring now, regardless of cooldown. Used by the bench
    /// layer for post-run triggers (burn-rate alerts); still respects
    /// `max_incidents`. Returns the snapshot ordinal if one was taken.
    pub fn force_snapshot(&mut self, trigger: &str, at: SimTime) -> Option<usize> {
        // E23 hot path: clones the whole ring — the expensive part of
        // the flight recorder, covering both in-stream triggers (via
        // `record`) and the bench layer's post-run forces.
        let _prof = crate::prof::scope("flight.snapshot");
        if self.incidents.len() >= self.cfg.max_incidents {
            return None;
        }
        let n = self.incidents.len();
        self.incidents.push(IncidentSnapshot {
            n,
            trigger: trigger.to_string(),
            at,
            events: self.ring.iter().cloned().collect(),
        });
        self.last_snapshot_ns = Some(at.nanos());
        Some(n)
    }
}

impl Recorder for FlightRecorder {
    fn record(&mut self, ev: Event) {
        self.now_ns = self.now_ns.max(ev.finish().nanos());
        let trigger = match ev.phase {
            Phase::CircuitOpen => Some("circuit-open"),
            Phase::IntegrityFail => Some("integrity-fail"),
            _ => None,
        };
        let at = ev.start;
        self.ring.push_back(ev);
        self.evict();
        if let Some(trigger) = trigger {
            if self.may_snapshot(at) {
                self.force_snapshot(trigger, at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Ctx, Lane};

    fn ev(phase: Phase, ms: u64) -> Event {
        Event::instant(phase, Lane::Server, SimTime(ms * 1_000_000), Ctx::NONE)
    }

    #[test]
    fn ring_is_bounded_by_window_and_capacity() {
        let cfg = FlightConfig {
            window: Duration::from_millis(10.0),
            capacity: 5,
            ..FlightConfig::default()
        };
        let mut fr = FlightRecorder::new(cfg);
        for ms in 0..100 {
            fr.record(ev(Phase::Arrive, ms));
        }
        let ring: Vec<u64> = fr.window().map(|e| e.start.nanos() / 1_000_000).collect();
        assert!(ring.len() <= 5, "{ring:?}");
        assert!(ring.iter().all(|&ms| ms >= 89), "window eviction: {ring:?}");
    }

    #[test]
    fn circuit_open_snapshots_the_ring() {
        let mut fr = FlightRecorder::new(FlightConfig::default());
        for ms in 0..20 {
            fr.record(ev(Phase::Arrive, ms));
        }
        fr.record(ev(Phase::CircuitOpen, 20));
        assert_eq!(fr.incidents().len(), 1);
        let snap = &fr.incidents()[0];
        assert_eq!(snap.trigger, "circuit-open");
        assert_eq!(snap.at, SimTime(20 * 1_000_000));
        assert_eq!(snap.events.len(), 21, "ring captured through the trigger");
    }

    #[test]
    fn snapshot_is_a_named_profiler_scope() {
        crate::prof::start();
        let mut fr = FlightRecorder::new(FlightConfig::default());
        for ms in 0..10 {
            fr.record(ev(Phase::Arrive, ms));
        }
        fr.record(ev(Phase::CircuitOpen, 10)); // in-stream trigger
        fr.force_snapshot("burn-rate", SimTime(11 * 1_000_000)); // bench force
        let r = crate::prof::stop();
        let snap = r.scopes.iter().find(|s| s.name == "flight.snapshot");
        assert_eq!(snap.map(|s| s.calls), Some(2), "both trigger paths are metered: {r:#?}");
    }

    #[test]
    fn cooldown_damps_flapping_triggers_and_cap_holds() {
        let cfg = FlightConfig {
            cooldown: Duration::from_millis(50.0),
            max_incidents: 3,
            ..FlightConfig::default()
        };
        let mut fr = FlightRecorder::new(cfg);
        for ms in 0..500 {
            fr.record(ev(Phase::IntegrityFail, ms));
        }
        // One per 50 ms cooldown window, stopped by the cap of 3.
        assert_eq!(fr.incidents().len(), 3);
        let times: Vec<u64> = fr.incidents().iter().map(|s| s.at.nanos() / 1_000_000).collect();
        assert_eq!(times, vec![0, 50, 100]);
    }

    #[test]
    fn forced_snapshot_respects_only_the_cap() {
        let cfg = FlightConfig { max_incidents: 2, ..FlightConfig::default() };
        let mut fr = FlightRecorder::new(cfg);
        fr.record(ev(Phase::Arrive, 1));
        assert_eq!(fr.force_snapshot("burn-rate-alert", SimTime(2_000_000)), Some(0));
        assert_eq!(fr.force_snapshot("burn-rate-alert", SimTime(2_000_000)), Some(1));
        assert_eq!(fr.force_snapshot("burn-rate-alert", SimTime(2_000_000)), None);
        assert_eq!(fr.incidents()[0].events.len(), 1);
    }
}
