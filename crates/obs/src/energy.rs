//! Energy metering over virtual-clock busy spans.
//!
//! The island-level power models (`myriad2::power::PowerModel`, the
//! host TDP registry) describe *rates*; this module integrates them
//! over the serving timeline so the online stack can report joules.
//! All arithmetic is integer-exact: power is carried in **milliwatts**
//! and energy in **picojoules**, so `pJ = mW × ns` holds without any
//! floating-point rounding and every conservation law in the analyzer
//! is a `u64` equality. Joules (`f64`) appear only at the display edge
//! via [`joules`].
//!
//! An [`EnergyMeter`] holds one [`EnergyProfile`] per fleet worker and
//! a per-worker ledger of charged busy spans. The serving loop charges
//! each dispatched batch — *including* failed attempts, whose energy is
//! real even though their latency is never attributed to a request —
//! and the meter clips overlapping charges (a fail-fast unplug probe
//! can overlap the next dispatch on the wall clock) so the ledger is a
//! disjoint, time-ordered step function. From that it derives:
//!
//! - integrated active/wasted/idle energy per worker and fleet-wide,
//! - `PowerSample` counter events on per-worker [`Lane::Power`] lanes
//!   (the Chrome trace renders them as power counters, and the trace
//!   alone is enough to re-integrate the exact same picojoule totals),
//! - [`Registry`] counters for scrape-style consumers.

use crate::event::{Ctx, Event, Lane};
use crate::recorder::EventLog;
use crate::registry::Registry;
use desim::SimTime;
use serde::{Deserialize, Serialize};

/// Convert integer picojoules to joules for display.
pub fn joules(pj: u64) -> f64 {
    pj as f64 / 1e12
}

/// Convert integer milliwatts to watts for display.
pub fn watts(mw: u64) -> f64 {
    mw as f64 / 1e3
}

/// A worker's power profile in integer milliwatts.
///
/// `busy_mw` is the draw while a batch occupies the device (all islands
/// active); `idle_mw` is the gated draw between batches (SHAVE islands
/// power-gated, host package idle); `tdp_mw` is the nameplate TDP used
/// by the paper's Eq. 1 throughput-per-watt accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyProfile {
    pub label: String,
    pub busy_mw: u64,
    pub idle_mw: u64,
    pub tdp_mw: u64,
}

impl EnergyProfile {
    pub fn new(label: impl Into<String>, busy_mw: u64, idle_mw: u64, tdp_mw: u64) -> EnergyProfile {
        EnergyProfile { label: label.into(), busy_mw, idle_mw, tdp_mw }
    }

    /// Exact energy in picojoules for `busy_ns` busy and `idle_ns` idle.
    pub fn energy_pj(&self, busy_ns: u64, idle_ns: u64) -> u64 {
        self.busy_mw * busy_ns + self.idle_mw * idle_ns
    }
}

/// One charged busy span in a worker's ledger (already clipped against
/// earlier charges, so spans are disjoint and time-ordered per worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeterSpan {
    pub worker: u32,
    pub start: SimTime,
    pub end: SimTime,
    pub batch: u64,
    /// True when the span belongs to a failed attempt (timeout or
    /// device error): its energy is charged but its latency is never
    /// attributed to a request.
    pub wasted: bool,
}

/// Fleet-wide energy totals in exact picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyTotals {
    /// Busy energy of spans that produced completions.
    pub active_pj: u64,
    /// Busy energy of failed attempts (timeouts, unplug probes).
    pub wasted_pj: u64,
    /// Gated/idle energy over the rest of the horizon.
    pub idle_pj: u64,
}

impl EnergyTotals {
    pub fn fleet_pj(&self) -> u64 {
        self.active_pj + self.wasted_pj + self.idle_pj
    }
}

/// Integrates per-worker power profiles over charged busy spans.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    epoch: SimTime,
    profiles: Vec<EnergyProfile>,
    /// Per-worker high-water mark: charges are clipped to start at or
    /// after this, keeping the ledger disjoint.
    charged_until: Vec<SimTime>,
    served_ns: Vec<u64>,
    wasted_ns: Vec<u64>,
    spans: Vec<MeterSpan>,
    /// Per-worker powered windows `[on, off)`, time-ordered; `None`
    /// closes at the integration horizon. A statically-provisioned
    /// worker keeps the single default window `[epoch, None)`, so its
    /// accounting is identical to a meter without windows. The
    /// autoscaler closes a window when it power-gates a drained stick
    /// ([`EnergyMeter::power_off`]) and opens a new one when the stick
    /// finishes re-provisioning ([`EnergyMeter::power_on`]); outside
    /// every window the worker draws nothing, which is exactly the
    /// energy a scale-down reclaims.
    powered: Vec<Vec<(SimTime, Option<SimTime>)>>,
}

impl EnergyMeter {
    pub fn new(profiles: Vec<EnergyProfile>, epoch: SimTime) -> EnergyMeter {
        let n = profiles.len();
        EnergyMeter {
            epoch,
            profiles,
            charged_until: vec![epoch; n],
            served_ns: vec![0; n],
            wasted_ns: vec![0; n],
            spans: Vec::new(),
            powered: vec![vec![(epoch, None)]; n],
        }
    }

    pub fn profiles(&self) -> &[EnergyProfile] {
        &self.profiles
    }

    pub fn spans(&self) -> &[MeterSpan] {
        &self.spans
    }

    /// Charge worker `worker` for a busy span executing `batch`.
    ///
    /// The span is clipped against the worker's previous charges (and
    /// the epoch); a fully-shadowed span charges nothing. Returns the
    /// clipped span if any energy was charged.
    pub fn charge(
        &mut self,
        worker: u32,
        start: SimTime,
        end: SimTime,
        batch: u64,
        wasted: bool,
    ) -> Option<MeterSpan> {
        let w = worker as usize;
        let s = SimTime::max_of(start, self.charged_until[w]);
        if end <= s {
            return None;
        }
        self.charged_until[w] = end;
        let ns = end.nanos() - s.nanos();
        if wasted {
            self.wasted_ns[w] += ns;
        } else {
            self.served_ns[w] += ns;
        }
        let span = MeterSpan { worker, start: s, end, batch, wasted };
        self.spans.push(span);
        Some(span)
    }

    /// Latest charged instant across all workers (the epoch when no
    /// charge landed). A timed-out batch can run past the last
    /// completion, so the energy horizon is
    /// `max(outcome end, busy_horizon)`.
    pub fn busy_horizon(&self) -> SimTime {
        self.charged_until.iter().copied().fold(self.epoch, SimTime::max_of)
    }

    /// Busy (served + wasted) nanoseconds charged to worker `w`.
    pub fn busy_ns(&self, w: usize) -> u64 {
        self.served_ns[w] + self.wasted_ns[w]
    }

    pub fn served_ns(&self, w: usize) -> u64 {
        self.served_ns[w]
    }

    pub fn wasted_ns(&self, w: usize) -> u64 {
        self.wasted_ns[w]
    }

    /// Power-gate worker `worker` at `at`: closes its open powered
    /// window. The instant is clamped to the window start, so a
    /// zero-length window charges nothing rather than underflowing.
    pub fn power_off(&mut self, worker: u32, at: SimTime) {
        let wins = &mut self.powered[worker as usize];
        let last = wins.last_mut().expect("worker always has a powered-window history");
        debug_assert!(last.1.is_none(), "power_off on an already-gated worker");
        last.1 = Some(SimTime::max_of(at, last.0));
    }

    /// Power worker `worker` back on at `at` (the end of its
    /// provisioning delay): opens a new window. Clamped to the previous
    /// window's close so windows stay disjoint and time-ordered.
    pub fn power_on(&mut self, worker: u32, at: SimTime) {
        let wins = &mut self.powered[worker as usize];
        let floor = wins.last().and_then(|w| w.1).expect("power_on on a live worker");
        wins.push((SimTime::max_of(at, floor), None));
    }

    /// Nanoseconds worker `w` was powered over `epoch..horizon`.
    pub fn powered_ns(&self, w: usize, horizon: SimTime) -> u64 {
        self.powered[w]
            .iter()
            .map(|&(on, off)| {
                let end = off.map_or(horizon, |o| o.min(horizon));
                end.nanos().saturating_sub(on.min(horizon).nanos())
            })
            .sum()
    }

    /// Nanoseconds worker `w` spent power-gated over `epoch..horizon`.
    pub fn unpowered_ns(&self, w: usize, horizon: SimTime) -> u64 {
        let span = horizon.nanos().saturating_sub(self.epoch.nanos());
        span - self.powered_ns(w, horizon)
    }

    /// True when worker `w` is inside a powered window at `t`.
    fn powered_at(&self, w: usize, t: SimTime) -> bool {
        self.powered[w].iter().any(|&(on, off)| on <= t && off.is_none_or(|o| t < o))
    }

    /// Exact idle draw avoided versus a statically-provisioned fleet:
    /// `Σ idle_mw × gated_ns` over all workers. Zero when no window was
    /// ever closed.
    pub fn reclaimed_pj(&self, horizon: SimTime) -> u64 {
        self.profiles
            .iter()
            .enumerate()
            .map(|(w, p)| p.idle_mw * self.unpowered_ns(w, horizon))
            .sum()
    }

    /// Exact integrated energy of worker `w` over `epoch..horizon`:
    /// busy draw over charged spans, idle draw over the rest of its
    /// *powered* windows, nothing while gated.
    pub fn worker_pj(&self, w: usize, horizon: SimTime) -> u64 {
        let powered = self.powered_ns(w, horizon);
        let busy = self.busy_ns(w);
        debug_assert!(busy <= powered, "busy ledger exceeds powered time");
        self.profiles[w].energy_pj(busy, powered - busy)
    }

    /// Fleet totals over `epoch..horizon`, split active/wasted/idle.
    /// The split telescopes: `active + wasted + idle == Σ worker_pj`.
    pub fn totals(&self, horizon: SimTime) -> EnergyTotals {
        let mut t = EnergyTotals::default();
        for (w, p) in self.profiles.iter().enumerate() {
            t.active_pj += p.busy_mw * self.served_ns[w];
            t.wasted_pj += p.busy_mw * self.wasted_ns[w];
            t.idle_pj += p.idle_mw * (self.powered_ns(w, horizon) - self.busy_ns(w));
        }
        t
    }

    /// The power step function as `PowerSample` counter events, one
    /// lane per worker: idle at each powered-window start (the epoch
    /// for a static worker), busy at each span start (carrying the
    /// batch id), idle again at each span end, **zero** at each
    /// power-gate instant, and a final sample at `horizon` marking the
    /// integration end. The trace alone reconstructs the exact
    /// picojoule ledger — re-integrating the step function over a gated
    /// worker naturally charges nothing for its dark windows.
    pub fn events(&self, horizon: SimTime) -> Vec<Event> {
        let mut out = Vec::new();
        for (w, p) in self.profiles.iter().enumerate() {
            let worker = w as u32;
            let lane = Lane::Power(worker);
            let ctx = Ctx::NONE.with_worker(worker);
            let mut spans = self.spans.iter().filter(|sp| sp.worker == worker).peekable();
            for &(on, off) in &self.powered[w] {
                if on > horizon {
                    break;
                }
                out.push(Event::counter(lane, on, p.idle_mw, ctx));
                // Busy spans always fall inside a powered window: the
                // serving loop never dispatches to a gated stick.
                while spans.peek().is_some_and(|sp| off.is_none_or(|o| sp.end <= o)) {
                    let sp = spans.next().unwrap();
                    out.push(Event::counter(lane, sp.start, p.busy_mw, ctx.with_batch(sp.batch)));
                    out.push(Event::counter(lane, sp.end, p.idle_mw, ctx));
                }
                if let Some(off) = off {
                    if off <= horizon {
                        out.push(Event::counter(lane, off, 0, ctx));
                    }
                }
            }
            let level = if self.powered_at(w, horizon) { p.idle_mw } else { 0 };
            out.push(Event::counter(lane, horizon, level, ctx));
        }
        out
    }

    /// Append the power lanes to an event log (no-op when disabled).
    pub fn record_into(&self, log: &mut EventLog, horizon: SimTime) {
        use crate::recorder::Recorder;
        for ev in self.events(horizon) {
            log.record(ev);
        }
    }

    /// Register fleet + per-worker energy counters (exact picojoules).
    pub fn register(&self, reg: &mut Registry, horizon: SimTime) {
        let t = self.totals(horizon);
        for (name, v) in [
            ("energy.active_pj", t.active_pj),
            ("energy.wasted_pj", t.wasted_pj),
            ("energy.idle_pj", t.idle_pj),
            ("energy.fleet_pj", t.fleet_pj()),
        ] {
            let id = reg.counter(name);
            reg.add(id, v);
        }
        for w in 0..self.profiles.len() {
            let id = reg.counter(&format!("energy.w{w}.pj"));
            reg.add(id, self.worker_pj(w, horizon));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_workers() -> EnergyMeter {
        EnergyMeter::new(
            vec![
                EnergyProfile::new("vpu0", 900, 172, 2_500),
                EnergyProfile::new("cpu", 80_000, 15_000, 80_000),
            ],
            SimTime(0),
        )
    }

    #[test]
    fn integrates_busy_and_idle_exactly() {
        let mut m = two_workers();
        m.charge(0, SimTime(100), SimTime(600), 1, false);
        m.charge(1, SimTime(0), SimTime(1_000), 2, false);
        let h = SimTime(1_000);
        // w0: 500 ns busy @900 mW + 500 ns idle @172 mW.
        assert_eq!(m.worker_pj(0, h), 900 * 500 + 172 * 500);
        // w1: fully busy.
        assert_eq!(m.worker_pj(1, h), 80_000 * 1_000);
        let t = m.totals(h);
        assert_eq!(t.fleet_pj(), m.worker_pj(0, h) + m.worker_pj(1, h));
        assert_eq!(t.wasted_pj, 0);
    }

    #[test]
    fn wasted_spans_charge_energy_separately() {
        let mut m = two_workers();
        m.charge(0, SimTime(0), SimTime(400), 1, true);
        m.charge(0, SimTime(400), SimTime(900), 2, false);
        let t = m.totals(SimTime(1_000));
        assert_eq!(t.wasted_pj, 900 * 400);
        assert_eq!(t.active_pj, 900 * 500);
        // Idle: 100 ns gated on the VPU plus the whole horizon on the
        // uncharged CPU worker.
        assert_eq!(t.idle_pj, 172 * 100 + 15_000 * 1_000);
        assert_eq!(t.fleet_pj(), m.worker_pj(0, SimTime(1_000)) + m.worker_pj(1, SimTime(1_000)));
    }

    #[test]
    fn overlapping_charges_are_clipped() {
        let mut m = two_workers();
        // An unplug probe charges [0, 500); the failover dispatch
        // overlaps it on the wall clock.
        assert!(m.charge(0, SimTime(0), SimTime(500), 1, true).is_some());
        let clipped = m.charge(0, SimTime(300), SimTime(800), 2, false).unwrap();
        assert_eq!(clipped.start, SimTime(500));
        // A fully-shadowed charge lands nothing.
        assert!(m.charge(0, SimTime(100), SimTime(400), 3, false).is_none());
        assert_eq!(m.busy_ns(0), 800);
        assert_eq!(m.busy_horizon(), SimTime(800));
    }

    #[test]
    fn events_form_a_self_describing_step_function() {
        let mut m = two_workers();
        m.charge(0, SimTime(100), SimTime(600), 7, false);
        let evs = m.events(SimTime(1_000));
        // Per worker: epoch + final samples, plus two per span.
        assert_eq!(evs.len(), 2 + 2 + 2);
        let w0: Vec<_> = evs.iter().filter(|e| e.lane == Lane::Power(0)).collect();
        assert_eq!(w0.len(), 4);
        assert_eq!((w0[0].start, w0[0].value), (SimTime(0), Some(172)));
        assert_eq!((w0[1].start, w0[1].value), (SimTime(100), Some(900)));
        assert_eq!(w0[1].ctx.batch_id, Some(7));
        assert_eq!((w0[2].start, w0[2].value), (SimTime(600), Some(172)));
        assert_eq!((w0[3].start, w0[3].value), (SimTime(1_000), Some(172)));
        // Re-integrating the step function recovers the exact total.
        let mut pj = 0u64;
        for pair in w0.windows(2) {
            pj += pair[0].value.unwrap() * (pair[1].start.nanos() - pair[0].start.nanos());
        }
        assert_eq!(pj, m.worker_pj(0, SimTime(1_000)));
    }

    #[test]
    fn power_gating_reclaims_exact_idle_draw() {
        let mut m = two_workers();
        m.charge(0, SimTime(100), SimTime(400), 1, false);
        // Gate w0 after its batch drains, power it back on later.
        m.power_off(0, SimTime(400));
        m.power_on(0, SimTime(800));
        let h = SimTime(1_000);
        assert_eq!(m.powered_ns(0, h), 400 + 200);
        assert_eq!(m.unpowered_ns(0, h), 400);
        // Busy 300 ns, idle only over the powered remainder.
        assert_eq!(m.worker_pj(0, h), 900 * 300 + 172 * 300);
        // Reclaimed = idle draw over the dark window, and the fleet
        // split still telescopes to the per-worker sum.
        assert_eq!(m.reclaimed_pj(h), 172 * 400);
        let t = m.totals(h);
        assert_eq!(t.fleet_pj(), m.worker_pj(0, h) + m.worker_pj(1, h));
    }

    #[test]
    fn gated_windows_emit_a_zero_level_step_function() {
        let mut m = two_workers();
        m.charge(0, SimTime(100), SimTime(400), 9, false);
        m.power_off(0, SimTime(400));
        m.power_on(0, SimTime(800));
        let h = SimTime(1_000);
        let evs = m.events(h);
        let w0: Vec<_> = evs.iter().filter(|e| e.lane == Lane::Power(0)).collect();
        let shape: Vec<_> = w0.iter().map(|e| (e.start.nanos(), e.value.unwrap())).collect();
        assert_eq!(
            shape,
            vec![(0, 172), (100, 900), (400, 172), (400, 0), (800, 172), (1_000, 172)]
        );
        // Re-integration over the gated lane recovers the exact total.
        let mut pj = 0u64;
        for pair in w0.windows(2) {
            pj += pair[0].value.unwrap() * (pair[1].start.nanos() - pair[0].start.nanos());
        }
        assert_eq!(pj, m.worker_pj(0, h));
    }

    #[test]
    fn a_never_gated_meter_is_unchanged_by_the_window_machinery() {
        // Static fleets keep the single default window, so every
        // accessor matches the plain busy/idle accounting.
        let mut m = two_workers();
        m.charge(0, SimTime(100), SimTime(600), 1, false);
        let h = SimTime(1_000);
        assert_eq!(m.powered_ns(0, h), 1_000);
        assert_eq!(m.unpowered_ns(1, h), 0);
        assert_eq!(m.reclaimed_pj(h), 0);
        assert_eq!(m.worker_pj(0, h), 900 * 500 + 172 * 500);
    }

    #[test]
    fn registers_exact_picojoule_counters() {
        let mut m = two_workers();
        m.charge(0, SimTime(0), SimTime(250), 1, false);
        let mut reg = Registry::new();
        m.register(&mut reg, SimTime(1_000));
        let t = m.totals(SimTime(1_000));
        assert_eq!(reg.counter_value("energy.fleet_pj"), Some(t.fleet_pj()));
        assert_eq!(reg.counter_value("energy.active_pj"), Some(t.active_pj));
        assert_eq!(reg.counter_value("energy.w0.pj"), Some(m.worker_pj(0, SimTime(1_000))));
        assert_eq!(
            reg.counter_value("energy.w0.pj").unwrap() + reg.counter_value("energy.w1.pj").unwrap(),
            t.fleet_pj()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Conservation on randomized server-shaped streams: the
        /// active/wasted/idle split telescopes to the per-worker
        /// integrated energy exactly, and re-integrating the emitted
        /// counter step function recovers the same picojoules.
        #[test]
        fn split_and_step_function_conserve_energy(
            charges in prop::collection::vec(
                (0u32..3, 0u64..50_000, 1u64..5_000, any::<bool>()), 0..40),
        ) {
            let profiles = vec![
                EnergyProfile::new("vpu0", 900, 172, 2_500),
                EnergyProfile::new("vpu1", 1_800, 344, 5_000),
                EnergyProfile::new("cpu", 80_000, 15_000, 80_000),
            ];
            let mut m = EnergyMeter::new(profiles.clone(), SimTime(0));
            for (i, &(w, start, len, wasted)) in charges.iter().enumerate() {
                m.charge(w, SimTime(start), SimTime(start + len), i as u64, wasted);
            }
            let horizon = SimTime::max_of(m.busy_horizon(), SimTime(60_000));
            let t = m.totals(horizon);
            let per_worker: u64 = (0..3).map(|w| m.worker_pj(w, horizon)).sum();
            prop_assert_eq!(t.fleet_pj(), per_worker);

            // Step-function re-integration per lane.
            let evs = m.events(horizon);
            for w in 0..3u32 {
                let lane: Vec<_> =
                    evs.iter().filter(|e| e.lane == Lane::Power(w)).collect();
                let mut pj = 0u64;
                for pair in lane.windows(2) {
                    prop_assert!(pair[1].start >= pair[0].start);
                    pj += pair[0].value.unwrap()
                        * (pair[1].start.nanos() - pair[0].start.nanos());
                }
                prop_assert_eq!(pj, m.worker_pj(w as usize, horizon));
            }
        }
    }
}
