//! Periodic time-series sampling on the virtual clock.
//!
//! End-of-run percentiles hide the shape of a run: a queue that spikes
//! and drains, a worker that saturates halfway through a burst. The
//! [`TimeSeriesBuilder`] is fed by the serving loop as it processes
//! events and emits one row per sampling interval: queue depth,
//! in-flight batches, cumulative completions/sheds, the SLO burn rate
//! over the window, and per-worker utilization since epoch.

use desim::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One sampled row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    pub t: SimTime,
    /// Requests waiting in the bounded queue.
    pub queue_depth: usize,
    /// Batches dispatched but not yet fully returned.
    pub inflight_batches: usize,
    /// Cumulative completions so far.
    pub completed: u64,
    /// Cumulative shed requests so far.
    pub shed: u64,
    /// Fraction of the window's completions that missed the SLO
    /// (error-budget burn rate; 0 when the window saw no completions).
    pub slo_burn: f64,
    /// Per-worker busy fraction of the epoch→t interval.
    pub worker_util: Vec<f64>,
}

/// A complete sampled series with its worker column labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    pub epoch: SimTime,
    pub interval: Duration,
    pub worker_labels: Vec<String>,
    pub samples: Vec<Sample>,
}

impl TimeSeries {
    /// CSV export: `time_ms,queue_depth,inflight_batches,completed,shed,
    /// slo_burn,util_<worker>...`, times relative to the epoch.
    pub fn csv(&self) -> String {
        let mut out = String::from("time_ms,queue_depth,inflight_batches,completed,shed,slo_burn");
        for label in &self.worker_labels {
            let _ = write!(out, ",util_{}", label.replace([' ', ','], "_"));
        }
        out.push('\n');
        for s in &self.samples {
            let _ = write!(
                out,
                "{:.3},{},{},{},{},{:.6}",
                (s.t - self.epoch).as_millis(),
                s.queue_depth,
                s.inflight_batches,
                s.completed,
                s.shed,
                s.slo_burn
            );
            for u in &s.worker_util {
                let _ = write!(out, ",{u:.6}");
            }
            out.push('\n');
        }
        out
    }
}

/// Incremental builder the serving loop drives. `advance` must be
/// called with non-decreasing instants (the loop's event times); each
/// crossing of a sample boundary emits a row using the state as of
/// that boundary.
#[derive(Debug)]
pub struct TimeSeriesBuilder {
    epoch: SimTime,
    interval: Duration,
    slo: Duration,
    labels: Vec<String>,
    next: SimTime,
    /// Per-worker service spans in dispatch order (each worker
    /// self-serializes, so spans are non-overlapping and time-ordered).
    spans: Vec<Vec<(SimTime, SimTime)>>,
    /// Per-worker cursor + busy time of fully consumed spans.
    cursor: Vec<usize>,
    consumed: Vec<Duration>,
    /// Outstanding batch spans (pruned as samples pass their end).
    active: Vec<(SimTime, SimTime)>,
    completed: u64,
    shed: u64,
    win_done: u64,
    win_miss: u64,
    samples: Vec<Sample>,
}

impl TimeSeriesBuilder {
    pub fn new(labels: Vec<String>, epoch: SimTime, interval: Duration, slo: Duration) -> Self {
        assert!(interval > Duration::ZERO, "sampling interval must be positive");
        let n = labels.len();
        TimeSeriesBuilder {
            epoch,
            interval,
            slo,
            labels,
            next: epoch + interval,
            spans: vec![Vec::new(); n],
            cursor: vec![0; n],
            consumed: vec![Duration::ZERO; n],
            active: Vec::new(),
            completed: 0,
            shed: 0,
            win_done: 0,
            win_miss: 0,
            samples: Vec::new(),
        }
    }

    /// A batch was dispatched to `worker`, occupying it over
    /// `start..end`.
    pub fn on_batch(&mut self, worker: usize, start: SimTime, end: SimTime) {
        self.spans[worker].push((start, end));
        self.active.push((start, end));
    }

    /// A request completed with end-to-end `latency`.
    pub fn on_complete(&mut self, latency: Duration) {
        self.completed += 1;
        self.win_done += 1;
        if latency > self.slo {
            self.win_miss += 1;
        }
    }

    /// A request was shed.
    pub fn on_shed(&mut self) {
        self.shed += 1;
    }

    /// Emit any samples whose boundary falls at or before `now`, using
    /// `queue_depth` as the queue state (constant between loop events).
    pub fn advance(&mut self, now: SimTime, queue_depth: usize) {
        while self.next <= now {
            let s = self.next;
            self.next += self.interval;
            self.emit(s, queue_depth);
        }
    }

    fn emit(&mut self, s: SimTime, queue_depth: usize) {
        let horizon = (s - self.epoch).as_secs();
        let util: Vec<f64> = (0..self.labels.len())
            .map(|w| {
                let spans = &self.spans[w];
                let (mut cur, mut busy) = (self.cursor[w], self.consumed[w]);
                while cur < spans.len() && spans[cur].1 <= s {
                    busy += spans[cur].1 - spans[cur].0;
                    cur += 1;
                }
                self.cursor[w] = cur;
                self.consumed[w] = busy;
                // Partial credit for the span straddling the boundary.
                if cur < spans.len() && spans[cur].0 < s {
                    busy += s - spans[cur].0;
                }
                if horizon <= 0.0 {
                    0.0
                } else {
                    busy.as_secs() / horizon
                }
            })
            .collect();
        self.active.retain(|&(_, end)| end > s);
        let inflight = self.active.iter().filter(|&&(start, _)| start <= s).count();
        let burn =
            if self.win_done == 0 { 0.0 } else { self.win_miss as f64 / self.win_done as f64 };
        self.win_done = 0;
        self.win_miss = 0;
        self.samples.push(Sample {
            t: s,
            queue_depth,
            inflight_batches: inflight,
            completed: self.completed,
            shed: self.shed,
            slo_burn: burn,
            worker_util: util,
        });
    }

    /// Sample through `end` and return the finished series.
    pub fn finish(mut self, end: SimTime, queue_depth: usize) -> TimeSeries {
        self.advance(end, queue_depth);
        TimeSeries {
            epoch: self.epoch,
            interval: self.interval,
            worker_labels: self.labels,
            samples: self.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Duration {
        Duration::from_millis(v)
    }

    fn at(v: f64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn samples_fall_on_interval_boundaries() {
        let mut b = TimeSeriesBuilder::new(vec!["cpu".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        b.advance(at(35.0), 2);
        let ts = b.finish(at(50.0), 0);
        let times: Vec<f64> = ts.samples.iter().map(|s| s.t.as_millis()).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(ts.samples[0].queue_depth, 2);
        assert_eq!(ts.samples[4].queue_depth, 0);
    }

    #[test]
    fn utilization_counts_busy_time_up_to_the_boundary() {
        let mut b = TimeSeriesBuilder::new(vec!["w".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        // Busy 0..15 ms: util at 10 ms = 1.0, at 20 ms = 0.75.
        b.on_batch(0, at(0.0), at(15.0));
        let ts = b.finish(at(20.0), 0);
        assert!((ts.samples[0].worker_util[0] - 1.0).abs() < 1e-9);
        assert!((ts.samples[1].worker_util[0] - 0.75).abs() < 1e-9);
        assert_eq!(ts.samples[0].inflight_batches, 1);
        assert_eq!(ts.samples[1].inflight_batches, 0);
    }

    #[test]
    fn burn_rate_is_windowed() {
        let mut b = TimeSeriesBuilder::new(vec![], SimTime::ZERO, ms(10.0), ms(5.0));
        b.on_complete(ms(2.0)); // within SLO
        b.on_complete(ms(9.0)); // miss
        b.advance(at(10.0), 0);
        b.on_complete(ms(9.0)); // miss, second window
        let ts = b.finish(at(20.0), 0);
        assert!((ts.samples[0].slo_burn - 0.5).abs() < 1e-9);
        assert!((ts.samples[1].slo_burn - 1.0).abs() < 1e-9);
        assert_eq!(ts.samples[1].completed, 3);
    }

    #[test]
    fn csv_has_stable_header_and_rows() {
        let mut b =
            TimeSeriesBuilder::new(vec!["vpu x8".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        b.on_batch(0, at(0.0), at(4.0));
        let ts = b.finish(at(10.0), 3);
        let csv = ts.csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "time_ms,queue_depth,inflight_batches,completed,shed,slo_burn,util_vpu_x8"
        );
        assert_eq!(lines.next().unwrap(), "10.000,3,0,0,0,0.000000,0.400000");
    }
}
