//! Periodic time-series sampling on the virtual clock.
//!
//! End-of-run percentiles hide the shape of a run: a queue that spikes
//! and drains, a worker that saturates halfway through a burst. The
//! [`TimeSeriesBuilder`] is fed by the serving loop as it processes
//! events and emits one row per sampling interval: queue depth,
//! in-flight batches, cumulative completions/sheds, the SLO burn rate
//! over the window, and per-worker utilization since epoch.

use crate::prof::WriteStats;
use desim::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io;

/// One sampled row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    pub t: SimTime,
    /// Requests waiting in the bounded queue.
    pub queue_depth: usize,
    /// Batches dispatched but not yet fully returned.
    pub inflight_batches: usize,
    /// Cumulative completions so far.
    pub completed: u64,
    /// Cumulative shed requests so far.
    pub shed: u64,
    /// Fraction of the window's completions that missed the SLO
    /// (error-budget burn rate; 0 when the window saw no completions).
    pub slo_burn: f64,
    /// Fraction of the window's arrivals that were shed (0 when the
    /// window saw no arrivals).
    pub shed_rate: f64,
    /// Per-worker busy fraction of the epoch→t interval.
    pub worker_util: Vec<f64>,
    /// Per-worker circuit-breaker state as of this boundary: 0.0
    /// closed, 1.0 open (matches the CircuitOpen/CircuitClose events).
    pub circuit: Vec<f64>,
    /// Per-worker average power draw in watts over epoch→t (busy spans
    /// at the busy rate, the rest gated/idle; zero until the builder is
    /// given power profiles).
    pub worker_power: Vec<f64>,
    /// Cumulative fleet energy in joules since the epoch.
    pub energy_j: f64,
    /// Cumulative completions per joule — numerically identical to
    /// img/s/W, the paper's Eq. 1 axis, but over *integrated* energy
    /// rather than nameplate TDP.
    pub img_per_watt: f64,
    /// Workers currently dispatchable (not drained, not provisioning).
    /// Constant at the fleet size unless an autoscaler is attached.
    pub live_sticks: usize,
    /// Cumulative autoscaling decisions applied so far.
    pub scale_events: u64,
}

/// A complete sampled series with its worker column labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    pub epoch: SimTime,
    pub interval: Duration,
    pub worker_labels: Vec<String>,
    pub samples: Vec<Sample>,
    /// True when the run carried an autoscaler: the CSV then appends
    /// `live_sticks,scale_events` columns. Controller-less runs keep
    /// the exact pre-autoscaling column set, byte for byte.
    pub scaling: bool,
}

impl TimeSeries {
    /// CSV export: `time_ms,queue_depth,inflight_batches,completed,shed,
    /// slo_burn,shed_rate,util_<worker>...,circuit_<worker>...,
    /// power_<worker>...,energy_j,img_per_watt`, times relative to the
    /// epoch.
    ///
    /// Buffered convenience over [`TimeSeries::csv_to`]: the bytes come
    /// from the same streaming writer.
    pub fn csv(&self) -> String {
        let mut buf = Vec::new();
        self.csv_to(&mut buf).expect("Vec<u8> sink cannot fail");
        String::from_utf8(buf).expect("series CSV is ASCII")
    }

    /// Stream the CSV row-at-a-time into `sink` with bounded memory
    /// (one scratch row, reused). Byte-identical to [`TimeSeries::csv`].
    pub fn csv_to<W: io::Write>(&self, mut sink: W) -> io::Result<WriteStats> {
        let mut stats = WriteStats::default();
        let mut row = String::from("time_ms,queue_depth,inflight_batches,completed,shed,slo_burn");
        row.push_str(",shed_rate");
        for label in &self.worker_labels {
            let _ = write!(row, ",util_{}", label.replace([' ', ','], "_"));
        }
        for label in &self.worker_labels {
            let _ = write!(row, ",circuit_{}", label.replace([' ', ','], "_"));
        }
        for label in &self.worker_labels {
            let _ = write!(row, ",power_{}", label.replace([' ', ','], "_"));
        }
        row.push_str(",energy_j,img_per_watt");
        if self.scaling {
            row.push_str(",live_sticks,scale_events");
        }
        row.push('\n');
        stats.peak_buffered = stats.peak_buffered.max(row.len() as u64);
        sink.write_all(row.as_bytes())?;
        stats.bytes += row.len() as u64;
        for s in &self.samples {
            row.clear();
            let _ = write!(
                row,
                "{:.3},{},{},{},{},{:.6},{:.6}",
                (s.t - self.epoch).as_millis(),
                s.queue_depth,
                s.inflight_batches,
                s.completed,
                s.shed,
                s.slo_burn,
                s.shed_rate
            );
            for u in &s.worker_util {
                let _ = write!(row, ",{u:.6}");
            }
            for c in &s.circuit {
                let _ = write!(row, ",{c:.1}");
            }
            for p in &s.worker_power {
                let _ = write!(row, ",{p:.6}");
            }
            let _ = write!(row, ",{:.6},{:.6}", s.energy_j, s.img_per_watt);
            if self.scaling {
                let _ = write!(row, ",{},{}", s.live_sticks, s.scale_events);
            }
            row.push('\n');
            stats.peak_buffered = stats.peak_buffered.max(row.len() as u64);
            sink.write_all(row.as_bytes())?;
            stats.bytes += row.len() as u64;
        }
        sink.flush()?;
        Ok(stats)
    }

    /// Parse a CSV produced by [`TimeSeries::csv`] back into a series
    /// (epoch-relative, so the reconstructed epoch is `SimTime::ZERO`).
    /// Lets `repro analyze` derive burn-rate alerts from a series file
    /// without re-running the simulation.
    pub fn from_csv(csv: &str) -> Result<TimeSeries, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let cols: Vec<&str> = header.split(',').collect();
        const FIXED: [&str; 7] = [
            "time_ms",
            "queue_depth",
            "inflight_batches",
            "completed",
            "shed",
            "slo_burn",
            "shed_rate",
        ];
        for (i, want) in FIXED.iter().enumerate() {
            match cols.get(i) {
                Some(got) if got == want => {}
                Some(got) => {
                    return Err(format!(
                        "header (line 1) column {}: {got:?}, expected {want:?}",
                        i + 1
                    ));
                }
                None => {
                    return Err(format!(
                        "header (line 1): only {} columns, column {} should be {want:?}",
                        cols.len(),
                        i + 1
                    ));
                }
            }
        }
        let labels: Vec<String> = cols
            .iter()
            .skip(FIXED.len())
            .take_while(|c| c.starts_with("util_"))
            .map(|c| c["util_".len()..].to_string())
            .collect();
        // Pre-energy CSVs stop after the circuit columns; current ones
        // add `power_<worker>...,energy_j,img_per_watt`, and autoscaled
        // runs append `live_sticks,scale_events`. Accept all three so
        // archived series files keep parsing (absent columns read as
        // zero).
        let old_shape = FIXED.len() + 2 * labels.len();
        let new_shape = FIXED.len() + 3 * labels.len() + 2;
        let scaled_shape = new_shape + 2;
        let power_cols = |cols: &[&str]| {
            cols.get(old_shape..old_shape + labels.len())
                .is_some_and(|s| s.iter().all(|c| c.starts_with("power_")))
        };
        let has_scaling = cols.len() == scaled_shape
            && power_cols(&cols)
            && cols[new_shape - 2..] == ["energy_j", "img_per_watt", "live_sticks", "scale_events"];
        let has_energy = has_scaling
            || (cols.len() == new_shape
                && power_cols(&cols)
                && cols[new_shape - 2..] == ["energy_j", "img_per_watt"]);
        let expect = if has_scaling {
            scaled_shape
        } else if has_energy {
            new_shape
        } else {
            old_shape
        };
        if cols.len() != expect {
            return Err(format!(
                "header (line 1): {} columns, expected {expect} for a {}-worker series",
                cols.len(),
                labels.len()
            ));
        }
        let mut samples = Vec::new();
        for (ln, line) in lines.enumerate() {
            // 1-based file line number: the header is line 1.
            let ln = ln + 2;
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != expect {
                return Err(format!("line {ln}: {} fields, expected {expect}", f.len()));
            }
            let num = |i: usize| {
                f[i].parse::<f64>().map_err(|_| {
                    format!("line {ln} column {} ({}): {:?} is not a number", i + 1, cols[i], f[i])
                })
            };
            let int = |i: usize| {
                f[i].parse::<u64>().map_err(|_| {
                    format!(
                        "line {ln} column {} ({}): {:?} is not an integer",
                        i + 1,
                        cols[i],
                        f[i]
                    )
                })
            };
            samples.push(Sample {
                t: SimTime::ZERO + Duration::from_millis(num(0)?),
                queue_depth: int(1)? as usize,
                inflight_batches: int(2)? as usize,
                completed: int(3)?,
                shed: int(4)?,
                slo_burn: num(5)?,
                shed_rate: num(6)?,
                worker_util: (0..labels.len())
                    .map(|w| num(FIXED.len() + w))
                    .collect::<Result<_, _>>()?,
                circuit: (0..labels.len())
                    .map(|w| num(FIXED.len() + labels.len() + w))
                    .collect::<Result<_, _>>()?,
                worker_power: if has_energy {
                    (0..labels.len()).map(|w| num(old_shape + w)).collect::<Result<_, _>>()?
                } else {
                    vec![0.0; labels.len()]
                },
                energy_j: if has_energy { num(new_shape - 2)? } else { 0.0 },
                img_per_watt: if has_energy { num(new_shape - 1)? } else { 0.0 },
                live_sticks: if has_scaling { int(scaled_shape - 2)? as usize } else { 0 },
                scale_events: if has_scaling { int(scaled_shape - 1)? } else { 0 },
            });
        }
        let interval = match samples.as_slice() {
            [a, b, ..] => b.t - a.t,
            [a] => a.t - SimTime::ZERO,
            [] => Duration::from_millis(1.0),
        };
        Ok(TimeSeries {
            epoch: SimTime::ZERO,
            interval: if interval > Duration::ZERO { interval } else { Duration::from_millis(1.0) },
            worker_labels: labels,
            samples,
            scaling: has_scaling,
        })
    }

    /// Fold another shard's series into this one, the time-series leg
    /// of the sharded-sweep reduction (counterpart of
    /// [`crate::Registry::merge`]). Both series must share the same
    /// epoch, interval, worker labels and scaling-ness — shards of one
    /// sweep cell do by construction.
    ///
    /// Column semantics per boundary:
    /// - fleet totals add: queue depth, in-flight batches, cumulative
    ///   completed/shed/scale events, energy, live sticks;
    /// - health ratios keep the worst shard: SLO burn, shed rate,
    ///   per-worker utilization/power/circuit (alerting on the merged
    ///   series can only under-state, never hide, a shard on fire);
    /// - `img_per_watt` is recomputed from merged completions/energy.
    ///
    /// If one shard ran longer, the shorter shard's final cumulative
    /// values carry through the tail.
    pub fn merge(&mut self, other: &TimeSeries) -> Result<(), String> {
        if self.epoch != other.epoch {
            return Err("series merge: mismatched epochs".to_string());
        }
        if self.interval != other.interval {
            return Err(format!(
                "series merge: interval {} ms vs {} ms",
                self.interval.as_millis(),
                other.interval.as_millis()
            ));
        }
        if self.worker_labels.len() != other.worker_labels.len() {
            return Err(format!(
                "series merge: {} worker labels, expected {}",
                other.worker_labels.len(),
                self.worker_labels.len()
            ));
        }
        if let Some((i, (want, got))) = self
            .worker_labels
            .iter()
            .zip(&other.worker_labels)
            .enumerate()
            .find(|(_, (a, b))| a != b)
        {
            // Name the first offending column, `from_csv` style —
            // sixteen-shard fleets make whole-vector dumps unreadable.
            return Err(format!("series merge: worker label {i}: {got:?}, expected {want:?}"));
        }
        if self.scaling != other.scaling {
            return Err("series merge: one series has autoscaling columns".to_string());
        }
        // Extend self with the tail of a longer other; tail rows start
        // from a copy that keeps other's cumulative columns only.
        while self.samples.len() < other.samples.len() {
            let last = self.samples.last().cloned();
            let t = other.samples[self.samples.len()].t;
            let n = self.worker_labels.len();
            let mut s = Sample {
                t,
                queue_depth: 0,
                inflight_batches: 0,
                completed: 0,
                shed: 0,
                slo_burn: 0.0,
                shed_rate: 0.0,
                worker_util: vec![0.0; n],
                circuit: vec![0.0; n],
                worker_power: vec![0.0; n],
                energy_j: 0.0,
                img_per_watt: 0.0,
                live_sticks: 0,
                scale_events: 0,
            };
            if let Some(last) = last {
                s.completed = last.completed;
                s.shed = last.shed;
                s.energy_j = last.energy_j;
                s.scale_events = last.scale_events;
            }
            self.samples.push(s);
        }
        for (i, s) in self.samples.iter_mut().enumerate() {
            // Past other's end, its final cumulative values carry on.
            let (o, live) = match other.samples.get(i) {
                Some(o) => (Some(o), true),
                None => (other.samples.last(), false),
            };
            let Some(o) = o else { continue };
            if live {
                s.queue_depth += o.queue_depth;
                s.inflight_batches += o.inflight_batches;
                s.slo_burn = s.slo_burn.max(o.slo_burn);
                s.shed_rate = s.shed_rate.max(o.shed_rate);
                for (a, b) in s.worker_util.iter_mut().zip(&o.worker_util) {
                    *a = a.max(*b);
                }
                for (a, b) in s.circuit.iter_mut().zip(&o.circuit) {
                    *a = a.max(*b);
                }
                for (a, b) in s.worker_power.iter_mut().zip(&o.worker_power) {
                    *a = a.max(*b);
                }
                s.live_sticks += o.live_sticks;
            }
            s.completed += o.completed;
            s.shed += o.shed;
            s.energy_j += o.energy_j;
            s.scale_events += o.scale_events;
            s.img_per_watt = if s.energy_j > 0.0 { s.completed as f64 / s.energy_j } else { 0.0 };
        }
        Ok(())
    }
}

/// Incremental builder the serving loop drives. `advance` must be
/// called with non-decreasing instants (the loop's event times); each
/// crossing of a sample boundary emits a row using the state as of
/// that boundary.
#[derive(Debug)]
pub struct TimeSeriesBuilder {
    epoch: SimTime,
    interval: Duration,
    slo: Duration,
    labels: Vec<String>,
    next: SimTime,
    /// Per-worker service spans in dispatch order (each worker
    /// self-serializes, so spans are non-overlapping and time-ordered).
    spans: Vec<Vec<(SimTime, SimTime)>>,
    /// Per-worker cursor + busy time of fully consumed spans.
    cursor: Vec<usize>,
    consumed: Vec<Duration>,
    /// Per-worker `(busy_mw, idle_mw)` power rates; all-zero until
    /// [`TimeSeriesBuilder::set_power`] is called.
    power: Vec<(u64, u64)>,
    /// Per-worker *charged* busy spans (clipped, so disjoint and
    /// time-ordered) — unlike `spans`, these include failed attempts,
    /// whose energy is real even though they serve nothing.
    espans: Vec<Vec<(SimTime, SimTime)>>,
    ecursor: Vec<usize>,
    econsumed: Vec<Duration>,
    /// Outstanding batch spans (pruned as samples pass their end).
    active: Vec<(SimTime, SimTime)>,
    completed: u64,
    shed: u64,
    win_done: u64,
    win_miss: u64,
    win_arrived: u64,
    win_shed: u64,
    /// Current per-worker circuit state (0.0 closed, 1.0 open).
    circuit: Vec<f64>,
    /// Future circuit transitions `(at, worker, state)` — failure
    /// detection lands after the loop instant that dispatched the
    /// batch, so transitions are buffered and applied in time order as
    /// sample boundaries pass them (mirrors completion buffering in the
    /// serving loop).
    circuit_pending: Vec<(SimTime, usize, f64)>,
    /// `Some` once an autoscaler attached: current live-worker count
    /// and cumulative decisions, with buffered future transitions
    /// `(at, live_delta, decision_delta)` — a scale-up's live increment
    /// lands at the end of its provisioning delay, past the tick that
    /// decided it.
    scaling: Option<ScalingCols>,
    /// Per-worker powered state, the instant it last changed, and the
    /// powered nanoseconds accumulated before that instant — drives the
    /// energy columns for workers that are dark for part of the run.
    pstate: Vec<bool>,
    pmark: Vec<SimTime>,
    pconsumed: Vec<u64>,
    /// Buffered future power transitions `(at, worker, powered)` — a
    /// drain's power-off lands when its in-flight batches finish.
    power_pending: Vec<(SimTime, usize, bool)>,
    samples: Vec<Sample>,
}

#[derive(Debug)]
struct ScalingCols {
    live: usize,
    events: u64,
    pending: Vec<(SimTime, i64, u64)>,
}

impl TimeSeriesBuilder {
    pub fn new(labels: Vec<String>, epoch: SimTime, interval: Duration, slo: Duration) -> Self {
        assert!(interval > Duration::ZERO, "sampling interval must be positive");
        let n = labels.len();
        TimeSeriesBuilder {
            epoch,
            interval,
            slo,
            labels,
            next: epoch + interval,
            spans: vec![Vec::new(); n],
            cursor: vec![0; n],
            consumed: vec![Duration::ZERO; n],
            power: vec![(0, 0); n],
            espans: vec![Vec::new(); n],
            ecursor: vec![0; n],
            econsumed: vec![Duration::ZERO; n],
            active: Vec::new(),
            completed: 0,
            shed: 0,
            win_done: 0,
            win_miss: 0,
            win_arrived: 0,
            win_shed: 0,
            circuit: vec![0.0; n],
            circuit_pending: Vec::new(),
            scaling: None,
            pstate: vec![true; n],
            pmark: vec![epoch; n],
            pconsumed: vec![0; n],
            power_pending: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Attach autoscaling columns: samples carry `live_sticks` (from
    /// `initial_live`) and cumulative `scale_events`. Without this call
    /// the series keeps the exact pre-autoscaling CSV shape.
    pub fn enable_scaling(&mut self, initial_live: usize) {
        self.scaling = Some(ScalingCols { live: initial_live, events: 0, pending: Vec::new() });
    }

    /// An autoscaling transition: at `at`, the live-worker count moves
    /// by `live_delta` and the cumulative decision count by
    /// `decisions`. Buffered and applied in time order at sample
    /// boundaries, like circuit transitions.
    pub fn scale_event(&mut self, at: SimTime, live_delta: i64, decisions: u64) {
        if let Some(sc) = self.scaling.as_mut() {
            sc.pending.push((at, live_delta, decisions));
        }
    }

    /// Worker `worker` powered off (`false`) or back on (`true`) at
    /// `at`: from that instant its energy column integrates zero draw
    /// (respectively its idle/busy rates again).
    pub fn power_event(&mut self, worker: usize, at: SimTime, powered: bool) {
        self.power_pending.push((at, worker, powered));
    }

    /// A batch was dispatched to `worker`, occupying it over
    /// `start..end`.
    pub fn on_batch(&mut self, worker: usize, start: SimTime, end: SimTime) {
        self.spans[worker].push((start, end));
        self.active.push((start, end));
    }

    /// Provide per-worker `(busy_mw, idle_mw)` rates so samples carry
    /// power/energy columns (zero otherwise).
    pub fn set_power(&mut self, rates: Vec<(u64, u64)>) {
        assert_eq!(rates.len(), self.power.len(), "one power rate per worker");
        self.power = rates;
    }

    /// Energy was charged to `worker` over `start..end` (an already
    /// clipped meter span — includes failed attempts, which don't count
    /// toward utilization but do burn joules).
    pub fn on_energy_span(&mut self, worker: usize, start: SimTime, end: SimTime) {
        self.espans[worker].push((start, end));
    }

    /// A request completed with end-to-end `latency`.
    pub fn on_complete(&mut self, latency: Duration) {
        self.completed += 1;
        self.win_done += 1;
        if latency > self.slo {
            self.win_miss += 1;
        }
    }

    /// A request arrived (drives the windowed shed-rate denominator).
    pub fn on_arrival(&mut self) {
        self.win_arrived += 1;
    }

    /// A request was shed.
    pub fn on_shed(&mut self) {
        self.shed += 1;
        self.win_shed += 1;
    }

    /// Worker `worker`'s circuit breaker transitioned to `state` (1.0
    /// open, 0.0 closed) at instant `at`, which may lie beyond the
    /// loop's current time — applied when a sample boundary passes it.
    pub fn circuit_event(&mut self, worker: usize, state: f64, at: SimTime) {
        self.circuit_pending.push((at, worker, state));
    }

    /// Emit any samples whose boundary falls at or before `now`, using
    /// `queue_depth` as the queue state (constant between loop events).
    pub fn advance(&mut self, now: SimTime, queue_depth: usize) {
        while self.next <= now {
            let s = self.next;
            self.next += self.interval;
            self.emit(s, queue_depth);
        }
    }

    fn emit(&mut self, s: SimTime, queue_depth: usize) {
        // Apply circuit transitions up to this boundary in time order
        // (stable sort keeps same-instant transitions in push order).
        self.circuit_pending.sort_by_key(|&(at, _, _)| at);
        let mut applied = 0;
        for &(at, w, state) in self.circuit_pending.iter() {
            if at > s {
                break;
            }
            self.circuit[w] = state;
            applied += 1;
        }
        self.circuit_pending.drain(..applied);
        // Apply power transitions up to this boundary, accumulating
        // each worker's powered time piecewise.
        self.power_pending.sort_by_key(|&(at, _, _)| at);
        let mut applied = 0;
        for &(at, w, powered) in self.power_pending.iter() {
            if at > s {
                break;
            }
            if self.pstate[w] {
                self.pconsumed[w] += (at - self.pmark[w]).nanos();
            }
            self.pmark[w] = at;
            self.pstate[w] = powered;
            applied += 1;
        }
        self.power_pending.drain(..applied);
        // Apply scaling transitions up to this boundary.
        if let Some(sc) = self.scaling.as_mut() {
            sc.pending.sort_by_key(|&(at, _, _)| at);
            let mut applied = 0;
            for &(at, live_delta, decisions) in sc.pending.iter() {
                if at > s {
                    break;
                }
                sc.live = (sc.live as i64 + live_delta).max(0) as usize;
                sc.events += decisions;
                applied += 1;
            }
            sc.pending.drain(..applied);
        }
        let horizon = (s - self.epoch).as_secs();
        let util: Vec<f64> = (0..self.labels.len())
            .map(|w| {
                let spans = &self.spans[w];
                let (mut cur, mut busy) = (self.cursor[w], self.consumed[w]);
                while cur < spans.len() && spans[cur].1 <= s {
                    busy += spans[cur].1 - spans[cur].0;
                    cur += 1;
                }
                self.cursor[w] = cur;
                self.consumed[w] = busy;
                // Partial credit for the span straddling the boundary.
                if cur < spans.len() && spans[cur].0 < s {
                    busy += s - spans[cur].0;
                }
                if horizon <= 0.0 {
                    0.0
                } else {
                    busy.as_secs() / horizon
                }
            })
            .collect();
        // Energy: integrate each worker's charged-span ledger to this
        // boundary (integer pJ = mW × ns, same discipline as the
        // EnergyMeter, so the last row agrees with the meter exactly).
        let elapsed_ns = (s - self.epoch).nanos();
        let mut fleet_pj = 0u64;
        let worker_power: Vec<f64> = (0..self.labels.len())
            .map(|w| {
                let spans = &self.espans[w];
                let (mut cur, mut busy) = (self.ecursor[w], self.econsumed[w]);
                while cur < spans.len() && spans[cur].1 <= s {
                    busy += spans[cur].1 - spans[cur].0;
                    cur += 1;
                }
                self.ecursor[w] = cur;
                self.econsumed[w] = busy;
                if cur < spans.len() && spans[cur].0 < s {
                    busy += s - spans[cur].0;
                }
                let busy_ns = busy.nanos().min(elapsed_ns);
                let (busy_mw, idle_mw) = self.power[w];
                // Idle draw accrues only over powered time: a gated
                // worker's lane is dark, exactly as in the EnergyMeter.
                let powered_ns = self.pconsumed[w]
                    + if self.pstate[w] { (s - self.pmark[w]).nanos() } else { 0 };
                let pj = busy_mw * busy_ns + idle_mw * (powered_ns.saturating_sub(busy_ns));
                fleet_pj += pj;
                if elapsed_ns == 0 {
                    0.0
                } else {
                    pj as f64 / elapsed_ns as f64 / 1e3
                }
            })
            .collect();
        let energy_j = fleet_pj as f64 / 1e12;
        self.active.retain(|&(_, end)| end > s);
        let inflight = self.active.iter().filter(|&&(start, _)| start <= s).count();
        let burn =
            if self.win_done == 0 { 0.0 } else { self.win_miss as f64 / self.win_done as f64 };
        let shed_rate = if self.win_arrived == 0 {
            0.0
        } else {
            self.win_shed as f64 / self.win_arrived as f64
        };
        self.win_done = 0;
        self.win_miss = 0;
        self.win_arrived = 0;
        self.win_shed = 0;
        self.samples.push(Sample {
            t: s,
            queue_depth,
            inflight_batches: inflight,
            completed: self.completed,
            shed: self.shed,
            slo_burn: burn,
            shed_rate,
            worker_util: util,
            circuit: self.circuit.clone(),
            worker_power,
            energy_j,
            img_per_watt: if energy_j > 0.0 { self.completed as f64 / energy_j } else { 0.0 },
            live_sticks: self.scaling.as_ref().map_or(self.labels.len(), |sc| sc.live),
            scale_events: self.scaling.as_ref().map_or(0, |sc| sc.events),
        });
    }

    /// Sample through `end` and return the finished series.
    pub fn finish(mut self, end: SimTime, queue_depth: usize) -> TimeSeries {
        self.advance(end, queue_depth);
        TimeSeries {
            epoch: self.epoch,
            interval: self.interval,
            worker_labels: self.labels,
            samples: self.samples,
            scaling: self.scaling.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Duration {
        Duration::from_millis(v)
    }

    fn at(v: f64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn samples_fall_on_interval_boundaries() {
        let mut b = TimeSeriesBuilder::new(vec!["cpu".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        b.advance(at(35.0), 2);
        let ts = b.finish(at(50.0), 0);
        let times: Vec<f64> = ts.samples.iter().map(|s| s.t.as_millis()).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(ts.samples[0].queue_depth, 2);
        assert_eq!(ts.samples[4].queue_depth, 0);
    }

    #[test]
    fn utilization_counts_busy_time_up_to_the_boundary() {
        let mut b = TimeSeriesBuilder::new(vec!["w".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        // Busy 0..15 ms: util at 10 ms = 1.0, at 20 ms = 0.75.
        b.on_batch(0, at(0.0), at(15.0));
        let ts = b.finish(at(20.0), 0);
        assert!((ts.samples[0].worker_util[0] - 1.0).abs() < 1e-9);
        assert!((ts.samples[1].worker_util[0] - 0.75).abs() < 1e-9);
        assert_eq!(ts.samples[0].inflight_batches, 1);
        assert_eq!(ts.samples[1].inflight_batches, 0);
    }

    #[test]
    fn burn_rate_is_windowed() {
        let mut b = TimeSeriesBuilder::new(vec![], SimTime::ZERO, ms(10.0), ms(5.0));
        b.on_complete(ms(2.0)); // within SLO
        b.on_complete(ms(9.0)); // miss
        b.advance(at(10.0), 0);
        b.on_complete(ms(9.0)); // miss, second window
        let ts = b.finish(at(20.0), 0);
        assert!((ts.samples[0].slo_burn - 0.5).abs() < 1e-9);
        assert!((ts.samples[1].slo_burn - 1.0).abs() < 1e-9);
        assert_eq!(ts.samples[1].completed, 3);
    }

    #[test]
    fn csv_has_stable_header_and_rows() {
        let mut b =
            TimeSeriesBuilder::new(vec!["vpu x8".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        b.on_batch(0, at(0.0), at(4.0));
        let ts = b.finish(at(10.0), 3);
        let csv = ts.csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "time_ms,queue_depth,inflight_batches,completed,shed,slo_burn,shed_rate,\
             util_vpu_x8,circuit_vpu_x8,power_vpu_x8,energy_j,img_per_watt"
        );
        assert_eq!(
            lines.next().unwrap(),
            "10.000,3,0,0,0,0.000000,0.000000,0.400000,0.0,0.000000,0.000000,0.000000"
        );
    }

    #[test]
    fn power_columns_integrate_charged_spans() {
        let mut b = TimeSeriesBuilder::new(vec!["vpu".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        b.set_power(vec![(900, 172)]);
        // Charged 0..5 ms, gated 5..10 ms.
        b.on_energy_span(0, at(0.0), at(5.0));
        let ts = b.finish(at(10.0), 0);
        let s = &ts.samples[0];
        // Average power: (900 mW × 5 ms + 172 mW × 5 ms) / 10 ms = 536 mW.
        assert!((s.worker_power[0] - 0.536).abs() < 1e-12, "{}", s.worker_power[0]);
        let want_j = (900u64 * 5_000_000 + 172 * 5_000_000) as f64 / 1e12;
        assert!((s.energy_j - want_j).abs() < 1e-15, "{}", s.energy_j);
        // No completions yet, so img/W stays zero rather than NaN.
        assert_eq!(s.img_per_watt, 0.0);
        // Utilization is untouched by energy-only spans.
        assert_eq!(s.worker_util[0], 0.0);
    }

    #[test]
    fn shed_rate_is_windowed_over_arrivals() {
        let mut b = TimeSeriesBuilder::new(vec![], SimTime::ZERO, ms(10.0), ms(100.0));
        for _ in 0..4 {
            b.on_arrival();
        }
        b.on_shed();
        b.advance(at(10.0), 0);
        b.on_arrival();
        let ts = b.finish(at(20.0), 0);
        assert!((ts.samples[0].shed_rate - 0.25).abs() < 1e-9);
        assert_eq!(ts.samples[1].shed_rate, 0.0, "window resets");
        assert_eq!(ts.samples[1].shed, 1, "cumulative column unaffected");
    }

    #[test]
    fn circuit_transitions_apply_at_their_own_instant() {
        let mut b = TimeSeriesBuilder::new(
            vec!["a".into(), "b".into()],
            SimTime::ZERO,
            ms(10.0),
            ms(100.0),
        );
        // Buffered out of order; each must land in its own sample.
        b.circuit_event(1, 1.0, at(25.0));
        b.circuit_event(0, 1.0, at(5.0));
        b.circuit_event(0, 0.0, at(15.0));
        let ts = b.finish(at(30.0), 0);
        assert_eq!(ts.samples[0].circuit, vec![1.0, 0.0]); // t=10
        assert_eq!(ts.samples[1].circuit, vec![0.0, 0.0]); // t=20
        assert_eq!(ts.samples[2].circuit, vec![0.0, 1.0]); // t=30
    }

    #[test]
    fn csv_round_trips_through_from_csv() {
        let mut b = TimeSeriesBuilder::new(vec!["vpu".into()], SimTime::ZERO, ms(10.0), ms(5.0));
        b.set_power(vec![(900, 172)]);
        b.on_batch(0, at(0.0), at(4.0));
        b.on_energy_span(0, at(0.0), at(4.0));
        b.on_arrival();
        b.on_complete(ms(9.0));
        b.circuit_event(0, 1.0, at(12.0));
        let ts = b.finish(at(20.0), 2);
        let csv = ts.csv();
        let back = TimeSeries::from_csv(&csv).expect("own CSV must parse");
        assert_eq!(back.worker_labels, ts.worker_labels);
        assert_eq!(back.samples.len(), ts.samples.len());
        assert_eq!(back.interval, ts.interval);
        for (a, b) in back.samples.iter().zip(&ts.samples) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.completed, b.completed);
            assert!((a.slo_burn - b.slo_burn).abs() < 1e-6);
            assert_eq!(a.circuit, b.circuit);
            assert!((a.worker_power[0] - b.worker_power[0]).abs() < 1e-6);
            assert!((a.energy_j - b.energy_j).abs() < 1e-6);
            assert!((a.img_per_watt - b.img_per_watt).abs() < 1e-3 * (1.0 + b.img_per_watt));
        }
        assert!(back.samples.iter().any(|s| s.energy_j > 0.0), "energy column survived");
        assert!(TimeSeries::from_csv("nope\n1,2").is_err());
    }

    #[test]
    fn scaling_columns_appear_only_when_enabled_and_round_trip() {
        // Without an autoscaler the header is byte-identical to the
        // pre-autoscaling shape.
        let b = TimeSeriesBuilder::new(vec!["vpu".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        let ts = b.finish(at(10.0), 0);
        assert!(ts.csv().lines().next().unwrap().ends_with(",energy_j,img_per_watt"));

        let mut b = TimeSeriesBuilder::new(
            vec!["a".into(), "b".into(), "c".into()],
            SimTime::ZERO,
            ms(10.0),
            ms(100.0),
        );
        b.enable_scaling(3);
        // Drain c at 5 ms (decision + live drop), power it back with a
        // provisioning delay ending at 25 ms (decision at 12 ms).
        b.scale_event(at(5.0), -1, 1);
        b.scale_event(at(12.0), 0, 1);
        b.scale_event(at(25.0), 1, 0);
        let ts = b.finish(at(30.0), 0);
        let header = ts.csv().lines().next().unwrap().to_string();
        assert!(header.ends_with(",energy_j,img_per_watt,live_sticks,scale_events"));
        let live: Vec<usize> = ts.samples.iter().map(|s| s.live_sticks).collect();
        let events: Vec<u64> = ts.samples.iter().map(|s| s.scale_events).collect();
        assert_eq!(live, vec![2, 2, 3]);
        assert_eq!(events, vec![1, 2, 2]);

        let back = TimeSeries::from_csv(&ts.csv()).expect("scaled CSV must parse");
        assert!(back.scaling);
        assert_eq!(
            back.samples.iter().map(|s| (s.live_sticks, s.scale_events)).collect::<Vec<_>>(),
            ts.samples.iter().map(|s| (s.live_sticks, s.scale_events)).collect::<Vec<_>>()
        );
        assert_eq!(back.csv(), ts.csv(), "scaled CSV round-trips byte-identically");
    }

    #[test]
    fn energy_column_goes_dark_while_a_worker_is_gated() {
        let mut b = TimeSeriesBuilder::new(vec!["vpu".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        b.set_power(vec![(900, 172)]);
        // Powered idle 0..5 ms, gated 5..10 ms: only 5 ms of idle draw.
        b.power_event(0, at(5.0), false);
        let ts = b.finish(at(10.0), 0);
        let want_j = (172u64 * 5_000_000) as f64 / 1e12;
        assert!((ts.samples[0].energy_j - want_j).abs() < 1e-15, "{}", ts.samples[0].energy_j);
        // Power back on at 12 ms: the second window adds idle draw again.
        let mut b = TimeSeriesBuilder::new(vec!["vpu".into()], SimTime::ZERO, ms(10.0), ms(100.0));
        b.set_power(vec![(900, 172)]);
        b.power_event(0, at(5.0), false);
        b.power_event(0, at(12.0), true);
        let ts = b.finish(at(20.0), 0);
        let want_j = (172u64 * (5_000_000 + 8_000_000)) as f64 / 1e12;
        assert!((ts.samples[1].energy_j - want_j).abs() < 1e-15, "{}", ts.samples[1].energy_j);
    }

    #[test]
    fn csv_to_streams_byte_identically_with_bounded_buffer() {
        let mut b = TimeSeriesBuilder::new(vec!["vpu".into()], SimTime::ZERO, ms(10.0), ms(5.0));
        b.set_power(vec![(900, 172)]);
        b.on_batch(0, at(0.0), at(4.0));
        b.on_energy_span(0, at(0.0), at(4.0));
        b.on_arrival();
        b.on_complete(ms(9.0));
        let ts = b.finish(at(50.0), 2);
        let buffered = ts.csv();
        let mut sink = Vec::new();
        let stats = ts.csv_to(&mut sink).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), buffered);
        assert_eq!(stats.bytes, buffered.len() as u64);
        assert!(stats.peak_buffered > 0);
        assert!(
            stats.peak_buffered < buffered.len() as u64,
            "scratch buffer must stay below the whole document: {} vs {}",
            stats.peak_buffered,
            buffered.len()
        );
    }

    #[test]
    fn from_csv_errors_name_the_line_and_column() {
        // Wrong header column name.
        let err = TimeSeries::from_csv("time_ms,queue_depth,oops\n").unwrap_err();
        assert!(err.contains("header (line 1)") && err.contains("\"oops\""), "{err}");
        assert!(!err.contains('\n'), "one-line error: {err}");
        // Truncated header.
        let err = TimeSeries::from_csv("time_ms,queue_depth\n").unwrap_err();
        assert!(err.contains("only 2 columns"), "{err}");
        // Header whose column count matches no known shape.
        let err = TimeSeries::from_csv(
            "time_ms,queue_depth,inflight_batches,completed,shed,slo_burn,shed_rate,util_v\n",
        )
        .unwrap_err();
        assert!(err.contains("expected 9 for a 1-worker series"), "{err}");
        // A row with the wrong field count names its 1-based line.
        let good_header = "time_ms,queue_depth,inflight_batches,completed,shed,slo_burn,\
                           shed_rate,util_v,circuit_v\n";
        let err = TimeSeries::from_csv(&format!("{good_header}1,2,3\n")).unwrap_err();
        assert!(err.contains("line 2: 3 fields, expected 9"), "{err}");
        // A non-numeric cell names line, column number and header name.
        let err = TimeSeries::from_csv(&format!(
            "{good_header}0.0,1,0,2,0,0.0,0.0,0.1,0.0\n0.0,1,0,xyz,0,0.0,0.0,0.1,0.0\n"
        ))
        .unwrap_err();
        assert!(err.contains("line 3 column 4 (completed)"), "{err}");
        assert!(err.contains("\"xyz\" is not an integer"), "{err}");
        assert!(!err.contains('\n'), "one-line error: {err}");
    }

    #[test]
    fn merge_adds_totals_and_keeps_worst_shard_health() {
        let mk = |busy_ms: f64, miss: bool| {
            let mut b =
                TimeSeriesBuilder::new(vec!["vpu".into()], SimTime::ZERO, ms(10.0), ms(5.0));
            b.set_power(vec![(900, 172)]);
            b.on_batch(0, at(0.0), at(busy_ms));
            b.on_energy_span(0, at(0.0), at(busy_ms));
            b.on_arrival();
            b.on_complete(if miss { ms(9.0) } else { ms(1.0) });
            b.finish(at(20.0), 1)
        };
        let mut a = mk(4.0, true);
        let b = mk(8.0, false);
        let (burn_a, util_b) = (a.samples[0].slo_burn, b.samples[0].worker_util[0]);
        let energy_want = a.samples[1].energy_j + b.samples[1].energy_j;
        a.merge(&b).expect("same-shape merge");
        assert_eq!(a.samples[0].completed, 2, "completions add");
        assert_eq!(a.samples[0].queue_depth, 2, "queue depths add");
        assert_eq!(a.samples[0].slo_burn, burn_a, "burn keeps the worst shard");
        assert_eq!(a.samples[0].worker_util[0], util_b, "util keeps the busiest shard");
        assert!((a.samples[1].energy_j - energy_want).abs() < 1e-15, "energy adds");
        let ipw = a.samples[1].completed as f64 / a.samples[1].energy_j;
        assert!((a.samples[1].img_per_watt - ipw).abs() < 1e-9, "img/W recomputed");
        // The merged series still exports and re-parses.
        let back = TimeSeries::from_csv(&a.csv()).expect("merged CSV parses");
        assert_eq!(back.samples.len(), a.samples.len());
    }

    #[test]
    fn merge_handles_unequal_lengths_and_rejects_mismatched_shapes() {
        let mk = |end_ms: f64| {
            let mut b =
                TimeSeriesBuilder::new(vec!["vpu".into()], SimTime::ZERO, ms(10.0), ms(5.0));
            b.on_arrival();
            b.on_complete(ms(1.0));
            b.finish(at(end_ms), 0)
        };
        // Longer other: self grows a tail carrying its own finals.
        let mut a = mk(10.0);
        let b = mk(30.0);
        a.merge(&b).unwrap();
        assert_eq!(a.samples.len(), 3);
        assert_eq!(a.samples[2].completed, 2, "both shards' finals in the tail");
        // Shorter other: its final cumulative values carry through.
        let mut c = mk(30.0);
        c.merge(&mk(10.0)).unwrap();
        assert_eq!(c.samples[2].completed, 2);
        assert_eq!(c.samples[2].queue_depth, 0, "instantaneous columns don't carry");

        let mut d = mk(10.0);
        let other = TimeSeriesBuilder::new(vec!["x".into()], SimTime::ZERO, ms(10.0), ms(5.0))
            .finish(at(10.0), 0);
        let err = d.merge(&other).unwrap_err();
        assert_eq!(err, "series merge: worker label 0: \"x\", expected \"vpu\"");
        let other = TimeSeriesBuilder::new(
            vec!["vpu".into(), "gpu".into()],
            SimTime::ZERO,
            ms(10.0),
            ms(5.0),
        )
        .finish(at(10.0), 0);
        let err = d.merge(&other).unwrap_err();
        assert_eq!(err, "series merge: 2 worker labels, expected 1");
        let other = TimeSeriesBuilder::new(vec!["vpu".into()], SimTime::ZERO, ms(20.0), ms(5.0))
            .finish(at(20.0), 0);
        let err = d.merge(&other).unwrap_err();
        assert!(err.contains("interval"), "{err}");
    }

    #[test]
    fn from_csv_accepts_pre_energy_shape() {
        let csv = "time_ms,queue_depth,inflight_batches,completed,shed,slo_burn,shed_rate,\
                   util_vpu,circuit_vpu\n\
                   10.000,1,0,2,0,0.000000,0.000000,0.400000,0.0\n";
        let ts = TimeSeries::from_csv(csv).expect("archived pre-energy CSV must parse");
        assert_eq!(ts.worker_labels, vec!["vpu".to_string()]);
        assert_eq!(ts.samples[0].worker_power, vec![0.0]);
        assert_eq!(ts.samples[0].energy_j, 0.0);
        assert_eq!(ts.samples[0].img_per_watt, 0.0);
    }
}
