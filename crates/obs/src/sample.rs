//! Tail-based trace sampling: decide *after* a request terminates
//! whether its span chain is worth keeping.
//!
//! Full traces cannot follow the simulator to million-request sweeps —
//! every phase of every request lands in an unbounded `Vec`. Production
//! tracing systems keep the interesting tail instead: a
//! [`SamplingRecorder`] buffers each request's events until its
//! terminal event (`Complete` or `Shed`) and then keeps the whole chain
//! only if the [`SamplePolicy`] fires. Three kinds of keep decisions
//! compose:
//!
//! 1. **Always-keep triggers** — anomalies whose full causal chain is
//!    the entire point of tracing: SLO violations, sheds, failover /
//!    retry / integrity-failure involvement, hedged batches and
//!    quarantine-flagged batches.
//! 2. **Top-K-slowest reservoir** — the K slowest otherwise-unkept
//!    requests survive, so the extreme tail is retained *exactly* and
//!    high quantiles can be recovered from a sampled trace by rank.
//! 3. **Uniform 1-in-N** — a seeded, order-independent hash of the
//!    request id keeps a representative slice of the happy path.
//!
//! Non-request events (circuit transitions, scaling, power counters,
//! batch-scoped hedges…) always pass through, so a sampled trace still
//! satisfies the full `validate-trace` grammar. Event order is
//! preserved via sequence numbers: the **all-keep policy is
//! byte-identical to an unsampled trace** — the same events in the same
//! order produce the same exported bytes.

use crate::event::{Event, Phase};
use crate::recorder::{EventLog, Recorder};
use desim::Duration;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Default top-K-slowest reservoir size when the spec names none.
pub const DEFAULT_TOP_K: usize = 32;

/// A parsed `--sample` spec: what the [`SamplingRecorder`] keeps.
///
/// Grammar (round-trips through [`SamplePolicy::spec`]):
///
/// - `all` — keep every request (byte-identical to no sampling);
/// - `1-in-<N>` — uniform 1-in-N plus the always-keep triggers and the
///   default top-[`DEFAULT_TOP_K`]-slowest reservoir;
/// - `1-in-<N>+top<K>` — same with an explicit reservoir size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplePolicy {
    /// Keep everything (triggers, reservoir and hashing are moot).
    pub keep_all: bool,
    /// Uniform keep rate: one request in `one_in` (ignored if
    /// `keep_all`).
    pub one_in: u64,
    /// Reservoir size: the K slowest otherwise-dropped requests.
    pub top_k: usize,
}

impl SamplePolicy {
    /// The all-keep policy.
    pub fn all() -> SamplePolicy {
        SamplePolicy { keep_all: true, one_in: 1, top_k: 0 }
    }

    /// Uniform 1-in-N with the default reservoir.
    pub fn one_in(n: u64) -> SamplePolicy {
        SamplePolicy { keep_all: false, one_in: n.max(1), top_k: DEFAULT_TOP_K }
    }

    /// Parse a `--sample` spec. Errors are one line and name the
    /// offending token.
    pub fn parse(spec: &str) -> Result<SamplePolicy, String> {
        if spec == "all" {
            return Ok(SamplePolicy::all());
        }
        let err = || format!("sample spec {spec:?}: expected 'all' or '1-in-<N>[+top<K>]'");
        let body = spec.strip_prefix("1-in-").ok_or_else(err)?;
        let (n, k) = match body.split_once("+top") {
            Some((n, k)) => {
                let k: usize = k
                    .parse()
                    .map_err(|_| format!("sample spec {spec:?}: top-K {k:?} is not a number"))?;
                (n, k)
            }
            None => (body, DEFAULT_TOP_K),
        };
        let n: u64 =
            n.parse().map_err(|_| format!("sample spec {spec:?}: N {n:?} is not a number"))?;
        if n == 0 {
            return Err(format!("sample spec {spec:?}: N must be >= 1"));
        }
        Ok(SamplePolicy { keep_all: false, one_in: n, top_k: k })
    }

    /// Canonical spec string (inverse of [`SamplePolicy::parse`]).
    pub fn spec(&self) -> String {
        if self.keep_all {
            return "all".to_string();
        }
        if self.top_k == DEFAULT_TOP_K {
            format!("1-in-{}", self.one_in)
        } else {
            format!("1-in-{}+top{}", self.one_in, self.top_k)
        }
    }
}

/// Why a kept request survived sampling — the breakdown reported by
/// [`SampleStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeepReason {
    Slo,
    Shed,
    Fault,
    Hedge,
    Quarantine,
}

/// What one sampled run kept and why. Rides on the exported trace as a
/// `sampling` metadata row so `validate-trace` can report it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Canonical policy spec ([`SamplePolicy::spec`]).
    pub spec: String,
    /// Requests that reached a terminal event.
    pub requests_seen: u64,
    /// Requests whose full chain was kept.
    pub requests_kept: u64,
    /// Kept because end-to-end latency exceeded the SLO.
    pub slo: u64,
    /// Kept because the request was shed.
    pub shed: u64,
    /// Kept for failover / retry / integrity-failure involvement.
    pub fault: u64,
    /// Kept because a batch carrying the request was hedged.
    pub hedge: u64,
    /// Kept because a batch carrying the request hit a quarantine.
    pub quarantine: u64,
    /// Kept by the uniform 1-in-N hash.
    pub uniform: u64,
    /// Kept by the top-K-slowest reservoir.
    pub reservoir: u64,
    /// Kept because the run ended before the request terminated.
    pub unterminated: u64,
    /// Events offered to the recorder.
    pub events_seen: u64,
    /// Events that survived into the sampled log.
    pub events_kept: u64,
}

impl SampleStats {
    pub fn requests_dropped(&self) -> u64 {
        self.requests_seen - self.requests_kept
    }

    /// Whether this run kept everything (all-keep spec).
    pub fn keeps_all(&self) -> bool {
        self.spec == "all"
    }

    /// One-line human summary (the `validate-trace` sampling line).
    pub fn render(&self) -> String {
        format!(
            "sampling: spec {} kept {}/{} requests (slo {}, shed {}, fault {}, hedge {}, \
             quarantine {}, top-k {}, uniform {}), {}/{} events",
            self.spec,
            self.requests_kept,
            self.requests_seen,
            self.slo,
            self.shed,
            self.fault,
            self.hedge,
            self.quarantine,
            self.reservoir,
            self.uniform,
            self.events_kept,
            self.events_seen,
        )
    }
}

/// Buffered state of one not-yet-terminal request.
#[derive(Default)]
struct PendingReq {
    events: Vec<(u64, Event)>,
    arrive_ns: Option<u64>,
    flag: Option<KeepReason>,
    batches: Vec<u64>,
}

/// Per-batch trigger state: a batch-scoped anomaly (hedge, failover,
/// quarantine) marks every member request as keep-worthy.
#[derive(Default)]
struct BatchState {
    flag: Option<KeepReason>,
    members: Vec<u64>,
}

/// SplitMix64 finalizer over `(seed, id)` — a deterministic,
/// order-independent per-request coin for the uniform 1-in-N decision.
fn mix(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Recorder`] implementing tail-based sampling (see the module
/// docs). Feed it a run, then call [`SamplingRecorder::finish`] to get
/// the sampled [`EventLog`] plus the keep/drop ledger.
pub struct SamplingRecorder {
    policy: SamplePolicy,
    seed: u64,
    slo_ns: u64,
    seq: u64,
    kept: Vec<(u64, Event)>,
    pending: HashMap<u64, PendingReq>,
    batches: HashMap<u64, BatchState>,
    /// Min-heap of reservoir candidates by `(latency, id)`; ties break
    /// on the id, so eviction is fully deterministic.
    reservoir: BinaryHeap<Reverse<(u64, u64)>>,
    held: HashMap<u64, Vec<(u64, Event)>>,
    stats: SampleStats,
}

impl SamplingRecorder {
    /// `seed` drives the uniform hash (use the run's serve seed so the
    /// sampled trace is as reproducible as the run); `slo` is the
    /// latency above which a request is an always-keep SLO violation.
    pub fn new(policy: SamplePolicy, seed: u64, slo: Duration) -> SamplingRecorder {
        let stats = SampleStats { spec: policy.spec(), ..SampleStats::default() };
        SamplingRecorder {
            policy,
            seed,
            slo_ns: slo.nanos(),
            seq: 0,
            kept: Vec::new(),
            pending: HashMap::new(),
            batches: HashMap::new(),
            reservoir: BinaryHeap::new(),
            held: HashMap::new(),
            stats,
        }
    }

    /// Trigger classification of a batch-scoped anomaly phase.
    fn batch_trigger(phase: Phase) -> Option<KeepReason> {
        match phase {
            Phase::Hedge | Phase::HedgeWin | Phase::HedgeCancel => Some(KeepReason::Hedge),
            Phase::Failover => Some(KeepReason::Fault),
            Phase::Quarantine => Some(KeepReason::Quarantine),
            _ => None,
        }
    }

    fn decide(&mut self, id: u64, terminal: &Event) {
        // E23 hot path: one decision per terminated request — the
        // sampler's whole overhead story lives here and in the ring
        // appends, so `--prof` runs break it out by name.
        let _prof = crate::prof::scope("sample.decide");
        let Some(mut req) = self.pending.remove(&id) else { return };
        self.stats.requests_seen += 1;
        let end_ns = terminal.finish().nanos();
        let arrive = req.arrive_ns.unwrap_or(end_ns);
        let latency = end_ns.saturating_sub(arrive);

        // Fold in batch-scoped triggers from every batch that carried
        // this request (hedges and failovers land before their members'
        // terminal events, so the flags are already set here).
        if req.flag.is_none() {
            for b in &req.batches {
                if let Some(f) = self.batches.get(b).and_then(|s| s.flag) {
                    req.flag = Some(f);
                    break;
                }
            }
        }
        let reason = if terminal.phase == Phase::Shed {
            Some(KeepReason::Shed)
        } else if latency > self.slo_ns {
            Some(KeepReason::Slo)
        } else {
            req.flag
        };
        if let Some(reason) = reason {
            match reason {
                KeepReason::Slo => self.stats.slo += 1,
                KeepReason::Shed => self.stats.shed += 1,
                KeepReason::Fault => self.stats.fault += 1,
                KeepReason::Hedge => self.stats.hedge += 1,
                KeepReason::Quarantine => self.stats.quarantine += 1,
            }
            self.stats.requests_kept += 1;
            self.kept.append(&mut req.events);
            return;
        }
        if mix(self.seed, id).is_multiple_of(self.policy.one_in) {
            self.stats.uniform += 1;
            self.stats.requests_kept += 1;
            self.kept.append(&mut req.events);
            return;
        }
        if self.policy.top_k > 0 {
            // Tentative keep: the K slowest candidates survive the run.
            self.reservoir.push(Reverse((latency, id)));
            self.held.insert(id, req.events);
            if self.reservoir.len() > self.policy.top_k {
                let Reverse((_, evicted)) = self.reservoir.pop().expect("non-empty reservoir");
                self.held.remove(&evicted);
            }
        }
    }
}

impl Recorder for SamplingRecorder {
    fn record(&mut self, ev: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.events_seen += 1;
        if self.policy.keep_all {
            self.stats.requests_kept +=
                u64::from(matches!(ev.phase, Phase::Complete | Phase::Shed));
            self.stats.requests_seen +=
                u64::from(matches!(ev.phase, Phase::Complete | Phase::Shed));
            self.kept.push((seq, ev));
            return;
        }
        let Some(id) = ev.ctx.request_id else {
            // Worker / batch / power events always survive — they are
            // what keeps the sampled trace grammatically complete.
            if let Some(reason) = Self::batch_trigger(ev.phase) {
                if let Some(b) = ev.ctx.batch_id {
                    let state = self.batches.entry(b).or_default();
                    state.flag.get_or_insert(reason);
                    // Retro-flag members already buffered.
                    for m in state.members.clone() {
                        if let Some(req) = self.pending.get_mut(&m) {
                            req.flag.get_or_insert(reason);
                        }
                    }
                }
            }
            self.kept.push((seq, ev));
            return;
        };
        let req = self.pending.entry(id).or_default();
        if let Some(b) = ev.ctx.batch_id {
            if !req.batches.contains(&b) {
                req.batches.push(b);
                let state = self.batches.entry(b).or_default();
                state.members.push(id);
                if let Some(f) = state.flag {
                    self.pending.get_mut(&id).expect("just inserted").flag.get_or_insert(f);
                }
            }
        }
        let req = self.pending.get_mut(&id).expect("present");
        if ev.phase == Phase::Arrive {
            req.arrive_ns.get_or_insert(ev.start.nanos());
        }
        if matches!(ev.phase, Phase::RetryAttempt | Phase::IntegrityFail | Phase::Failover) {
            req.flag.get_or_insert(KeepReason::Fault);
        }
        req.events.push((seq, ev));
        if matches!(ev.phase, Phase::Complete | Phase::Shed) {
            self.decide(id, &ev);
        }
    }
}

impl SamplingRecorder {
    /// Resolve the reservoir, restore global event order and return the
    /// sampled log plus the keep/drop ledger.
    pub fn finish(mut self) -> (EventLog, SampleStats) {
        // Reservoir survivors: the K slowest non-triggered requests.
        let mut survivors: Vec<u64> = self.held.keys().copied().collect();
        survivors.sort_unstable();
        for id in survivors {
            let mut evs = self.held.remove(&id).expect("held");
            self.stats.reservoir += 1;
            self.stats.requests_kept += 1;
            self.kept.append(&mut evs);
        }
        // Requests with no terminal event by the end of the run are
        // anomalies in their own right: keep them.
        let mut open: Vec<u64> = self.pending.keys().copied().collect();
        open.sort_unstable();
        for id in open {
            let mut req = self.pending.remove(&id).expect("pending");
            self.stats.requests_seen += 1;
            self.stats.requests_kept += 1;
            self.stats.unterminated += 1;
            self.kept.append(&mut req.events);
        }
        self.kept.sort_unstable_by_key(|&(seq, _)| seq);
        self.stats.events_kept = self.kept.len() as u64;
        let mut log = EventLog::new();
        for (_, ev) in self.kept {
            log.record(ev);
        }
        (log, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Ctx, Lane, ShedCause};
    use desim::SimTime;

    #[test]
    fn spec_grammar_round_trips_and_rejects_junk() {
        for spec in ["all", "1-in-100", "1-in-7+top4"] {
            let p = SamplePolicy::parse(spec).expect(spec);
            assert_eq!(p.spec(), spec, "{spec}");
        }
        // The default top-K collapses back to the short form.
        assert_eq!(SamplePolicy::parse("1-in-9+top32").unwrap().spec(), "1-in-9");
        for bad in ["", "none", "1-in-", "1-in-x", "1-in-0", "1-in-5+topx", "2-in-5"] {
            let err = SamplePolicy::parse(bad).unwrap_err();
            assert!(err.contains("sample spec"), "{bad}: {err}");
            assert!(!err.contains('\n'), "one-line error: {err}");
        }
    }

    /// A tiny synthetic run: `n` requests, request 2 shed, request 5
    /// slow (SLO violation), the rest fast completions.
    fn feed(rec: &mut SamplingRecorder, n: u64) {
        let t = |ms: u64| SimTime(ms * 1_000_000);
        for id in 0..n {
            let base = id * 10;
            rec.record(Event::instant(Phase::Arrive, Lane::Server, t(base), Ctx::request(id)));
            if id == 2 {
                rec.record(
                    Event::instant(Phase::Shed, Lane::Server, t(base + 1), Ctx::request(id))
                        .with_cause(ShedCause::Rejected),
                );
                continue;
            }
            let c = Ctx::request(id).with_batch(id).with_worker(0);
            rec.record(Event::instant(Phase::Dispatch, Lane::Worker(0), t(base + 1), c));
            let done = if id == 5 { base + 600 } else { base + 3 + id % 3 };
            rec.record(Event::instant(Phase::Complete, Lane::Server, t(done), c));
        }
    }

    fn sampled(policy: SamplePolicy, seed: u64, n: u64) -> (EventLog, SampleStats) {
        let mut rec = SamplingRecorder::new(policy, seed, Duration::from_millis(500.0));
        feed(&mut rec, n);
        rec.finish()
    }

    #[test]
    fn decide_is_a_named_profiler_scope() {
        crate::prof::start();
        let (_log, stats) = sampled(SamplePolicy::parse("1-in-4").unwrap(), 7, 20);
        let r = crate::prof::stop();
        let decide = r.scopes.iter().find(|s| s.name == "sample.decide");
        assert_eq!(
            decide.map(|s| s.calls),
            Some(stats.requests_seen),
            "one decision per terminated request: {r:#?}"
        );
    }

    #[test]
    fn all_keep_preserves_every_event_in_order() {
        let (log, stats) = sampled(SamplePolicy::all(), 7, 20);
        // `feed` wants a SamplingRecorder, so replay via a second
        // all-keep pass and compare against the raw log ordering.
        let mut full = EventLog::new();
        let mut rec = SamplingRecorder::new(SamplePolicy::all(), 0, Duration::from_millis(500.0));
        feed(&mut rec, 20);
        for (_, ev) in rec.kept.drain(..) {
            full.record(ev);
        }
        assert_eq!(log.events(), full.events());
        assert_eq!(stats.requests_kept, stats.requests_seen);
        assert_eq!(stats.events_kept, stats.events_seen);
        assert!(stats.keeps_all());
    }

    #[test]
    fn triggers_always_keep_shed_and_slo_chains() {
        let policy = SamplePolicy { keep_all: false, one_in: 1_000_000, top_k: 0 };
        let (log, stats) = sampled(policy, 1, 50);
        assert_eq!(stats.shed, 1, "{stats:?}");
        assert_eq!(stats.slo, 1, "{stats:?}");
        assert_eq!(log.for_request(2).len(), 2, "shed chain retained in full");
        assert_eq!(log.for_request(5).len(), 3, "slow chain retained in full");
        assert!(log.for_request(7).is_empty(), "happy-path request dropped");
        assert!(stats.requests_dropped() > 0);
    }

    #[test]
    fn reservoir_keeps_exactly_the_k_slowest() {
        let policy = SamplePolicy { keep_all: false, one_in: 1_000_000, top_k: 3 };
        let (log, stats) = sampled(policy, 1, 50);
        assert_eq!(stats.reservoir, 3, "{stats:?}");
        // Completions take 3 + id%3 ms: the slowest non-triggered
        // requests are the highest ids with id%3 == 2.
        let kept: Vec<u64> = (0..50).filter(|&id| !log.for_request(id).is_empty()).collect();
        assert!(kept.contains(&47) && kept.contains(&44), "{kept:?}");
    }

    #[test]
    fn uniform_hash_is_seeded_and_deterministic() {
        let policy = SamplePolicy { keep_all: false, one_in: 4, top_k: 0 };
        let (a, sa) = sampled(policy.clone(), 11, 200);
        let (b, sb) = sampled(policy.clone(), 11, 200);
        assert_eq!(a.events(), b.events(), "same seed, same sample");
        assert_eq!(sa, sb);
        let (c, sc) = sampled(policy, 12, 200);
        assert_ne!(a.events(), c.events(), "different seed, different sample");
        assert!(sa.uniform > 0 && sc.uniform > 0);
        // 1-in-4 of ~200: the hash keeps roughly a quarter.
        assert!((20..=90).contains(&(sa.uniform as usize)), "{sa:?}");
    }

    #[test]
    fn batch_triggers_flag_member_requests() {
        let t = |ms: u64| SimTime(ms * 1_000_000);
        let policy = SamplePolicy { keep_all: false, one_in: 1_000_000, top_k: 0 };
        let mut rec = SamplingRecorder::new(policy, 3, Duration::from_millis(500.0));
        let c = Ctx::request(0).with_batch(9).with_worker(1);
        rec.record(Event::instant(Phase::Arrive, Lane::Server, t(0), Ctx::request(0)));
        rec.record(Event::instant(Phase::Dispatch, Lane::Worker(1), t(1), c));
        // Batch-scoped hedge lands before the member's completion.
        let h = Ctx { request_id: None, batch_id: Some(9), worker: Some(2) };
        rec.record(Event::span(Phase::Hedge, Lane::Worker(2), t(2), t(3), h));
        rec.record(Event::instant(Phase::Complete, Lane::Server, t(4), c));
        let (log, stats) = rec.finish();
        assert_eq!(stats.hedge, 1, "{stats:?}");
        assert_eq!(log.for_request(0).len(), 3, "hedged chain kept in full");
        // The batch-scoped hedge span itself always survives.
        assert!(log.events().iter().any(|e| e.phase == Phase::Hedge));
    }

    #[test]
    fn unterminated_requests_are_kept() {
        let t = |ms: u64| SimTime(ms * 1_000_000);
        let policy = SamplePolicy { keep_all: false, one_in: 1_000_000, top_k: 0 };
        let mut rec = SamplingRecorder::new(policy, 3, Duration::from_millis(500.0));
        rec.record(Event::instant(Phase::Arrive, Lane::Server, t(0), Ctx::request(4)));
        let (log, stats) = rec.finish();
        assert_eq!(stats.unterminated, 1);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn stats_render_is_one_line() {
        let (_, stats) = sampled(SamplePolicy::one_in(4), 9, 40);
        let line = stats.render();
        assert!(line.starts_with("sampling: spec 1-in-4 kept "), "{line}");
        assert!(!line.contains('\n'));
    }
}
