//! # ncsw-obs — observability for the simulated NCS fleet
//!
//! Structured event tracing, metrics and time-series sampling over the
//! virtual clock, shared by the serving loop (`ncsw-serve`), the
//! multi-VPU pipeline (`ncsw`) and the USB/device models
//! (`ncs-platform`).
//!
//! The pieces:
//!
//! - [`Event`]/[`Phase`]/[`Lane`]/[`Ctx`] — `Copy` virtual-clock-stamped
//!   events with propagated request context, so one request can be
//!   followed arrival→admission→batch→USB→SHAVE→completion.
//! - [`Recorder`] — the sink trait; [`NullRecorder`] keeps
//!   uninstrumented hot paths allocation-free, [`EventLog`] collects
//!   for export, [`GanttRecorder`] adapts device events back into the
//!   legacy [`desim::TraceLog`] shape the Fig. 4 ASCII Gantt renders,
//!   [`Tee`] fans out to two sinks at once.
//! - [`Registry`] — named counters, gauges and log-bucketed
//!   [`LogHistogram`]s with typed handles.
//! - [`TimeSeriesBuilder`]/[`TimeSeries`] — periodic samples of queue
//!   depth, in-flight batches, per-worker utilization and SLO burn
//!   rate, exported as CSV.
//! - [`EnergyMeter`]/[`EnergyProfile`] — integer-exact energy
//!   integration (milliwatts × nanoseconds = picojoules) over charged
//!   busy spans, exported as counters, series columns and per-worker
//!   power lanes.
//! - [`chrome_trace`] — deterministic Chrome trace-event JSON
//!   (Perfetto-loadable), one track per lane; `PowerSample` events
//!   render as `ph:"C"` counter tracks. [`ChromeWriter`] /
//!   [`chrome_trace_to`] stream the same bytes incrementally into any
//!   `io::Write` sink with bounded memory.
//! - [`SamplingRecorder`]/[`SamplePolicy`] — tail-based trace
//!   sampling: buffer each request's span chain until its terminal
//!   event, then keep it only for always-keep anomaly triggers, the
//!   top-K-slowest reservoir, or a seeded uniform 1-in-N hash. The
//!   all-keep policy is byte-identical to a full trace.
//! - [`FlightRecorder`] — an always-on bounded ring of recent events
//!   that freezes an [`IncidentSnapshot`] when `CircuitOpen` /
//!   `IntegrityFail` fire (the bench layer adds burn-rate alerts),
//!   feeding `incident_<n>.json` bundles with a replay command.
//! - [`prof`] — *host-side* self-observability: wall-clock scoped
//!   timers over the simulator's own hot loops, the per-run
//!   [`OverheadLedger`] (events recorded, bytes written, ns/event on
//!   the recorder path) and the [`Throughput`] meter
//!   (sim-events/sec, req/sec, virtual-seconds per wall-second).
//!   Strictly passive: profiled runs stay bit-identical on the virtual
//!   clock.

pub mod chrome;
pub mod energy;
pub mod event;
pub mod flight;
pub mod histogram;
pub mod prof;
pub mod recorder;
pub mod registry;
pub mod sample;
pub mod series;

pub use chrome::{chrome_trace, chrome_trace_to, ChromeWriter};
pub use energy::{joules, watts, EnergyMeter, EnergyProfile, EnergyTotals, MeterSpan};
pub use event::{Ctx, Event, Lane, Phase, ShedCause};
pub use flight::{FlightConfig, FlightRecorder, IncidentSnapshot};
pub use histogram::LogHistogram;
pub use prof::{
    CountingWrite, OverheadLedger, ProfReport, ProfiledRecorder, Throughput, WriteStats,
};
pub use recorder::{BatchObs, EventLog, GanttRecorder, NullRecorder, Recorder, Tee};
pub use registry::{CounterId, GaugeId, HistogramId, Registry};
pub use sample::{SamplePolicy, SampleStats, SamplingRecorder};
pub use series::{Sample, TimeSeries, TimeSeriesBuilder};
