//! A small metric registry: named counters, gauges and log-bucketed
//! histograms any layer can register against. Registration returns a
//! typed handle; updates through a handle are a single indexed
//! store — no name lookup on the hot path.

use crate::histogram::LogHistogram;
use desim::Duration;
use std::fmt::Write as _;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Named metrics of one run. Names are registered once (re-registering
/// a name returns the existing handle) and reported in registration
/// order, so summaries are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, LogHistogram)>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name.to_string(), LogHistogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    pub fn observe(&mut self, id: HistogramId, d: Duration) {
        self.histograms[id.0].1.record(d);
    }

    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram_of(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The kind a name is already registered as, if any.
    fn kind_of(&self, name: &str) -> Option<&'static str> {
        if self.counters.iter().any(|(n, _)| n == name) {
            return Some("counter");
        }
        if self.gauges.iter().any(|(n, _)| n == name) {
            return Some("gauge");
        }
        if self.histograms.iter().any(|(n, _)| n == name) {
            return Some("histogram");
        }
        None
    }

    /// Fold another shard's registry into this one, the reduction step
    /// of a sharded sweep: counters add, gauges keep the maximum (they
    /// report peaks — queue high-water marks, burn rates — where the
    /// worst shard is the honest fleet answer), histograms merge
    /// bucket-wise (exact, see [`LogHistogram::merge`]). Names unseen
    /// here are appended, so a merge of disjoint registries is a
    /// union; registration order of `self` wins for shared names. A
    /// name registered as different kinds on the two sides fails the
    /// whole merge — checked up front, naming the first offender, so
    /// an `Err` never leaves this registry partially merged.
    pub fn merge(&mut self, other: &Registry) -> Result<(), String> {
        let kinds = other
            .counters
            .iter()
            .map(|(n, _)| (n, "counter"))
            .chain(other.gauges.iter().map(|(n, _)| (n, "gauge")))
            .chain(other.histograms.iter().map(|(n, _)| (n, "histogram")));
        for (name, kind) in kinds {
            if let Some(have) = self.kind_of(name) {
                if have != kind {
                    return Err(format!(
                        "registry merge: metric {name:?}: {kind}, expected {have}"
                    ));
                }
            }
        }
        for (name, v) in &other.counters {
            let id = self.counter(name);
            self.counters[id.0].1 += v;
        }
        for (name, v) in &other.gauges {
            let id = self.gauge(name);
            let cur = &mut self.gauges[id.0].1;
            *cur = cur.max(*v);
        }
        for (name, h) in &other.histograms {
            let id = self.histogram(name);
            self.histograms[id.0].1.merge(h);
        }
        Ok(())
    }

    /// Human-readable run summary: counters, gauges, then histogram
    /// percentile rows, in registration order.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<32} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name:<32} {v:.3}");
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "histogram (ms)", "count", "mean", "p50", "p95", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<32} {:>8} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                    name,
                    h.len(),
                    h.mean().as_millis(),
                    h.quantile(0.50).as_millis(),
                    h.quantile(0.95).as_millis(),
                    h.quantile(0.99).as_millis(),
                    h.max().as_millis(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_typed() {
        let mut r = Registry::new();
        let a = r.counter("requests");
        let b = r.counter("requests");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 4);
        assert_eq!(r.counter_value("requests"), Some(5));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn gauges_hold_last_value() {
        let mut r = Registry::new();
        let g = r.gauge("queue_depth");
        r.set(g, 3.0);
        r.set(g, 7.0);
        assert_eq!(r.gauge_value("queue_depth"), Some(7.0));
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_and_unions_names() {
        let mut a = Registry::new();
        let ca = a.counter("completed");
        a.add(ca, 10);
        let ga = a.gauge("burn.max");
        a.set(ga, 1.5);
        let ha = a.histogram("latency");
        a.observe(ha, Duration::from_millis(2.0));

        let mut b = Registry::new();
        let cb = b.counter("completed");
        b.add(cb, 5);
        let cb2 = b.counter("shed"); // only in b
        b.add(cb2, 3);
        let gb = b.gauge("burn.max");
        b.set(gb, 0.9);
        let hb = b.histogram("latency");
        b.observe(hb, Duration::from_millis(40.0));

        a.merge(&b).expect("shards of one sweep share kinds");
        assert_eq!(a.counter_value("completed"), Some(15));
        assert_eq!(a.counter_value("shed"), Some(3), "unseen names are appended");
        assert_eq!(a.gauge_value("burn.max"), Some(1.5), "gauges keep the peak");
        let h = a.histogram_of("latency").unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.quantile(1.0) >= Duration::from_millis(40.0));
    }

    #[test]
    fn merge_names_the_first_cross_kind_collision_in_one_line() {
        let mut a = Registry::new();
        a.counter("completed");
        a.counter("burn.max");
        let mut b = Registry::new();
        let c = b.counter("completed");
        b.add(c, 5);
        let g = b.gauge("burn.max"); // a counter on the other side
        b.set(g, 1.5);
        b.gauge("queue.peak");
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err, "registry merge: metric \"burn.max\": gauge, expected counter");
        assert_eq!(err.lines().count(), 1, "one line, first offender only");
        // The failed merge left this registry untouched.
        assert_eq!(a.counter_value("completed"), Some(0));
        assert_eq!(a.gauge_value("queue.peak"), None);
    }

    #[test]
    fn histograms_record_and_summarize() {
        let mut r = Registry::new();
        let h = r.histogram("latency");
        for ms in [1.0, 2.0, 100.0] {
            r.observe(h, Duration::from_millis(ms));
        }
        assert_eq!(r.histogram_of("latency").unwrap().len(), 3);
        let s = r.summary();
        assert!(s.contains("latency"), "{s}");
        assert!(s.contains("p99"), "{s}");
    }
}
