//! Chrome trace-event JSON exporter.
//!
//! Emits the JSON Array-with-metadata flavour of the [Trace Event
//! Format] that both `chrome://tracing` and [Perfetto] load directly:
//! one track (`tid`) per lane, complete spans as `ph:"X"` events,
//! instants as `ph:"i"`, and the request context under `args` so the
//! viewer's flow/search tools can follow one `request_id` across
//! tracks. The output is built byte-by-byte from integers only, so two
//! runs of the same seeded config serialize identically.
//!
//! Two entry points share one serializer:
//!
//! - [`ChromeWriter`] streams event-at-a-time into any [`io::Write`]
//!   sink with bounded memory (one scratch row, reused), for runs too
//!   large to buffer;
//! - [`chrome_trace`] buffers the whole document into a `String` by
//!   delegating to the same writer, so the buffered and streamed bytes
//!   are identical by construction.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::event::{Event, Lane, Phase};
use crate::prof::WriteStats;
use crate::recorder::EventLog;
use std::fmt::Write as _;
use std::io;

/// Microseconds with fixed 3-decimal nanosecond remainder — exact and
/// deterministic (no float formatting).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn args_of(ev: &Event) -> String {
    let mut parts = Vec::with_capacity(4);
    if let Some(r) = ev.ctx.request_id {
        parts.push(format!("\"request_id\":{r}"));
    }
    if let Some(b) = ev.ctx.batch_id {
        parts.push(format!("\"batch_id\":{b}"));
    }
    if let Some(w) = ev.ctx.worker {
        parts.push(format!("\"worker\":{w}"));
    }
    if let Some(c) = ev.cause {
        parts.push(format!("\"cause\":\"{}\"", c.name()));
    }
    if let Some(v) = ev.value {
        parts.push(format!("\"mw\":{v}"));
    }
    format!("{{{}}}", parts.join(","))
}

/// Incremental Chrome-trace serializer over any [`io::Write`] sink.
///
/// Construction writes the document header and one metadata row per
/// lane; [`event`](Self::event) appends one row per call through a
/// reused scratch buffer (memory stays bounded by the longest single
/// row, not the run length); [`finish`](Self::finish) closes the JSON
/// and returns the [`WriteStats`] ledger.
pub struct ChromeWriter<W: io::Write> {
    sink: W,
    lanes: Vec<Lane>,
    row: String,
    stats: WriteStats,
}

impl<W: io::Write> ChromeWriter<W> {
    /// Start a trace document over `sink` for the given lane set (track
    /// order and `tid` assignment follow `lanes`; use
    /// [`EventLog::lanes`] for first-appearance order).
    pub fn new(mut sink: W, lanes: &[Lane]) -> io::Result<ChromeWriter<W>> {
        let mut stats = WriteStats::default();
        let mut row = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        row.push_str(
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"ncsw\"}}",
        );
        for (tid, lane) in lanes.iter().enumerate() {
            let _ = write!(
                row,
                ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                lane.name()
            );
            let _ = write!(
                row,
                ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{}}}}}",
                lane.sort_rank()
            );
        }
        stats.peak_buffered = stats.peak_buffered.max(row.len() as u64);
        sink.write_all(row.as_bytes())?;
        stats.bytes += row.len() as u64;
        row.clear();
        Ok(ChromeWriter { sink, lanes: lanes.to_vec(), row, stats })
    }

    /// Append one event row. Events must belong to a lane passed at
    /// construction; an unknown lane is an error (the document header
    /// with its track metadata is already on the wire).
    pub fn event(&mut self, ev: &Event) -> io::Result<()> {
        let tid = self.lanes.iter().position(|&l| l == ev.lane).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("lane {} not declared to ChromeWriter", ev.lane.name()),
            )
        })?;
        let name = ev.phase.name();
        let ts = us(ev.start.nanos());
        let args = args_of(ev);
        self.row.clear();
        if ev.phase == Phase::PowerSample {
            // Counter event: Perfetto keys counter tracks by (pid, name),
            // so the lane's own name doubles as the counter name.
            let _ = write!(
                self.row,
                ",\n{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                 \"name\":\"{}\",\"args\":{args}}}",
                ev.lane.name()
            );
        } else {
            match ev.end {
                Some(end) => {
                    let dur = us(end.nanos() - ev.start.nanos());
                    let _ = write!(
                        self.row,
                        ",\n{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                         \"dur\":{dur},\"name\":\"{name}\",\"args\":{args}}}"
                    );
                }
                None => {
                    let _ = write!(
                        self.row,
                        ",\n{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                         \"s\":\"t\",\"name\":\"{name}\",\"args\":{args}}}"
                    );
                }
            }
        }
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.row.len() as u64);
        self.sink.write_all(self.row.as_bytes())?;
        self.stats.bytes += self.row.len() as u64;
        Ok(())
    }

    /// Append a `sampling` metadata row carrying the tail-sampling
    /// keep/drop ledger, so `validate-trace` can report what a sampled
    /// trace kept. Only sampled documents carry this row — all-keep and
    /// unsampled exports must stay byte-identical.
    pub fn sampling(&mut self, stats: &crate::sample::SampleStats) -> io::Result<()> {
        self.row.clear();
        let _ = write!(
            self.row,
            ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"sampling\",\"args\":{{\
             \"spec\":\"{}\",\"requests_seen\":{},\"requests_kept\":{},\
             \"slo\":{},\"shed\":{},\"fault\":{},\"hedge\":{},\"quarantine\":{},\
             \"uniform\":{},\"reservoir\":{},\"unterminated\":{},\
             \"events_seen\":{},\"events_kept\":{}}}}}",
            stats.spec,
            stats.requests_seen,
            stats.requests_kept,
            stats.slo,
            stats.shed,
            stats.fault,
            stats.hedge,
            stats.quarantine,
            stats.uniform,
            stats.reservoir,
            stats.unterminated,
            stats.events_seen,
            stats.events_kept,
        );
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.row.len() as u64);
        self.sink.write_all(self.row.as_bytes())?;
        self.stats.bytes += self.row.len() as u64;
        Ok(())
    }

    /// Close the JSON document, flush, and return the write ledger.
    pub fn finish(mut self) -> io::Result<WriteStats> {
        let tail = "\n]}\n";
        self.sink.write_all(tail.as_bytes())?;
        self.stats.bytes += tail.len() as u64;
        self.sink.flush()?;
        Ok(self.stats)
    }
}

/// Stream `log` as a Chrome trace-event JSON document into `sink`.
pub fn chrome_trace_to<W: io::Write>(log: &EventLog, sink: W) -> io::Result<WriteStats> {
    let mut w = ChromeWriter::new(sink, &log.lanes())?;
    for ev in log.events() {
        w.event(ev)?;
    }
    w.finish()
}

/// Serialize `log` as a Chrome trace-event JSON document.
///
/// Buffered convenience over [`chrome_trace_to`]: the bytes are
/// produced by the same streaming writer.
pub fn chrome_trace(log: &EventLog) -> String {
    let mut buf = Vec::new();
    chrome_trace_to(log, &mut buf).expect("Vec<u8> sink cannot fail");
    String::from_utf8(buf).expect("chrome trace is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Ctx, Lane, Phase};
    use crate::recorder::Recorder;
    use desim::SimTime;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(1_500), Ctx::request(0)));
        log.record(Event::span(
            Phase::Exec,
            Lane::Vpu { worker: 0, dev: 2 },
            SimTime(2_000),
            SimTime(102_500),
            Ctx::request(0).with_batch(1).with_worker(0),
        ));
        log
    }

    #[test]
    fn exports_tracks_spans_and_instants() {
        let json = chrome_trace(&sample_log());
        assert!(json.contains("\"displayTimeUnit\":\"ms\""), "{json}");
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"server\"}"), "{json}");
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"w0.vpu2\"}"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"ts\":2.000,\"dur\":100.500"), "{json}");
        assert!(json.contains("\"args\":{\"request_id\":0,\"batch_id\":1,\"worker\":0}"), "{json}");
    }

    #[test]
    fn shed_cause_lands_in_args() {
        use crate::event::ShedCause;
        let mut log = EventLog::new();
        log.record(
            Event::instant(Phase::Shed, Lane::Server, SimTime(10), Ctx::request(3))
                .with_cause(ShedCause::Deadline),
        );
        let json = chrome_trace(&log);
        assert!(json.contains("\"args\":{\"request_id\":3,\"cause\":\"deadline\"}"), "{json}");
    }

    #[test]
    fn power_samples_export_as_counter_events() {
        let mut log = EventLog::new();
        log.record(Event::counter(Lane::Power(0), SimTime(0), 172, Ctx::NONE));
        log.record(Event::counter(Lane::Power(0), SimTime(2_000), 900, Ctx::NONE.with_batch(4)));
        let json = chrome_trace(&log);
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"w0.power\"}"), "{json}");
        assert!(
            json.contains("\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"name\":\"w0.power\",\"args\":{\"mw\":172}"),
            "{json}"
        );
        assert!(
            json.contains(
                "\"ts\":2.000,\"name\":\"w0.power\",\"args\":{\"batch_id\":4,\"mw\":900}"
            ),
            "{json}"
        );
    }

    #[test]
    fn timestamps_are_exact_microseconds() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(12_345_678), "12345.678");
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(chrome_trace(&sample_log()), chrome_trace(&sample_log()));
    }

    #[test]
    fn streaming_event_at_a_time_matches_buffered() {
        let log = sample_log();
        let buffered = chrome_trace(&log);
        // Drive the writer one event per call, through a sink that only
        // accepts one byte per write() to exercise short writes too.
        struct OneByte(Vec<u8>);
        impl std::io::Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = OneByte(Vec::new());
        let mut w = ChromeWriter::new(&mut sink, &log.lanes()).unwrap();
        for ev in log.events() {
            w.event(ev).unwrap();
        }
        let stats = w.finish().unwrap();
        let streamed = String::from_utf8(sink.0).unwrap();
        assert_eq!(streamed, buffered);
        assert_eq!(stats.bytes, buffered.len() as u64);
        assert!(stats.peak_buffered > 0);
        assert!(stats.peak_buffered < buffered.len() as u64);
    }

    #[test]
    fn sampling_metadata_row_round_trips_the_ledger() {
        use crate::sample::SampleStats;
        let log = sample_log();
        let stats = SampleStats {
            spec: "1-in-100".into(),
            requests_seen: 200,
            requests_kept: 9,
            slo: 1,
            shed: 2,
            uniform: 3,
            reservoir: 3,
            events_seen: 1000,
            events_kept: 45,
            ..SampleStats::default()
        };
        let mut buf = Vec::new();
        let mut w = ChromeWriter::new(&mut buf, &log.lanes()).unwrap();
        w.sampling(&stats).unwrap();
        for ev in log.events() {
            w.event(ev).unwrap();
        }
        w.finish().unwrap();
        let json = String::from_utf8(buf).unwrap();
        assert!(json.contains("\"name\":\"sampling\",\"args\":{\"spec\":\"1-in-100\""), "{json}");
        assert!(json.contains("\"requests_seen\":200,\"requests_kept\":9"), "{json}");
        assert!(json.contains("\"events_seen\":1000,\"events_kept\":45"), "{json}");
    }

    #[test]
    fn unknown_lane_is_an_error() {
        let mut w = ChromeWriter::new(Vec::new(), &[Lane::Server]).unwrap();
        let err = w
            .event(&Event::instant(Phase::Arrive, Lane::Queue, SimTime(0), Ctx::NONE))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
