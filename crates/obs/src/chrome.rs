//! Chrome trace-event JSON exporter.
//!
//! Emits the JSON Array-with-metadata flavour of the [Trace Event
//! Format] that both `chrome://tracing` and [Perfetto] load directly:
//! one track (`tid`) per lane, complete spans as `ph:"X"` events,
//! instants as `ph:"i"`, and the request context under `args` so the
//! viewer's flow/search tools can follow one `request_id` across
//! tracks. The output is built byte-by-byte from integers only, so two
//! runs of the same seeded config serialize identically.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::event::{Event, Phase};
use crate::recorder::EventLog;
use std::fmt::Write as _;

/// Microseconds with fixed 3-decimal nanosecond remainder — exact and
/// deterministic (no float formatting).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn args_of(ev: &Event) -> String {
    let mut parts = Vec::with_capacity(4);
    if let Some(r) = ev.ctx.request_id {
        parts.push(format!("\"request_id\":{r}"));
    }
    if let Some(b) = ev.ctx.batch_id {
        parts.push(format!("\"batch_id\":{b}"));
    }
    if let Some(w) = ev.ctx.worker {
        parts.push(format!("\"worker\":{w}"));
    }
    if let Some(c) = ev.cause {
        parts.push(format!("\"cause\":\"{}\"", c.name()));
    }
    if let Some(v) = ev.value {
        parts.push(format!("\"mw\":{v}"));
    }
    format!("{{{}}}", parts.join(","))
}

/// Serialize `log` as a Chrome trace-event JSON document.
pub fn chrome_trace(log: &EventLog) -> String {
    let lanes = log.lanes();
    let tid_of = |lane| lanes.iter().position(|&l| l == lane).unwrap();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"ncsw\"}}",
    );
    for (tid, lane) in lanes.iter().enumerate() {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            lane.name()
        );
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{}}}}}",
            lane.sort_rank()
        );
    }
    for ev in log.events() {
        let tid = tid_of(ev.lane);
        let name = ev.phase.name();
        let ts = us(ev.start.nanos());
        let args = args_of(ev);
        if ev.phase == Phase::PowerSample {
            // Counter event: Perfetto keys counter tracks by (pid, name),
            // so the lane's own name doubles as the counter name.
            let _ = write!(
                out,
                ",\n{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                 \"name\":\"{}\",\"args\":{args}}}",
                ev.lane.name()
            );
            continue;
        }
        match ev.end {
            Some(end) => {
                let dur = us(end.nanos() - ev.start.nanos());
                let _ = write!(
                    out,
                    ",\n{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"dur\":{dur},\"name\":\"{name}\",\"args\":{args}}}"
                );
            }
            None => {
                let _ = write!(
                    out,
                    ",\n{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"s\":\"t\",\"name\":\"{name}\",\"args\":{args}}}"
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Ctx, Lane, Phase};
    use crate::recorder::Recorder;
    use desim::SimTime;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(1_500), Ctx::request(0)));
        log.record(Event::span(
            Phase::Exec,
            Lane::Vpu { worker: 0, dev: 2 },
            SimTime(2_000),
            SimTime(102_500),
            Ctx::request(0).with_batch(1).with_worker(0),
        ));
        log
    }

    #[test]
    fn exports_tracks_spans_and_instants() {
        let json = chrome_trace(&sample_log());
        assert!(json.contains("\"displayTimeUnit\":\"ms\""), "{json}");
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"server\"}"), "{json}");
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"w0.vpu2\"}"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"ts\":2.000,\"dur\":100.500"), "{json}");
        assert!(json.contains("\"args\":{\"request_id\":0,\"batch_id\":1,\"worker\":0}"), "{json}");
    }

    #[test]
    fn shed_cause_lands_in_args() {
        use crate::event::ShedCause;
        let mut log = EventLog::new();
        log.record(
            Event::instant(Phase::Shed, Lane::Server, SimTime(10), Ctx::request(3))
                .with_cause(ShedCause::Deadline),
        );
        let json = chrome_trace(&log);
        assert!(json.contains("\"args\":{\"request_id\":3,\"cause\":\"deadline\"}"), "{json}");
    }

    #[test]
    fn power_samples_export_as_counter_events() {
        let mut log = EventLog::new();
        log.record(Event::counter(Lane::Power(0), SimTime(0), 172, Ctx::NONE));
        log.record(Event::counter(Lane::Power(0), SimTime(2_000), 900, Ctx::NONE.with_batch(4)));
        let json = chrome_trace(&log);
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"w0.power\"}"), "{json}");
        assert!(
            json.contains("\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"name\":\"w0.power\",\"args\":{\"mw\":172}"),
            "{json}"
        );
        assert!(
            json.contains(
                "\"ts\":2.000,\"name\":\"w0.power\",\"args\":{\"batch_id\":4,\"mw\":900}"
            ),
            "{json}"
        );
    }

    #[test]
    fn timestamps_are_exact_microseconds() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(12_345_678), "12345.678");
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(chrome_trace(&sample_log()), chrome_trace(&sample_log()));
    }
}
