//! Host-side self-observability: wall-clock profiling of the simulator
//! itself.
//!
//! Everything else in `ncsw-obs` observes the *simulated* fleet on the
//! virtual clock; this module observes the *simulator* on the real one,
//! so hot-loop refactors (ROADMAP "million-request sweeps") have a
//! measurement substrate to be judged against. Three pieces:
//!
//! - **Scoped timers** — [`start`]/[`stop`] enable a thread-local
//!   profiler; [`scope`] returns an RAII guard over [`Instant`] that
//!   charges its wall time to a hierarchical scope (nesting follows
//!   guard lifetimes). When profiling is off, `scope` is one
//!   thread-local boolean load: no clock read, no allocation, and —
//!   crucially — no effect on any virtual-clock output either way.
//! - **Counters and the overhead ledger** — [`add`] accumulates named
//!   counters (events recorded, bytes written); [`OverheadLedger`]
//!   summarizes what observing a run cost (events, bytes, ns/event on
//!   the recorder path, peak buffered bytes), and
//!   [`ProfiledRecorder`] wraps any [`Recorder`] to meter exactly the
//!   emission path.
//! - **The throughput meter** — [`Throughput`] relates virtual progress
//!   (sim events, simulated requests, virtual seconds) to wall time:
//!   sim-events/sec, simulated-requests/sec and virtual-seconds per
//!   wall-second, the `BENCH_sim.json` axes.
//!
//! The profiler is strictly *passive*: it never touches virtual time,
//! RNG streams or any recorded event, so a profiled run is bit-identical
//! to an unprofiled one (enforced by `tests/determinism.rs`).

use crate::recorder::Recorder;
use crate::Event;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::io;
use std::time::Instant;

// ---------------------------------------------------------------------
// Thread-local scoped timers
// ---------------------------------------------------------------------

struct Node {
    name: &'static str,
    parent: Option<usize>,
    calls: u64,
    wall_ns: u64,
}

#[derive(Default)]
struct ProfState {
    nodes: Vec<Node>,
    stack: Vec<usize>,
    counters: Vec<(&'static str, u64)>,
    started: Option<Instant>,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<ProfState> = RefCell::new(ProfState::default());
}

/// Whether the profiler is collecting on this thread.
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Reset and start collecting on this thread.
pub fn start() {
    STATE.with(|s| {
        *s.borrow_mut() = ProfState { started: Some(Instant::now()), ..ProfState::default() }
    });
    ENABLED.with(|e| e.set(true));
}

/// Stop collecting and return everything measured since [`start`].
/// Returns an empty report if the profiler was never started.
pub fn stop() -> ProfReport {
    ENABLED.with(|e| e.set(false));
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let total_ns = st.started.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let report = ProfReport {
            total_wall_ns: total_ns,
            scopes: render_nodes(&st.nodes),
            counters: st.counters.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        };
        *st = ProfState::default();
        report
    })
}

fn render_nodes(nodes: &[Node]) -> Vec<ProfScope> {
    // Emit in depth-first order (children directly under their parent),
    // preserving first-use order among siblings.
    fn walk(nodes: &[Node], parent: Option<usize>, depth: usize, out: &mut Vec<ProfScope>) {
        for (i, n) in nodes.iter().enumerate() {
            if n.parent == parent {
                out.push(ProfScope {
                    name: n.name.to_string(),
                    depth,
                    calls: n.calls,
                    wall_ns: n.wall_ns,
                });
                walk(nodes, Some(i), depth + 1, out);
            }
        }
    }
    let mut out = Vec::with_capacity(nodes.len());
    walk(nodes, None, 0, &mut out);
    out
}

/// Open a named scope; its wall time is charged when the guard drops.
/// Scopes nest: a scope opened while another guard is alive becomes its
/// child. Near-zero cost when profiling is off (one boolean load).
#[inline]
pub fn scope(name: &'static str) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard { start: None };
    }
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let parent = st.stack.last().copied();
        let idx =
            st.nodes.iter().position(|n| n.name == name && n.parent == parent).unwrap_or_else(
                || {
                    st.nodes.push(Node { name, parent, calls: 0, wall_ns: 0 });
                    st.nodes.len() - 1
                },
            );
        st.stack.push(idx);
    });
    ScopeGuard { start: Some(Instant::now()) }
}

/// RAII guard returned by [`scope`].
#[must_use = "a dropped guard closes its scope immediately"]
pub struct ScopeGuard {
    start: Option<Instant>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos() as u64;
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            if let Some(idx) = st.stack.pop() {
                st.nodes[idx].calls += 1;
                st.nodes[idx].wall_ns += elapsed;
            }
        });
    }
}

/// Accumulate `delta` into the named counter. No-op when profiling is
/// off.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        match st.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => st.counters.push((name, delta)),
        }
    });
}

/// Current value of counter `name` mid-window (0 when the profiler is
/// off or the counter never bumped) — lets a ledger read the recorder
/// counters without closing the profiling window.
pub fn counter_now(name: &str) -> u64 {
    if !enabled() {
        return 0;
    }
    STATE.with(|s| s.borrow().counters.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v))
}

/// One scope of a [`ProfReport`], in depth-first tree order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfScope {
    pub name: String,
    /// Nesting depth (0 = root scope).
    pub depth: usize,
    pub calls: u64,
    pub wall_ns: u64,
}

/// Everything one [`start`]/[`stop`] window measured.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfReport {
    /// Wall time between [`start`] and [`stop`].
    pub total_wall_ns: u64,
    pub scopes: Vec<ProfScope>,
    pub counters: Vec<(String, u64)>,
}

impl ProfReport {
    /// Total wall nanoseconds charged to `name` (summed over every
    /// position it appears at in the scope tree).
    pub fn scope_ns(&self, name: &str) -> u64 {
        self.scopes.iter().filter(|s| s.name == name).map(|s| s.wall_ns).sum()
    }

    /// Value of counter `name` (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v)
    }

    /// Human-readable profile: indented scope tree with calls, total
    /// wall time, ns/call and share of the profiled window, then the
    /// counters.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "profile: {:.3} ms wall total", self.total_wall_ns as f64 / 1e6);
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>12} {:>10} {:>6}",
            "scope", "calls", "wall ms", "ns/call", "share"
        );
        for s in &self.scopes {
            let per = if s.calls > 0 { s.wall_ns as f64 / s.calls as f64 } else { 0.0 };
            let share = if self.total_wall_ns > 0 {
                s.wall_ns as f64 / self.total_wall_ns as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<32} {:>10} {:>12.3} {:>10.0} {:>5.1}%",
                format!("{}{}", "  ".repeat(s.depth), s.name),
                s.calls,
                s.wall_ns as f64 / 1e6,
                per,
                share
            );
        }
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        out
    }
}

// ---------------------------------------------------------------------
// Recorder metering
// ---------------------------------------------------------------------

/// Counter names [`ProfiledRecorder`] reports through [`add`] when it
/// drops: events forwarded and wall nanoseconds spent inside the
/// wrapped recorder's `record` calls.
pub const RECORDER_EVENTS: &str = "recorder.events";
pub const RECORDER_NS: &str = "recorder.ns";

/// Wraps a [`Recorder`] and meters exactly the emission path: how many
/// events passed through and how much wall time their `record` calls
/// cost. Totals land in the thread-local profiler (counters
/// [`RECORDER_EVENTS`] / [`RECORDER_NS`]) when the wrapper drops.
pub struct ProfiledRecorder<'a> {
    inner: &'a mut dyn Recorder,
    events: u64,
    wall_ns: u64,
}

impl<'a> ProfiledRecorder<'a> {
    pub fn new(inner: &'a mut dyn Recorder) -> ProfiledRecorder<'a> {
        ProfiledRecorder { inner, events: 0, wall_ns: 0 }
    }
}

impl Recorder for ProfiledRecorder<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&mut self, ev: Event) {
        let t = Instant::now();
        self.inner.record(ev);
        self.wall_ns += t.elapsed().as_nanos() as u64;
        self.events += 1;
    }
}

impl Drop for ProfiledRecorder<'_> {
    fn drop(&mut self) {
        add(RECORDER_EVENTS, self.events);
        add(RECORDER_NS, self.wall_ns);
    }
}

// ---------------------------------------------------------------------
// Write accounting
// ---------------------------------------------------------------------

/// What a streaming exporter wrote: total bytes pushed to the sink and
/// the high-water mark of its internal scratch buffer — the bound on
/// exporter memory, which stays a few hundred bytes regardless of how
/// many events stream through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteStats {
    pub bytes: u64,
    pub peak_buffered: u64,
}

/// An [`io::Write`] adapter that counts the bytes flowing through it
/// (conservation checks: bytes counted == file size on disk).
pub struct CountingWrite<W: io::Write> {
    inner: W,
    written: u64,
}

impl<W: io::Write> CountingWrite<W> {
    pub fn new(inner: W) -> CountingWrite<W> {
        CountingWrite { inner, written: 0 }
    }

    pub fn written(&self) -> u64 {
        self.written
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> io::Write for CountingWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------
// Overhead ledger + throughput meter
// ---------------------------------------------------------------------

/// What observing a run cost, per run. The virtual-clock fields
/// (events, bytes) are deterministic; the wall-clock fields are zero
/// unless the run was profiled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadLedger {
    /// Events the recorder captured.
    pub events_recorded: u64,
    /// Bytes the Chrome-trace exporter wrote.
    pub trace_bytes: u64,
    /// Bytes the time-series CSV exporter wrote.
    pub series_bytes: u64,
    /// Largest transient exporter scratch buffer (bounded memory proof:
    /// this stays O(one row/event) however long the run).
    pub peak_buffered_bytes: u64,
    /// Wall nanoseconds spent inside `Recorder::record` (0 unprofiled).
    pub recorder_ns: u64,
}

impl OverheadLedger {
    /// Wall nanoseconds per recorded event on the recorder path.
    pub fn ns_per_event(&self) -> f64 {
        if self.events_recorded == 0 {
            0.0
        } else {
            self.recorder_ns as f64 / self.events_recorded as f64
        }
    }

    pub fn render(&self) -> String {
        format!(
            "obs overhead: {} events recorded, {} trace B + {} series B written \
             (peak buffer {} B), recorder {:.0} ns/event",
            self.events_recorded,
            self.trace_bytes,
            self.series_bytes,
            self.peak_buffered_bytes,
            self.ns_per_event()
        )
    }
}

/// Relates virtual progress to wall time — the sim-throughput axes of
/// `BENCH_sim.json`. Virtual fields are deterministic; `wall_ns` is
/// machine-dependent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Simulator loop events processed (arrivals, dispatches,
    /// controller ticks — every decision point of the event loop).
    pub sim_events: u64,
    /// Requests the run simulated (completed + shed).
    pub requests: u64,
    /// Virtual nanoseconds the run covered.
    pub virtual_ns: u64,
    /// Wall nanoseconds the run took.
    pub wall_ns: u64,
}

impl Throughput {
    fn per_sec(&self, count: u64) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            count as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// Simulator events processed per wall second.
    pub fn events_per_sec(&self) -> f64 {
        self.per_sec(self.sim_events)
    }

    /// Requests simulated per wall second.
    pub fn req_per_sec(&self) -> f64 {
        self.per_sec(self.requests)
    }

    /// Virtual seconds simulated per wall second (>1 = faster than
    /// real time).
    pub fn virtual_per_wall(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.virtual_ns as f64 / self.wall_ns as f64
        }
    }

    pub fn render(&self) -> String {
        format!(
            "sim throughput: {:.0} events/s, {:.0} req/s, {:.1}x virtual/wall \
             ({} events, {} req, {:.1} virtual ms in {:.1} wall ms)",
            self.events_per_sec(),
            self.req_per_sec(),
            self.virtual_per_wall(),
            self.sim_events,
            self.requests,
            self.virtual_ns as f64 / 1e6,
            self.wall_ns as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Ctx, Lane, Phase};
    use crate::recorder::EventLog;
    use desim::SimTime;
    use std::io::Write as _;

    #[test]
    fn disabled_scopes_record_nothing() {
        assert!(!enabled());
        {
            let _g = scope("loop");
            let _h = scope("inner");
            add("events", 5);
        }
        let r = stop();
        assert_eq!(r.scopes, Vec::new());
        assert_eq!(r.counters, Vec::new());
    }

    #[test]
    fn scopes_nest_by_guard_lifetime() {
        start();
        {
            let _a = scope("loop");
            {
                let _b = scope("plan");
            }
            {
                let _b = scope("plan");
            }
            {
                let _c = scope("dispatch");
            }
        }
        {
            let _a = scope("loop");
        }
        add("events", 3);
        add("events", 4);
        let r = stop();
        assert!(!enabled());
        let shape: Vec<(String, usize, u64)> =
            r.scopes.iter().map(|s| (s.name.clone(), s.depth, s.calls)).collect();
        assert_eq!(
            shape,
            vec![
                ("loop".to_string(), 0, 2),
                ("plan".to_string(), 1, 2),
                ("dispatch".to_string(), 1, 1),
            ]
        );
        assert_eq!(r.counter("events"), 7);
        assert_eq!(r.counter("absent"), 0);
        // The render names every scope with indentation.
        let txt = r.render();
        assert!(txt.contains("loop"), "{txt}");
        assert!(txt.contains("  plan"), "{txt}");
        assert!(txt.contains("counter events = 7"), "{txt}");
        // stop() resets: a second stop is empty.
        assert_eq!(stop().scopes.len(), 0);
    }

    #[test]
    fn same_name_under_different_parents_is_two_scopes() {
        start();
        {
            let _a = scope("export");
            let _w = scope("write");
        }
        {
            let _b = scope("validate");
            let _w = scope("write");
        }
        let r = stop();
        let writes: Vec<usize> =
            r.scopes.iter().filter(|s| s.name == "write").map(|s| s.depth).collect();
        assert_eq!(writes, vec![1, 1]);
        assert_eq!(r.scopes.len(), 4);
        assert_eq!(
            r.scope_ns("write"),
            r.scopes.iter().filter(|s| s.name == "write").map(|s| s.wall_ns).sum::<u64>()
        );
    }

    #[test]
    fn profiled_recorder_meters_the_emission_path() {
        start();
        let mut log = EventLog::new();
        {
            let mut pr = ProfiledRecorder::new(&mut log);
            assert!(pr.enabled());
            for i in 0..10 {
                pr.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(i), Ctx::NONE));
            }
        }
        let r = stop();
        assert_eq!(log.len(), 10);
        assert_eq!(r.counter(RECORDER_EVENTS), 10);
        // Wall time is nondeterministic but must have been accumulated
        // alongside the events (ns can legitimately be 0 on a coarse
        // clock, so only the event count is asserted exactly).
        assert!(r.counters.iter().any(|(n, _)| n == RECORDER_NS));
    }

    #[test]
    fn counting_write_counts_exactly() {
        let mut w = CountingWrite::new(Vec::new());
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        assert_eq!(w.written(), 11);
        assert_eq!(w.into_inner(), b"hello world".to_vec());
    }

    #[test]
    fn ledger_and_throughput_math() {
        let l = OverheadLedger {
            events_recorded: 4,
            trace_bytes: 100,
            series_bytes: 50,
            peak_buffered_bytes: 32,
            recorder_ns: 400,
        };
        assert_eq!(l.ns_per_event(), 100.0);
        assert_eq!(OverheadLedger::default().ns_per_event(), 0.0);
        let t = Throughput {
            sim_events: 2_000,
            requests: 500,
            virtual_ns: 4e9 as u64,
            wall_ns: 1e9 as u64,
        };
        assert_eq!(t.events_per_sec(), 2_000.0);
        assert_eq!(t.req_per_sec(), 500.0);
        assert_eq!(t.virtual_per_wall(), 4.0);
        assert_eq!(Throughput::default().events_per_sec(), 0.0);
        assert!(t.render().contains("4.0x virtual/wall"), "{}", t.render());
    }
}
