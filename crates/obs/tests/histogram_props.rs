//! Property tests for [`ncsw_obs::LogHistogram`] against exact
//! quantiles of the sorted sample set.
//!
//! The histogram's contract: quantiles never under-state a latency
//! (they report a bucket upper bound), and with 32 sub-buckets per
//! octave the over-statement is bounded by ~3% (one bucket width,
//! `exact/32`, plus 1 ns in the linear region).

use desim::Duration;
use ncsw_obs::LogHistogram;
use proptest::prelude::*;

/// Exact quantile matching the histogram's rank rule: the smallest
/// value below which at least `ceil(q * n)` (min 1) samples fall.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

fn build(samples: &[(u32, u64)]) -> (LogHistogram, Vec<u64>) {
    let mut h = LogHistogram::new();
    let mut ns: Vec<u64> = Vec::with_capacity(samples.len());
    for &(exp, mantissa) in samples {
        // mantissa << exp spans the full log range (up to ~2^50 ns,
        // about 13 days) without overflow.
        let v = mantissa << exp;
        h.record(Duration::from_nanos(v));
        ns.push(v);
    }
    ns.sort_unstable();
    (h, ns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_bracket_the_exact_value(
        samples in prop::collection::vec((0u32..40, 1u64..1024), 1..200),
        q in 0.0f64..1.0,
    ) {
        let (h, sorted) = build(&samples);
        let exact = exact_quantile(&sorted, q);
        let got = h.quantile(q).nanos();
        prop_assert!(got >= exact, "q{q}: {got} understates exact {exact}");
        prop_assert!(
            got <= exact + exact / 32 + 1,
            "q{q}: {got} overstates exact {exact} by more than a bucket"
        );
    }

    #[test]
    fn quantiles_are_monotone_and_capped_at_max(
        samples in prop::collection::vec((0u32..40, 1u64..1024), 1..100),
    ) {
        let (h, sorted) = build(&samples);
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).nanos();
            prop_assert!(v >= last, "quantile not monotone at q{q}");
            last = v;
        }
        prop_assert_eq!(h.quantile(1.0).nanos(), *sorted.last().unwrap());
        prop_assert_eq!(h.max().nanos(), *sorted.last().unwrap());
    }

    #[test]
    fn count_and_mean_are_exact(
        samples in prop::collection::vec((0u32..40, 1u64..1024), 1..100),
    ) {
        let (h, sorted) = build(&samples);
        prop_assert_eq!(h.len(), sorted.len() as u64);
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        prop_assert_eq!(h.mean().nanos(), (sum / sorted.len() as u128) as u64);
    }
}
