//! `ncsw-ctrl` — closed-loop autoscaling policies on the virtual clock.
//!
//! The serving fleet (ncsw-serve) provisions for peak, but E19 showed
//! idle islands charging up to ~45% of fleet energy at 0.2x load:
//! headroom costs joules whether or not traffic needs it. This crate is
//! the *decision* half of the loop that reclaims it. A
//! [`ScalingPolicy`] consumes a [`ScaleSignals`] snapshot each
//! controller tick — queue depth, two-window SLO burn rate, shed rate,
//! the observed arrival rate, and the live/provisioning/gated split of
//! the elastic VPU sticks — and answers with a [`ScaleDecision`]. The
//! *actuation* half (draining sticks, power-gating them, paying the
//! provisioning delay on scale-up) lives in `ncsw-serve`, which keeps
//! this crate a pure, RNG-free library: same signals in, same decision
//! out, every time.
//!
//! Three policies ship behind the trait, deliberately ordered by how
//! much foresight they are allowed:
//!
//! * [`Reactive`] — sees only the trailing window. Burn-rate
//!   thresholds with hysteresis and a cooldown; drains one stick at a
//!   time, scales up eagerly, and spins up replacements when circuit
//!   breakers stay open (a long `ncsw-faults` outage).
//! * [`Predictive`] — primed with the full arrival trace, looks ahead
//!   a sliding window and provisions for the demand in it, plus one
//!   spare stick for forecast error.
//! * [`Oracle`] — the offline upper bound: knows the whole trace,
//!   gates from the epoch, and tracks the demand curve with exactly
//!   the provisioning lead time and no spare headroom.

use desim::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Everything a policy may look at when deciding, sampled by the
/// serve-side controller at one tick. All rates are per second of
/// virtual time; stick counts refer to the *elastic* pool only.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSignals {
    /// The tick instant.
    pub now: SimTime,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Configured admission queue capacity.
    pub queue_capacity: usize,
    /// SLO burn rate over the fast window (mean fraction of completions
    /// missing the SLO — same semantics as `ncsw-analyze`'s alerts).
    pub fast_burn: f64,
    /// SLO burn rate over the slow window.
    pub slow_burn: f64,
    /// Fraction of window arrivals shed.
    pub shed_rate: f64,
    /// Observed arrival rate over the trailing window.
    pub arrival_rps: f64,
    /// Elastic sticks currently live (dispatchable).
    pub live: usize,
    /// Elastic sticks paying the provisioning delay.
    pub provisioning: usize,
    /// Elastic sticks power-gated.
    pub gated: usize,
    /// Live workers whose circuit breaker is currently open — the
    /// outage signal replacements react to.
    pub open_circuits: usize,
    /// Live workers quarantined as fail-slow by the serve-side gray
    /// defenses. Quarantined sticks are routed around, so like open
    /// circuits they are committed capacity the dispatcher cannot use.
    pub quarantined: usize,
    /// Nameplate capacity of one elastic stick.
    pub stick_rps: f64,
    /// Nameplate capacity of the always-on (non-elastic) workers.
    pub base_rps: f64,
}

/// What a policy wants done to the elastic pool this tick. `Up` powers
/// on gated sticks (they become usable after the provisioning delay);
/// `Down` drains live sticks (in-flight batches finish, then the stick
/// power-gates). The actuator clamps both to what the pool allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDecision {
    Hold,
    Up(usize),
    Down(usize),
}

/// Offline context handed to [`ScalingPolicy::prime`] before the run:
/// the arrival trace (for lookahead policies) and the fleet constants
/// every policy needs to turn a rate into a stick count.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimeContext {
    /// Virtual instant of the first tick.
    pub epoch: SimTime,
    /// Controller tick interval.
    pub tick: Duration,
    /// Scale-up provisioning delay.
    pub provision_delay: Duration,
    /// Nameplate capacity of one elastic stick.
    pub stick_rps: f64,
    /// Nameplate capacity of the always-on workers.
    pub base_rps: f64,
    /// Size of the elastic pool.
    pub total_sticks: usize,
    /// Floor on live + provisioning sticks the actuator enforces.
    pub min_live: usize,
}

/// One autoscaling policy. Implementations must be deterministic and
/// RNG-free: the serving loop's reproducibility guarantees extend to
/// autoscaled runs only because the controller is a pure function of
/// the (seeded, virtual-time) signals.
pub trait ScalingPolicy {
    /// Stable name, used in reports and the CLI.
    fn name(&self) -> &'static str;

    /// Called once before the run with the full arrival trace. The
    /// reactive policy ignores it; the predictive and oracle policies
    /// keep what foresight they are allowed.
    fn prime(&mut self, _arrivals: &[SimTime], _ctx: &PrimeContext) {}

    /// Called at every controller tick.
    fn decide(&mut self, signals: &ScaleSignals) -> ScaleDecision;
}

/// Sticks needed to serve `rate_rps` on top of the always-on base at
/// the given utilization target. The shared rate→capacity conversion
/// all three policies use, so their orderings come from *foresight and
/// headroom*, not from accounting differences.
pub fn required_sticks(rate_rps: f64, base_rps: f64, stick_rps: f64, util_target: f64) -> usize {
    let residual = (rate_rps - base_rps).max(0.0);
    if residual == 0.0 || stick_rps <= 0.0 || util_target <= 0.0 {
        return 0;
    }
    (residual / (stick_rps * util_target)).ceil() as usize
}

/// Count arrivals in `[from, to)` of a sorted arrival trace.
fn arrivals_in(arrivals: &[SimTime], from: SimTime, to: SimTime) -> usize {
    let lo = arrivals.partition_point(|&a| a < from);
    let hi = arrivals.partition_point(|&a| a < to);
    hi - lo
}

/// Mean arrival rate over `[from, from + window)` of a sorted trace.
fn rate_over(arrivals: &[SimTime], from: SimTime, window: Duration) -> f64 {
    let secs = window.as_secs();
    if secs <= 0.0 {
        return 0.0;
    }
    arrivals_in(arrivals, from, from + window) as f64 / secs
}

// ---------------------------------------------------------------------
// Reactive
// ---------------------------------------------------------------------

/// Knobs for [`Reactive`]. The burn thresholds mirror the two-window
/// alert defaults in `ncsw-analyze` (fast 0.5, slow 0.25); the rest
/// encode classic autoscaler hysteresis: scale up eagerly, scale down
/// one stick at a time after a calm streak, never flap inside the
/// cooldown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReactiveConfig {
    /// Utilization target the observed rate is provisioned against.
    /// Lowest of the three policies — reaction lag is paid for with
    /// standing headroom.
    pub target_util: f64,
    /// Spare sticks on top of the computed requirement.
    pub spare: usize,
    /// Fast-window burn rate that forces a scale-up.
    pub fast_burn: f64,
    /// Slow-window burn rate that forces a scale-up.
    pub slow_burn: f64,
    /// Consecutive calm ticks before one stick may drain.
    pub calm_ticks: u32,
    /// Minimum spacing between scale-downs.
    pub cooldown: Duration,
    /// Consecutive ticks with open circuits before replacements spin up.
    pub outage_ticks: u32,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        ReactiveConfig {
            target_util: 0.55,
            spare: 1,
            fast_burn: 0.5,
            slow_burn: 0.25,
            calm_ticks: 3,
            cooldown: Duration::from_millis(100.0),
            outage_ticks: 2,
        }
    }
}

/// Burn-rate thresholds with hysteresis and cooldown; no foresight.
#[derive(Debug, Clone)]
pub struct Reactive {
    cfg: ReactiveConfig,
    calm: u32,
    cooldown_until: SimTime,
    outage_streak: u32,
}

impl Reactive {
    pub fn new(cfg: ReactiveConfig) -> Reactive {
        Reactive { cfg, calm: 0, cooldown_until: SimTime::ZERO, outage_streak: 0 }
    }
}

impl Default for Reactive {
    fn default() -> Self {
        Reactive::new(ReactiveConfig::default())
    }
}

impl ScalingPolicy for Reactive {
    fn name(&self) -> &'static str {
        "reactive"
    }

    fn decide(&mut self, s: &ScaleSignals) -> ScaleDecision {
        let committed = s.live + s.provisioning;

        // Outage replacement: circuit breakers that stay open — or
        // fail-slow quarantines that persist — across ticks mean
        // capacity the dispatcher cannot use; refill the pool from the
        // gated sticks while the outage lasts.
        let unusable = s.open_circuits + s.quarantined;
        if unusable > 0 {
            self.outage_streak += 1;
            if self.outage_streak >= self.cfg.outage_ticks && s.gated > 0 {
                self.calm = 0;
                return ScaleDecision::Up(unusable.min(s.gated));
            }
        } else {
            self.outage_streak = 0;
        }

        let needed = required_sticks(s.arrival_rps, s.base_rps, s.stick_rps, self.cfg.target_util)
            + self.cfg.spare;

        // Pressure: the SLO is burning on both windows, or admission is
        // about to shed. Scale straight to the requirement.
        let burning = s.fast_burn >= self.cfg.fast_burn && s.slow_burn >= self.cfg.slow_burn;
        let pressured = burning || s.queue_depth * 2 >= s.queue_capacity || s.shed_rate > 0.0;
        if pressured && s.gated > 0 {
            self.calm = 0;
            let want = needed.max(committed + 1) - committed;
            return ScaleDecision::Up(want.min(s.gated));
        }

        if needed > committed {
            self.calm = 0;
            return ScaleDecision::Up((needed - committed).min(s.gated));
        }

        // Calm: drain one stick at a time, after a streak, outside the
        // cooldown — hysteresis against flapping on arrival noise.
        if needed < committed && !pressured {
            self.calm += 1;
            if self.calm >= self.cfg.calm_ticks && s.now >= self.cooldown_until {
                self.calm = 0;
                self.cooldown_until = s.now + self.cfg.cooldown;
                return ScaleDecision::Down(1);
            }
        } else {
            self.calm = 0;
        }
        ScaleDecision::Hold
    }
}

// ---------------------------------------------------------------------
// Predictive
// ---------------------------------------------------------------------

/// Arrival-trace lookahead over a sliding window: provisions for the
/// mean demand across the next `lookahead` of the trace, plus one
/// spare stick. Foresight removes the reaction lag; the spare covers
/// the (deliberate) fact that it plans with a window mean, not the
/// exact curve — short bursts inside the window dilute into the
/// average and are absorbed by the spare and the queue.
#[derive(Debug, Clone, Default)]
pub struct Predictive {
    target_util: f64,
    spare: usize,
    lookahead: Duration,
    arrivals: Vec<SimTime>,
    stick_rps: f64,
    base_rps: f64,
}

impl Predictive {
    pub fn new() -> Predictive {
        Predictive { target_util: 0.7, spare: 1, ..Predictive::default() }
    }
}

impl ScalingPolicy for Predictive {
    fn name(&self) -> &'static str {
        "predictive"
    }

    fn prime(&mut self, arrivals: &[SimTime], ctx: &PrimeContext) {
        self.arrivals = arrivals.to_vec();
        // Look far enough ahead to cover the provisioning delay plus a
        // few ticks of planning slack.
        self.lookahead = ctx.provision_delay + ctx.tick * 4;
        self.stick_rps = ctx.stick_rps;
        self.base_rps = ctx.base_rps;
    }

    fn decide(&mut self, s: &ScaleSignals) -> ScaleDecision {
        let forecast = rate_over(&self.arrivals, s.now, self.lookahead);
        let needed =
            required_sticks(forecast, self.base_rps, self.stick_rps, self.target_util) + self.spare;
        let committed = s.live + s.provisioning;
        match needed.cmp(&committed) {
            std::cmp::Ordering::Greater => ScaleDecision::Up((needed - committed).min(s.gated)),
            std::cmp::Ordering::Less => ScaleDecision::Down(committed - needed),
            std::cmp::Ordering::Equal => ScaleDecision::Hold,
        }
    }
}

// ---------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------

/// The offline upper bound: a pass over the full trace with perfect
/// knowledge. At each tick it holds exactly the sticks the next
/// `tick + provision_delay` of real arrivals require — just enough
/// foresight that every scale-up lands before the load it serves — at
/// a higher utilization target and with no spare. Every joule it
/// reclaims beyond [`Predictive`] is the price of forecast headroom;
/// everything beyond [`Reactive`] is the price of having no trace.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    target_util: f64,
    window: Duration,
    arrivals: Vec<SimTime>,
    stick_rps: f64,
    base_rps: f64,
}

impl Oracle {
    pub fn new() -> Oracle {
        Oracle { target_util: 0.8, ..Oracle::default() }
    }
}

impl ScalingPolicy for Oracle {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn prime(&mut self, arrivals: &[SimTime], ctx: &PrimeContext) {
        self.arrivals = arrivals.to_vec();
        self.window = ctx.tick + ctx.provision_delay;
        self.stick_rps = ctx.stick_rps;
        self.base_rps = ctx.base_rps;
    }

    fn decide(&mut self, s: &ScaleSignals) -> ScaleDecision {
        let needed = |from: SimTime| {
            let rate = rate_over(&self.arrivals, from, self.window);
            required_sticks(rate, self.base_rps, self.stick_rps, self.target_util)
        };
        let now = needed(s.now);
        let committed = s.live + s.provisioning;
        if now > committed {
            return ScaleDecision::Up((now - committed).min(s.gated));
        }
        // Perfect foresight means never regretting a drain: a stick is
        // released only if the next few windows won't want it back —
        // otherwise the 200 ms re-provision gap would be paid for a
        // stick the trace says is needed, which is flap, not reclaim.
        let horizon = (0..3).map(|k| needed(s.now + self.window * k)).max().unwrap_or(now);
        if horizon < committed {
            ScaleDecision::Down(committed - horizon)
        } else {
            ScaleDecision::Hold
        }
    }
}

/// Policy by CLI name: `reactive`, `predictive` or `oracle`.
pub fn policy(name: &str) -> Option<Box<dyn ScalingPolicy>> {
    match name {
        "reactive" => Some(Box::new(Reactive::default())),
        "predictive" => Some(Box::new(Predictive::new())),
        "oracle" => Some(Box::new(Oracle::new())),
        _ => None,
    }
}

/// The three shipped policy names, in increasing order of foresight.
pub const POLICY_NAMES: [&str; 3] = ["reactive", "predictive", "oracle"];

#[cfg(test)]
mod tests {
    use super::*;

    fn at_ms(ms: f64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    fn signals(now: SimTime, rate: f64, live: usize, gated: usize) -> ScaleSignals {
        ScaleSignals {
            now,
            queue_depth: 0,
            queue_capacity: 64,
            fast_burn: 0.0,
            slow_burn: 0.0,
            shed_rate: 0.0,
            arrival_rps: rate,
            live,
            provisioning: 0,
            gated,
            open_circuits: 0,
            quarantined: 0,
            stick_rps: 10.0,
            base_rps: 0.0,
        }
    }

    fn ctx() -> PrimeContext {
        PrimeContext {
            epoch: SimTime::ZERO,
            tick: Duration::from_millis(50.0),
            provision_delay: Duration::from_millis(200.0),
            stick_rps: 10.0,
            base_rps: 0.0,
            total_sticks: 8,
            min_live: 1,
        }
    }

    #[test]
    fn required_sticks_rounds_up_and_respects_the_base() {
        assert_eq!(required_sticks(0.0, 0.0, 10.0, 0.5), 0);
        assert_eq!(required_sticks(16.0, 0.0, 10.0, 0.8), 2);
        assert_eq!(required_sticks(16.1, 0.0, 10.0, 0.8), 3);
        // The always-on base absorbs its share first.
        assert_eq!(required_sticks(16.0, 16.0, 10.0, 0.8), 0);
        assert_eq!(required_sticks(26.0, 16.0, 10.0, 0.5), 2);
    }

    #[test]
    fn reactive_scales_up_under_burn_and_drains_one_at_a_time() {
        let mut p = Reactive::default();
        // Burning on both windows: scale up immediately.
        let mut s = signals(at_ms(100.0), 50.0, 2, 6);
        s.fast_burn = 0.6;
        s.slow_burn = 0.3;
        assert!(matches!(p.decide(&s), ScaleDecision::Up(n) if n >= 1));

        // Calm and overprovisioned: holds through the streak, then
        // drains exactly one stick.
        let mut p = Reactive::default();
        for i in 0..2 {
            let s = signals(at_ms(100.0 * (i + 1) as f64), 5.0, 8, 0);
            assert_eq!(p.decide(&s), ScaleDecision::Hold, "calm streak tick {i}");
        }
        let s = signals(at_ms(300.0), 5.0, 8, 0);
        assert_eq!(p.decide(&s), ScaleDecision::Down(1));
        // Immediately after: inside the cooldown, so it holds.
        let s = signals(at_ms(310.0), 5.0, 7, 1);
        assert_eq!(p.decide(&s), ScaleDecision::Hold);
    }

    #[test]
    fn reactive_replaces_sticks_lost_to_a_long_outage() {
        let mut p = Reactive::default();
        let mut s = signals(at_ms(100.0), 5.0, 3, 5);
        s.open_circuits = 2;
        // First outage tick: not yet (could be a blip).
        assert!(!matches!(p.decide(&s), ScaleDecision::Up(_)));
        // Second consecutive tick with open circuits: replace both.
        assert_eq!(p.decide(&s), ScaleDecision::Up(2));
    }

    #[test]
    fn reactive_replaces_quarantined_fail_slow_sticks() {
        // A persistent quarantine is an outage the breakers never see:
        // the replacement path must treat it like an open circuit.
        let mut p = Reactive::default();
        let mut s = signals(at_ms(100.0), 5.0, 3, 5);
        s.quarantined = 1;
        assert!(!matches!(p.decide(&s), ScaleDecision::Up(_)));
        assert_eq!(p.decide(&s), ScaleDecision::Up(1));
    }

    #[test]
    fn predictive_provisions_for_the_demand_ahead() {
        let mut p = Predictive::new();
        // A burst of 20 arrivals 100 ms out, inside the 400 ms lookahead.
        let mut arrivals: Vec<SimTime> = Vec::new();
        for i in 0..20 {
            arrivals.push(at_ms(100.0) + Duration::from_micros(i as f64));
        }
        p.prime(&arrivals, &ctx());
        let s = signals(SimTime::ZERO, 0.0, 1, 7);
        // 20 arrivals over the 400 ms window = 50 rps forecast -> scale
        // out ahead of the burst.
        match p.decide(&s) {
            ScaleDecision::Up(n) => assert!(n >= 1, "burst ahead must scale up"),
            d => panic!("expected Up, got {d:?}"),
        }
        // Past the burst: drains back toward the spare.
        let s = signals(at_ms(500.0), 0.0, 8, 0);
        assert!(matches!(p.decide(&s), ScaleDecision::Down(_)));
    }

    #[test]
    fn oracle_tracks_the_demand_curve_exactly() {
        let mut o = Oracle::new();
        let arrivals: Vec<SimTime> = (0..100).map(|i| at_ms(10.0 * i as f64)).collect();
        o.prime(&arrivals, &ctx());
        // 100 rps sustained at util 0.8 over 10 rps sticks: 13 needed,
        // pool capped by `gated` on the way up.
        let s = signals(SimTime::ZERO, 100.0, 1, 7);
        assert_eq!(o.decide(&s), ScaleDecision::Up(7));
        // After the trace ends, demand is zero: drain everything (the
        // actuator enforces min_live).
        let s = signals(at_ms(2_000.0), 0.0, 8, 0);
        assert_eq!(o.decide(&s), ScaleDecision::Down(8));
    }

    #[test]
    fn policies_resolve_by_name() {
        for name in POLICY_NAMES {
            let p = policy(name).expect("known policy");
            assert_eq!(p.name(), name);
        }
        assert!(policy("bogus").is_none());
    }
}
