//! The paper's §VII future-work comparators.
//!
//! "As future work, we expect to compare the VPU with highly-specialized
//! accelerator chips, such as the NVIDIA Volta V100 architecture" — and
//! its related work benchmarks the Intel Xeon Phi (KNL) as an ML
//! co-processor (Byun et al.). Both are modelled the same way as the
//! paper's own hosts: published peak rates, a sustained-efficiency factor
//! for GoogLeNet-class inference, a per-call overhead, and the board TDP
//! for Eq. (1).

use crate::HostRun;
use desim::{Duration, FifoResource, SimTime};
use serde::{Deserialize, Serialize};
use vpu_nn::cost::NetworkCost;

/// A generic throughput-oriented accelerator model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    pub name: String,
    /// Peak MAC rate at the precision the device runs inference in.
    pub peak_macs_per_sec: f64,
    /// Sustained fraction of that peak on GoogLeNet-class inference.
    pub efficiency: f64,
    /// Fixed per-forward-call overhead (launches, sync).
    pub batch_overhead: Duration,
    /// Board/package TDP for Eq. (1), Watts.
    pub tdp_w: f64,
}

impl AccelConfig {
    /// NVIDIA Tesla V100 (SXM2): 640 tensor cores, 125 TFLOP/s FP16
    /// (62.5 TMAC/s), 300 W. Sustained efficiency on GoogLeNet-class
    /// inference at moderate batch is low — the network is too small to
    /// fill the machine (published V100 GoogLeNet numbers sit near
    /// 1–2 k img/s at batch 8, i.e. ~5 % of tensor-core peak).
    pub fn v100() -> AccelConfig {
        AccelConfig {
            name: "v100".into(),
            peak_macs_per_sec: 62.5e12,
            efficiency: 0.05,
            batch_overhead: Duration::from_millis(1.2),
            tdp_w: 300.0,
        }
    }

    /// Intel Xeon Phi 7250 (KNL): 68 cores × 2×AVX-512 FMA @ 1.4 GHz ≈
    /// 3 TMAC/s FP32 peak, 215 W. Byun et al. sustain ~15 % of peak on
    /// CNN inference (scatter-bound im2col hurts on KNL).
    pub fn xeon_phi_knl() -> AccelConfig {
        AccelConfig {
            name: "knl".into(),
            peak_macs_per_sec: 3.0e12,
            efficiency: 0.15,
            batch_overhead: Duration::from_millis(6.0),
            tdp_w: 215.0,
        }
    }
}

/// The device: serial forward calls, parallel inside (same modelling
/// level as the paper's CPU/GPU references).
#[derive(Debug, Clone)]
pub struct AccelDevice {
    cfg: AccelConfig,
    timeline: FifoResource,
}

impl AccelDevice {
    pub fn new(cfg: AccelConfig) -> Self {
        let timeline = FifoResource::new(cfg.name.clone());
        AccelDevice { cfg, timeline }
    }

    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    pub fn compute_per_image(&self, cost: &NetworkCost) -> Duration {
        Duration::from_secs(
            cost.total_macs as f64 / (self.cfg.peak_macs_per_sec * self.cfg.efficiency),
        )
    }

    pub fn batch_duration(&self, cost: &NetworkCost, batch: usize) -> Duration {
        assert!(batch > 0, "batch must be positive");
        self.cfg.batch_overhead + self.compute_per_image(cost) * batch as u64
    }

    pub fn run_batch(&mut self, cost: &NetworkCost, batch: usize, ready: SimTime) -> HostRun {
        let busy = self.timeline.acquire(ready, self.batch_duration(cost, batch));
        HostRun { start: busy.start, end: busy.end, batch }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_nn::googlenet;

    fn cost() -> NetworkCost {
        NetworkCost::of::<f32>(&googlenet::full())
    }

    #[test]
    fn v100_lands_in_published_band() {
        let dev = AccelDevice::new(AccelConfig::v100());
        let per = dev.batch_duration(&cost(), 8).as_millis() / 8.0;
        let ips = 1000.0 / per;
        // Published V100 GoogLeNet inference: roughly 1-2k img/s.
        assert!((900.0..2500.0).contains(&ips), "V100 {ips} img/s");
    }

    #[test]
    fn knl_lands_between_the_paper_hosts_and_v100() {
        let dev = AccelDevice::new(AccelConfig::xeon_phi_knl());
        let per = dev.batch_duration(&cost(), 8).as_millis() / 8.0;
        let ips = 1000.0 / per;
        // KNL inference sits in the low hundreds of img/s.
        assert!((150.0..500.0).contains(&ips), "KNL {ips} img/s");
    }

    #[test]
    fn batch_overhead_amortizes() {
        let dev = AccelDevice::new(AccelConfig::v100());
        let c = cost();
        let t1 = dev.batch_duration(&c, 1).as_millis();
        let t32 = dev.batch_duration(&c, 32).as_millis() / 32.0;
        assert!(t1 > t32 * 2.0, "V100 must need batch to amortize launches");
    }

    #[test]
    fn batches_serialize() {
        let mut dev = AccelDevice::new(AccelConfig::xeon_phi_knl());
        let c = cost();
        let a = dev.run_batch(&c, 8, SimTime::ZERO);
        let b = dev.run_batch(&c, 8, SimTime::ZERO);
        assert_eq!(b.start, a.end);
    }
}
