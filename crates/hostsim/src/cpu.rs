//! Caffe-MKL on dual Xeon E5-2609v2: the paper's CPU reference.

use crate::HostRun;
use desim::{Duration, FifoResource, SimTime};
use serde::{Deserialize, Serialize};
use vpu_nn::cost::NetworkCost;
use vpu_nn::graph::CompiledNetwork;
use vpu_tensor::Tensor;

/// Parameters of the CPU implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Physical cores across both sockets (2 × 4 on the testbed).
    pub cores: usize,
    /// f32 SIMD lanes per core (AVX = 8).
    pub simd_lanes: usize,
    /// Clock, Hz (2.5 GHz, no turbo on the E5-2609v2).
    pub clock_hz: f64,
    /// Fraction of peak MAC throughput Caffe-MKL sustains on GoogLeNet.
    /// **Calibrated** to the paper's 26.0 ms batch-1 latency.
    pub efficiency: f64,
    /// Per-batch framework overhead (layer setup, MKL thread-pool wake,
    /// blob reshape), independent of batch size.
    pub batch_overhead: Duration,
    /// Thermal design power of the CPU package(s) used in Eq. (1).
    /// The paper quotes 80 W for the Xeon E5-2609v2.
    pub tdp_w: f64,
    /// Package draw between forward calls (C-states engaged but the
    /// machine awake) — the idle rate the online energy meter charges
    /// outside busy spans.
    pub idle_w: f64,
    /// OS / framework timing jitter (coefficient of variation applied
    /// per forward call) — gives the figures their error bars.
    pub jitter_cv: f64,
    /// Seed of the jitter stream.
    pub jitter_seed: u64,
    /// What-if scaling of the whole forward call (overhead + compute):
    /// `0.5` simulates a host twice as fast. `1.0` is byte-identical to
    /// a config without the knob — the causal profiler's passivity
    /// guarantee.
    pub service_scale: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cores: 8,
            simd_lanes: 8,
            clock_hz: 2.5e9,
            efficiency: 0.445,
            batch_overhead: Duration::from_millis(3.8),
            tdp_w: 80.0,
            idle_w: 15.0,
            jitter_cv: 0.008,
            jitter_seed: 2012,
            service_scale: 1.0,
        }
    }
}

impl CpuConfig {
    /// Peak f32 MAC rate over all cores.
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.cores as f64 * self.simd_lanes as f64 * self.clock_hz
    }
}

/// The CPU device: serial at batch granularity (Caffe runs one forward
/// pass at a time; parallelism lives *inside* the GEMMs).
#[derive(Debug, Clone)]
pub struct CpuDevice {
    cfg: CpuConfig,
    timeline: FifoResource,
    batches: u64,
}

impl CpuDevice {
    pub fn new(cfg: CpuConfig) -> Self {
        CpuDevice { cfg, timeline: FifoResource::new("cpu"), batches: 0 }
    }

    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    pub fn now(&self) -> SimTime {
        self.timeline.available_at()
    }

    pub fn batches_run(&self) -> u64 {
        self.batches
    }

    /// Per-image compute time: all cores already busy at batch 1, so this
    /// is flat in batch size.
    pub fn compute_per_image(&self, cost: &NetworkCost) -> Duration {
        let secs = cost.total_macs as f64 / (self.cfg.peak_macs_per_sec() * self.cfg.efficiency);
        Duration::from_secs(secs)
    }

    /// Predicted duration of one batched forward call.
    pub fn batch_duration(&self, cost: &NetworkCost, batch: usize) -> Duration {
        assert!(batch > 0, "batch must be positive");
        let nominal = self.cfg.batch_overhead + self.compute_per_image(cost) * batch as u64;
        if self.cfg.service_scale == 1.0 {
            nominal
        } else {
            nominal * self.cfg.service_scale
        }
    }

    /// Simulate one batched forward pass starting no earlier than `ready`.
    /// Each call carries deterministic seeded jitter (indexed by the
    /// batch counter), modelling OS/framework timing noise.
    pub fn run_batch(&mut self, cost: &NetworkCost, batch: usize, ready: SimTime) -> HostRun {
        let nominal = self.batch_duration(cost, batch);
        let mut stream =
            vpu_num::rng::indexed_stream(self.cfg.jitter_seed, "cpu-jitter", self.batches);
        let z = vpu_num::rng::normal(&mut stream);
        let scale = (1.0 + self.cfg.jitter_cv * z).max(0.5);
        let busy = self.timeline.acquire(ready, nominal * scale);
        self.batches += 1;
        HostRun { start: busy.start, end: busy.end, batch }
    }

    /// Execute real f32 numerics (accuracy path).
    pub fn infer(&self, net: &CompiledNetwork<f32>, input: &Tensor<f32>) -> Tensor<f32> {
        net.forward(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_nn::googlenet;

    fn cost() -> NetworkCost {
        NetworkCost::of::<f32>(&googlenet::full())
    }

    #[test]
    fn batch1_latency_matches_paper() {
        let dev = CpuDevice::new(CpuConfig::default());
        let ms = dev.batch_duration(&cost(), 1).as_millis();
        // Paper: 26.0 ms single-input reference.
        assert!((25.2..26.8).contains(&ms), "CPU batch-1 {ms} ms");
    }

    #[test]
    fn batch8_latency_matches_paper() {
        let dev = CpuDevice::new(CpuConfig::default());
        let per = dev.batch_duration(&cost(), 8).as_millis() / 8.0;
        // Paper: 22.7 ms per inference at batch 8 (44.0 img/s).
        assert!((22.0..23.4).contains(&per), "CPU batch-8 per-image {per} ms");
    }

    #[test]
    fn scaling_is_flat_like_the_paper() {
        let dev = CpuDevice::new(CpuConfig::default());
        let c = cost();
        let t1 = dev.batch_duration(&c, 1).as_millis();
        let t8 = dev.batch_duration(&c, 8).as_millis() / 8.0;
        let scaling = t1 / t8;
        // Paper: only 14.7% improvement at batch 8 (1.1x).
        assert!((1.08..1.22).contains(&scaling), "CPU scaling {scaling}");
    }

    #[test]
    fn batches_serialize() {
        let mut dev = CpuDevice::new(CpuConfig::default());
        let c = cost();
        let a = dev.run_batch(&c, 8, SimTime::ZERO);
        let b = dev.run_batch(&c, 8, SimTime::ZERO);
        assert_eq!(b.start, a.end);
        assert_eq!(dev.batches_run(), 2);
        // Jitter makes batches differ slightly but stay near nominal.
        let nominal = dev.batch_duration(&c, 8);
        for r in [a, b] {
            let ratio = r.duration().nanos() as f64 / nominal.nanos() as f64;
            assert!((0.95..1.05).contains(&ratio), "jitter out of band: {ratio}");
        }
    }

    #[test]
    fn jitter_is_deterministic() {
        let c = cost();
        let mut d1 = CpuDevice::new(CpuConfig::default());
        let mut d2 = CpuDevice::new(CpuConfig::default());
        for _ in 0..4 {
            let a = d1.run_batch(&c, 8, SimTime::ZERO);
            let b = d2.run_batch(&c, 8, SimTime::ZERO);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn peak_rate() {
        let cfg = CpuConfig::default();
        // 8 cores * 8 lanes * 2.5 GHz = 160 GMAC/s.
        assert!((cfg.peak_macs_per_sec() - 160e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        CpuDevice::new(CpuConfig::default()).batch_duration(&cost(), 0);
    }

    #[test]
    fn real_numerics_run() {
        use std::sync::Arc;
        use vpu_tensor::kernels::gemm::AccumMode;
        use vpu_tensor::Shape;
        let spec = Arc::new(googlenet::tiny());
        let w = vpu_nn::init::xavier(&spec, 1);
        let net = CompiledNetwork::<f32>::compile(spec, &w, AccumMode::Widened);
        let dev = CpuDevice::new(CpuConfig::default());
        let out = dev.infer(&net, &Tensor::full(Shape::chw(3, 32, 32), 0.1));
        assert!(!out.has_nan());
    }
}
