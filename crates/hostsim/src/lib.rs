//! Host reference devices: the CPU and GPU implementations the paper
//! compares the multi-VPU configuration against.
//!
//! The paper's CPU baseline is the Intel-optimized Caffe-MKL fork on a
//! dual-socket Xeon E5-2609v2 (2 × 4 cores @ 2.5 GHz, AVX); the GPU
//! baseline is Caffe-cuDNN on a Quadro K4000 (768 CUDA cores, 3 GB
//! GDDR5). Neither stack is runnable here, so each device pairs:
//!
//! * an **analytic batch-timing model** with mechanistic parameters
//!   (core/SM counts, SIMD widths, sustained-efficiency factors, fixed
//!   per-batch framework overhead) calibrated to the paper's anchor
//!   latencies — 26.0 ms (CPU) and 25.9 ms (GPU) at batch 1;
//! * a **real f32 numerics path** (rayon-parallel kernels from
//!   `vpu-tensor`) used by the accuracy experiments, standing in for
//!   MKL/cuDNN arithmetic, which is IEEE f32 in both.
//!
//! Batch-scaling *shape* then emerges: the CPU is already fully parallel
//! at batch 1 so batching only amortizes framework overhead (paper: 1.1×
//! at batch 8); the GPU amortizes its large per-batch launch/occupancy
//! cost (paper: 1.9×).

pub mod accel;
pub mod cpu;
pub mod gpu;
pub mod power;

pub use cpu::{CpuConfig, CpuDevice};
pub use gpu::{GpuConfig, GpuDevice};
pub use power::{throughput_per_watt, Tdp};

use desim::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Timing record for one batched inference call on a host device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostRun {
    pub start: SimTime,
    pub end: SimTime,
    pub batch: usize,
}

impl HostRun {
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// Mean per-image latency within the batch.
    pub fn per_image(&self) -> Duration {
        self.duration() / self.batch as u64
    }
}
