//! Thermal-design-power registry and the paper's Eq. (1).

use serde::{Deserialize, Serialize};

/// TDP figures the paper uses in §V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tdp {
    /// Intel Xeon E5-2609v2 package.
    pub cpu_w: f64,
    /// NVIDIA Quadro K4000 board.
    pub gpu_w: f64,
    /// Myriad 2 chip alone.
    pub vpu_chip_w: f64,
    /// Whole NCS stick (chip + DDR + USB interface), peak.
    pub ncs_stick_w: f64,
}

impl Default for Tdp {
    fn default() -> Self {
        Tdp { cpu_w: 80.0, gpu_w: 80.0, vpu_chip_w: 0.9, ncs_stick_w: 2.5 }
    }
}

impl Tdp {
    /// TDP of `n` active VPU chips (the paper's Fig. 8a couples the VPU
    /// count to the batch size and charges one chip TDP per stick).
    pub fn multi_vpu_w(&self, n: usize) -> f64 {
        self.vpu_chip_w * n as f64
    }

    /// TDP of `n` whole NCS sticks (the conservative whole-stick
    /// framing Fig. 8a charges per active stick).
    pub fn multi_stick_w(&self, n: usize) -> f64 {
        self.ncs_stick_w * n as f64
    }

    /// Headline ratio the abstract quotes: CPU/GPU TDP over the TDP of
    /// the multi-VPU configuration that matches their throughput.
    pub fn reduction_vs_cpu(&self, vpus: usize) -> f64 {
        self.cpu_w / self.multi_vpu_w(vpus)
    }
}

/// Eq. (1): ThroughputWatt = (images/second) / TDP.
pub fn throughput_per_watt(images_per_sec: f64, tdp_w: f64) -> f64 {
    assert!(tdp_w > 0.0, "TDP must be positive");
    images_per_sec / tdp_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let t = Tdp::default();
        assert_eq!(t.cpu_w, 80.0);
        assert_eq!(t.gpu_w, 80.0);
        assert_eq!(t.vpu_chip_w, 0.9);
        assert_eq!(t.ncs_stick_w, 2.5);
    }

    #[test]
    fn eight_vpus_give_8x_reduction_headline() {
        let t = Tdp::default();
        // 8 chips = 7.2 W vs 80 W: the paper's "up to 8x" TDP reduction
        // (80 / 7.2 = 11.1 chip-only; the paper's 8x headline uses the
        // conservative whole-stick framing).
        assert!((t.multi_vpu_w(8) - 7.2).abs() < 1e-12);
        assert!(t.reduction_vs_cpu(8) > 8.0);
        // Whole-stick framing: 8 × 2.5 W = 20 W -> 4x.
        assert!((80.0 / (8.0 * t.ncs_stick_w) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_values_from_paper() {
        // Paper §V: one VPU -> 3.97 img/W. One VPU does ~100.7 ms per
        // image = 9.93 img/s; 9.93 / 0.9 W = 11.0 chip-only, or
        // 9.93 / 2.5 = 3.97 per stick — the paper charges stick TDP at
        // batch 1.
        let img_per_sec = 1000.0 / 100.7;
        let per_stick = throughput_per_watt(img_per_sec, 2.5);
        assert!((per_stick - 3.97).abs() < 0.05, "{per_stick}");
        // CPU at batch 8: 44.0 img/s over 80 W = 0.55.
        assert!((throughput_per_watt(44.0, 80.0) - 0.55).abs() < 0.01);
        // GPU: 74.2 img/s over 80 W = 0.93.
        assert!((throughput_per_watt(74.2, 80.0) - 0.9275).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tdp_rejected() {
        throughput_per_watt(1.0, 0.0);
    }
}
