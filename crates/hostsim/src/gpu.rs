//! Caffe-cuDNN on the NVIDIA Quadro K4000: the paper's GPU reference.

use crate::HostRun;
use desim::{Duration, FifoResource, SimTime};
use serde::{Deserialize, Serialize};
use vpu_nn::cost::NetworkCost;
use vpu_nn::graph::CompiledNetwork;
use vpu_tensor::Tensor;

/// Parameters of the GPU implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// CUDA cores (768 on the K4000, Kepler GK106GL).
    pub cuda_cores: usize,
    /// Boost clock, Hz (~810 MHz).
    pub clock_hz: f64,
    /// f32 FMA throughput per core per cycle (1 MAC).
    pub macs_per_core_cycle: f64,
    /// Sustained fraction of peak on GoogLeNet under cuDNN (small
    /// batches underutilize Kepler badly). **Calibrated** to the paper's
    /// 25.9 ms batch-1 latency.
    pub efficiency: f64,
    /// Fixed per-forward-call cost: kernel launches for ~140 layers,
    /// cudaMemcpy of the input blob, stream sync.
    pub batch_overhead: Duration,
    /// GDDR5 capacity (3 GB), bounding the max input blob.
    pub memory_bytes: u64,
    /// Board TDP used in Eq. (1): 80 W.
    pub tdp_w: f64,
    /// Board draw with no kernels in flight (GDDR5 refresh, fans,
    /// display engine) — the idle rate the online energy meter charges
    /// outside busy spans.
    pub idle_w: f64,
    /// OS / driver timing jitter (coefficient of variation applied per
    /// forward call) — gives the figures their error bars.
    pub jitter_cv: f64,
    /// Seed of the jitter stream.
    pub jitter_seed: u64,
    /// What-if scaling of the whole forward call (overhead + compute):
    /// `0.5` simulates a GPU twice as fast. `1.0` is byte-identical to
    /// a config without the knob — the causal profiler's passivity
    /// guarantee.
    pub service_scale: f64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            cuda_cores: 768,
            clock_hz: 810e6,
            macs_per_core_cycle: 1.0,
            efficiency: 0.217,
            batch_overhead: Duration::from_millis(14.2),
            memory_bytes: 3 << 30,
            tdp_w: 80.0,
            idle_w: 13.0,
            jitter_cv: 0.008,
            jitter_seed: 2012,
            service_scale: 1.0,
        }
    }
}

impl GpuConfig {
    /// Peak f32 MAC rate.
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.cuda_cores as f64 * self.macs_per_core_cycle * self.clock_hz
    }
}

/// The GPU device. Like the CPU, forward calls are serial; parallelism is
/// inside the kernels. The big per-call overhead is what batching
/// amortizes (the paper's 1.9× batch-8 speedup).
#[derive(Debug, Clone)]
pub struct GpuDevice {
    cfg: GpuConfig,
    timeline: FifoResource,
    batches: u64,
}

impl GpuDevice {
    pub fn new(cfg: GpuConfig) -> Self {
        GpuDevice { cfg, timeline: FifoResource::new("gpu"), batches: 0 }
    }

    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    pub fn now(&self) -> SimTime {
        self.timeline.available_at()
    }

    pub fn batches_run(&self) -> u64 {
        self.batches
    }

    /// Steady-state compute per image once the pipelines are full.
    pub fn compute_per_image(&self, cost: &NetworkCost) -> Duration {
        let secs = cost.total_macs as f64 / (self.cfg.peak_macs_per_sec() * self.cfg.efficiency);
        Duration::from_secs(secs)
    }

    /// Does a batch of this size fit GDDR5? (Blob + workspace ~ 3× the
    /// activation footprint per image.)
    pub fn batch_fits(&self, cost: &NetworkCost, batch: usize) -> bool {
        let per_image = 3 * cost.total_activation_bytes();
        cost.total_weight_bytes() + per_image * batch as u64 <= self.cfg.memory_bytes
    }

    /// Predicted duration of one batched forward call.
    pub fn batch_duration(&self, cost: &NetworkCost, batch: usize) -> Duration {
        assert!(batch > 0, "batch must be positive");
        assert!(self.batch_fits(cost, batch), "batch {batch} exceeds GPU memory");
        let nominal = self.cfg.batch_overhead + self.compute_per_image(cost) * batch as u64;
        if self.cfg.service_scale == 1.0 {
            nominal
        } else {
            nominal * self.cfg.service_scale
        }
    }

    /// Simulate one batched forward pass starting no earlier than `ready`.
    /// Each call carries deterministic seeded jitter (indexed by the
    /// batch counter), modelling OS/framework timing noise.
    pub fn run_batch(&mut self, cost: &NetworkCost, batch: usize, ready: SimTime) -> HostRun {
        let nominal = self.batch_duration(cost, batch);
        let mut stream =
            vpu_num::rng::indexed_stream(self.cfg.jitter_seed, "gpu-jitter", self.batches);
        let z = vpu_num::rng::normal(&mut stream);
        let scale = (1.0 + self.cfg.jitter_cv * z).max(0.5);
        let busy = self.timeline.acquire(ready, nominal * scale);
        self.batches += 1;
        HostRun { start: busy.start, end: busy.end, batch }
    }

    /// Real f32 numerics. cuDNN computes in IEEE f32, same as the CPU
    /// path; the paper confirms the GPU's confidence outputs match the
    /// CPU's (§IV-B footnote), so both host devices share this kernel.
    pub fn infer(&self, net: &CompiledNetwork<f32>, input: &Tensor<f32>) -> Tensor<f32> {
        net.forward(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_nn::googlenet;

    fn cost() -> NetworkCost {
        NetworkCost::of::<f32>(&googlenet::full())
    }

    #[test]
    fn batch1_latency_matches_paper() {
        let dev = GpuDevice::new(GpuConfig::default());
        let ms = dev.batch_duration(&cost(), 1).as_millis();
        // Paper: 25.9 ms single-input reference.
        assert!((25.1..26.7).contains(&ms), "GPU batch-1 {ms} ms");
    }

    #[test]
    fn batch8_latency_matches_paper() {
        let dev = GpuDevice::new(GpuConfig::default());
        let per = dev.batch_duration(&cost(), 8).as_millis() / 8.0;
        // Paper: 13.5 ms per inference at batch 8 (74.2 img/s).
        assert!((13.0..14.0).contains(&per), "GPU batch-8 per-image {per} ms");
    }

    #[test]
    fn batch16_approaches_paper_max() {
        let dev = GpuDevice::new(GpuConfig::default());
        let per_ms = dev.batch_duration(&cost(), 16).as_millis() / 16.0;
        let imgs_per_sec = 1000.0 / per_ms;
        // Paper: 79.9 img/s maximum for the GPU.
        assert!((77.0..82.0).contains(&imgs_per_sec), "GPU batch-16 {imgs_per_sec} img/s");
    }

    #[test]
    fn scaling_matches_paper() {
        let dev = GpuDevice::new(GpuConfig::default());
        let c = cost();
        let t1 = dev.batch_duration(&c, 1).as_millis();
        let t8 = dev.batch_duration(&c, 8).as_millis() / 8.0;
        // Paper: 92.5% improvement at batch 8 (1.9x).
        let scaling = t1 / t8;
        assert!((1.8..2.05).contains(&scaling), "GPU scaling {scaling}");
    }

    #[test]
    fn memory_bounds_batch() {
        let dev = GpuDevice::new(GpuConfig::default());
        let c = cost();
        assert!(dev.batch_fits(&c, 16));
        assert!(!dev.batch_fits(&c, 4000), "3 GB cannot hold thousands of 224x224 blobs");
    }

    #[test]
    #[should_panic(expected = "exceeds GPU memory")]
    fn oversized_batch_panics() {
        GpuDevice::new(GpuConfig::default()).batch_duration(&cost(), 100_000);
    }

    #[test]
    fn batches_serialize() {
        let mut dev = GpuDevice::new(GpuConfig::default());
        let c = cost();
        let a = dev.run_batch(&c, 4, SimTime::ZERO);
        let b = dev.run_batch(&c, 4, a.start);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn peak_rate() {
        // 768 cores * 810 MHz = 622 GMAC/s = 1.24 TFLOP/s.
        let cfg = GpuConfig::default();
        assert!((cfg.peak_macs_per_sec() - 622.08e9).abs() < 1e6);
    }
}
