//! Causal what-if profiling (E24): counterfactual sensitivity analysis
//! over a recorded trace.
//!
//! Coz-style question: *"if component X ran `f`× as long, what would
//! p99 / throughput / energy look like?"* — answered two ways:
//!
//! 1. **Analytically** (this module): replay the nine-segment
//!    attribution with one component's segment virtually scaled by `f`
//!    in every request's span chain. Exact per-request arithmetic, zero
//!    re-simulation — but *queue-blind*: the counterfactual keeps the
//!    observed queueing/batching schedule frozen, so it cannot see the
//!    second-order relief (or collapse) a real speed change causes in
//!    the queues.
//! 2. **By measurement** (`vpu-bench`'s `whatif` experiment): re-run
//!    the deterministic simulator with the same component's service
//!    model actually scaled via [`ScalePlan`] and diff the reports.
//!
//! The gap between the two is itself the signal: where they agree the
//! component's sensitivity is schedule-linear; where they disagree a
//! queueing transition (batch growth, saturation relief) dominates and
//! critical-path share mis-predicts sensitivity.
//!
//! [`ScalePlan`]: https://en.wikipedia.org/wiki/Causal_profiling
//!
//! Segment mapping (the measured knob each component corresponds to):
//!
//! | component   | segment        | applies to            | measured knob            |
//! |-------------|----------------|-----------------------|--------------------------|
//! | `usb-write` | UsbWrite       | VPU-class requests    | `UsbConfig::write_scale` |
//! | `usb-read`  | UsbRead        | VPU-class requests    | `UsbConfig::read_scale`  |
//! | `exec`      | Exec           | VPU-class requests    | `NcsConfig::exec_scale`  |
//! | `host`      | Exec           | host-class requests   | `CpuConfig/GpuConfig::service_scale` |
//! | `batch-wait`| Formation      | all requests          | `ServeConfig::max_wait`  |
//! | `dispatch`  | DispatchQueue  | all requests          | spawn/cmd/batch overheads|
//!
//! A request is *VPU-class* when its successful attempt carried USB
//! device detail (`dev.usb_write` present); host batches execute with
//! no USB legs, so the two classes partition the Exec segment cleanly.

use crate::attribution::{Analysis, Breakdown, E2e, Segment};
use crate::energy::EnergyAnalysis;
use crate::span::RequestSpan;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A scalable component of the serving stack — the analytic twin of
/// the measured `ScaleComponent` knob set (same names, same order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Component {
    UsbWrite,
    UsbRead,
    Exec,
    BatchWait,
    Dispatch,
    Host,
}

impl Component {
    pub const ALL: [Component; 6] = [
        Component::UsbWrite,
        Component::UsbRead,
        Component::Exec,
        Component::BatchWait,
        Component::Dispatch,
        Component::Host,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            Component::UsbWrite => "usb-write",
            Component::UsbRead => "usb-read",
            Component::Exec => "exec",
            Component::BatchWait => "batch-wait",
            Component::Dispatch => "dispatch",
            Component::Host => "host",
        }
    }

    pub fn parse(s: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The attribution segment this component's time lives in.
    pub const fn segment(self) -> Segment {
        match self {
            Component::UsbWrite => Segment::UsbWrite,
            Component::UsbRead => Segment::UsbRead,
            Component::Exec | Component::Host => Segment::Exec,
            Component::BatchWait => Segment::Formation,
            Component::Dispatch => Segment::DispatchQueue,
        }
    }

    /// Whether the component's knob touches this request's span chain.
    /// `exec` and `host` share the Exec segment but partition requests
    /// by worker class: USB device detail marks the VPU class.
    pub fn applies(self, r: &RequestSpan) -> bool {
        match self {
            Component::UsbWrite | Component::UsbRead | Component::Exec => r.dev.usb_write.is_some(),
            Component::Host => r.dev.usb_write.is_none(),
            Component::BatchWait | Component::Dispatch => true,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One analytic counterfactual: `component` virtually scaled by
/// `factor`, everything else frozen at the observed schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    pub component: String,
    pub factor: f64,
    /// Completed requests in the trace (the prediction population).
    pub completed: usize,
    /// Requests the component actually touches (class match *and* a
    /// nonzero segment).
    pub affected: usize,
    /// Σ scaled-segment time / Σ end-to-end time — the classic
    /// flat-profile share.
    pub seg_share: f64,
    /// Fraction of completed requests whose *critical* (largest)
    /// segment is this component's segment, within its class.
    pub critical_share: f64,
    pub base: E2e,
    pub predicted: E2e,
    /// First arrival → last completion, observed.
    pub base_wall_ms: f64,
    /// Same span with every completion shifted by its request's saved
    /// (or added) segment time.
    pub predicted_wall_ms: f64,
    pub base_rps: f64,
    pub predicted_rps: f64,
    /// Device energy per completed inference, when the trace carries
    /// power lanes.
    pub base_j_per_inference: Option<f64>,
    /// Counterfactual J/inference: each affected request's segment
    /// energy scales with `factor`, net of the idle draw its worker
    /// would have burned anyway over the reclaimed time.
    pub predicted_j_per_inference: Option<f64>,
}

impl Prediction {
    /// Predicted p99 improvement in milliseconds (negative = slowdown).
    pub fn p99_gain_ms(&self) -> f64 {
        self.base.p99_ms - self.predicted.p99_ms
    }
}

/// Per-request counterfactual latency: total − segment + factor×segment
/// for requests the component applies to, untouched otherwise. Ordered
/// like `Analysis::breakdowns` (by request id). Exact at `factor == 1`.
pub fn predicted_latencies_ns(a: &Analysis, c: Component, factor: f64) -> Vec<u64> {
    a.breakdowns.iter().map(|b| predicted_ns(b, &a.forest.requests[&b.id], c, factor)).collect()
}

fn predicted_ns(b: &Breakdown, r: &RequestSpan, c: Component, factor: f64) -> u64 {
    if factor == 1.0 || !c.applies(r) {
        return b.total.nanos();
    }
    let seg = b.seg(c.segment()).nanos();
    b.total.nanos() - seg + (seg as f64 * factor).round() as u64
}

/// Analytic what-if for one component × factor over a recorded trace.
pub fn predict(a: &Analysis, c: Component, factor: f64) -> Prediction {
    assert!(factor > 0.0, "scale factor must be positive");
    let seg = c.segment();
    let completed = a.breakdowns.len();

    let mut affected = 0usize;
    let mut seg_ns = 0u64;
    let mut total_ns = 0u64;
    let mut critical = 0usize;
    let mut pred_ns = Vec::with_capacity(completed);
    // Wall clock: first arrival → last (counterfactually shifted)
    // completion. The shift keeps each request's observed completion
    // order arithmetic exact without re-scheduling anything.
    let mut first_arrive = u64::MAX;
    let mut last_complete = 0u64;
    let mut last_complete_pred = 0u64;

    for b in &a.breakdowns {
        let r = &a.forest.requests[&b.id];
        let p = predicted_ns(b, r, c, factor);
        total_ns += b.total.nanos();
        if c.applies(r) {
            if b.seg(seg).nanos() > 0 {
                affected += 1;
            }
            seg_ns += b.seg(seg).nanos();
            if b.critical == seg {
                critical += 1;
            }
        }
        let complete = r.complete.expect("breakdowns only exist for completed requests");
        first_arrive = first_arrive.min(r.arrive.nanos());
        last_complete = last_complete.max(complete.nanos());
        last_complete_pred = last_complete_pred.max(complete.nanos() - b.total.nanos() + p);
        pred_ns.push(p);
    }

    let base = E2e::of_ns(a.breakdowns.iter().map(|b| b.total.nanos()).collect());
    let predicted = E2e::of_ns(pred_ns);
    let wall = |until: u64| {
        if completed == 0 {
            0.0
        } else {
            until.saturating_sub(first_arrive) as f64 / 1e6
        }
    };
    let (base_wall_ms, predicted_wall_ms) = (wall(last_complete), wall(last_complete_pred));
    let rps = |wall_ms: f64| if wall_ms > 0.0 { completed as f64 / (wall_ms / 1e3) } else { 0.0 };

    let energy = a.energy.as_ref().map(|e| predicted_energy(a, e, c, factor));
    Prediction {
        component: c.name().to_string(),
        factor,
        completed,
        affected,
        seg_share: if total_ns == 0 { 0.0 } else { seg_ns as f64 / total_ns as f64 },
        critical_share: if completed == 0 { 0.0 } else { critical as f64 / completed as f64 },
        base,
        predicted,
        base_wall_ms,
        predicted_wall_ms,
        base_rps: rps(base_wall_ms),
        predicted_rps: rps(predicted_wall_ms),
        base_j_per_inference: energy.map(|(b, _)| b),
        predicted_j_per_inference: energy.map(|(_, p)| p),
    }
}

/// `(base, predicted)` J/inference. Each affected request's segment
/// energy is exact pJ from the power lanes; the counterfactual saving
/// is net of idle draw — reclaiming a span only saves the *difference*
/// between the worker's busy draw and the gated draw it pays anyway.
fn predicted_energy(a: &Analysis, e: &EnergyAnalysis, c: Component, factor: f64) -> (f64, f64) {
    let completed = a.breakdowns.len().max(1) as f64;
    let base_j = e.fleet_pj as f64 / 1e12;
    let by_id: BTreeMap<u64, &crate::energy::RequestEnergy> =
        e.requests.iter().map(|re| (re.id, re)).collect();
    let seg = c.segment() as usize;
    let mut delta_pj = 0.0f64; // positive = saved
    for b in &a.breakdowns {
        let r = &a.forest.requests[&b.id];
        if !c.applies(r) {
            continue;
        }
        let Some(re) = by_id.get(&b.id) else { continue };
        let gross = re.segs[seg] as f64 * (1.0 - factor);
        // Net-of-idle: the busy span's draw tells us the worker's
        // active mW; its ledger the gated mW underneath.
        let net_fraction = r
            .batch
            .and_then(|batch| {
                let ledger = e.workers.iter().find(|w| Some(w.worker) == b.worker)?;
                let span = ledger.busy.iter().find(|s| s.batch == batch)?;
                (span.mw > 0).then(|| 1.0 - ledger.idle_mw as f64 / span.mw as f64)
            })
            .unwrap_or(1.0);
        delta_pj += gross * net_fraction.max(0.0);
    }
    let predicted_j = (e.fleet_pj as f64 - delta_pj).max(0.0) / 1e12;
    (base_j / completed, predicted_j / completed)
}

/// Every component predicted at one factor, ranked by p99 gain — the
/// bottleneck table ("speeding *what* up helps most?").
pub fn rank(a: &Analysis, factor: f64) -> Vec<Prediction> {
    let mut out: Vec<Prediction> =
        Component::ALL.into_iter().map(|c| predict(a, c, factor)).collect();
    out.sort_by(|x, y| y.p99_gain_ms().total_cmp(&x.p99_gain_ms()));
    out
}

/// Human table over a set of predictions (one factor, ranked).
pub fn render(preds: &[Prediction]) -> String {
    let mut s = String::new();
    s.push_str(
        "component   factor  affected  seg%   crit%  p99 ms (base→pred)      Δp99 ms   rps (base→pred)\n",
    );
    for p in preds {
        s.push_str(&format!(
            "{:<11} {:>6.2} {:>9} {:>5.1} {:>7.1}  {:>9.2} → {:<9.2} {:>9.2}  {:>7.1} → {:<7.1}\n",
            p.component,
            p.factor,
            p.affected,
            p.seg_share * 100.0,
            p.critical_share * 100.0,
            p.base.p99_ms,
            p.predicted.p99_ms,
            p.p99_gain_ms(),
            p.base_rps,
            p.predicted_rps,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{DeviceSpans, SpanForest};
    use desim::SimTime;
    use proptest::prelude::*;

    /// Deterministic exponential inter-arrival stream (inverse CDF over
    /// a splitmix64 generator) — no `rand` dependency needed.
    struct Exp {
        state: u64,
        mean_ns: f64,
    }

    impl Exp {
        fn next_ns(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            (-(1.0 - u).ln() * self.mean_ns).round() as u64
        }
    }

    /// Build an M/D/1 FIFO queue as a span forest: Poisson arrivals at
    /// `rate`, deterministic service `service_ns`, single VPU-class
    /// worker. Queue wait lands in DispatchQueue, service in Exec.
    fn md1_forest(n: u64, rate_per_sec: f64, service_ns: u64, seed: u64) -> SpanForest {
        let mut forest = SpanForest::default();
        let mut exp = Exp { state: seed, mean_ns: 1e9 / rate_per_sec };
        let mut arrive = 0u64;
        let mut free_at = 0u64;
        for id in 0..n {
            arrive += exp.next_ns();
            let start = arrive.max(free_at);
            let end = start + service_ns;
            free_at = end;
            forest.requests.insert(
                id,
                RequestSpan {
                    id,
                    arrive: SimTime(arrive),
                    admit: Some(SimTime(arrive)),
                    batch_close: Some(SimTime(arrive)),
                    dispatches: vec![(SimTime(arrive), Some(id), Some(0))],
                    complete: Some(SimTime(end)),
                    batch: Some(id),
                    worker: Some(0),
                    dev: DeviceSpans {
                        usb_write: Some((SimTime(start), SimTime(start))),
                        exec: Some((SimTime(start), SimTime(end))),
                        usb_read: Some((SimTime(end), SimTime(end))),
                    },
                    ..RequestSpan::default()
                },
            );
            forest.end = SimTime(end);
        }
        forest
    }

    fn mean_wait_ns(a: &Analysis) -> f64 {
        let sum: u64 = a.breakdowns.iter().map(|b| b.seg(Segment::DispatchQueue).nanos()).sum();
        sum as f64 / a.breakdowns.len() as f64
    }

    #[test]
    fn identity_prediction_is_a_no_op() {
        let a = Analysis::from_forest(md1_forest(400, 70.0, 10_000_000, 7));
        for c in Component::ALL {
            let p = predict(&a, c, 1.0);
            assert_eq!(p.base, p.predicted, "{c} changed stats at f=1");
            assert_eq!(p.base_wall_ms, p.predicted_wall_ms);
            assert_eq!(p.base_rps, p.predicted_rps);
        }
    }

    #[test]
    fn exec_prediction_shifts_every_request_by_its_own_segment() {
        let a = Analysis::from_forest(md1_forest(300, 70.0, 10_000_000, 3));
        let f = 0.5;
        let pred = predicted_latencies_ns(&a, Component::Exec, f);
        for (b, &p) in a.breakdowns.iter().zip(&pred) {
            let seg = b.seg(Segment::Exec).nanos();
            assert_eq!(p, b.total.nanos() - seg + (seg as f64 * f).round() as u64);
        }
        // `host` never applies to VPU-class requests: pure no-op.
        let host = predict(&a, Component::Host, f);
        assert_eq!(host.affected, 0);
        assert_eq!(host.base, host.predicted);
    }

    /// Pollaczek–Khinchine: the analytic prediction is queue-blind, so
    /// against a *re-simulated* M/D/1 with scaled service its error is
    /// exactly the queue-wait relief — which P-K quantifies:
    /// `W = λ s² / (2 (1 − λs))` for deterministic service.
    #[test]
    fn md1_blind_spot_matches_pollaczek_khinchine() {
        let (n, rate, s) = (6000u64, 70.0f64, 10_000_000u64); // ρ = 0.7
        let f = 0.5;
        let base = Analysis::from_forest(md1_forest(n, rate, s, 42));
        let scaled = Analysis::from_forest(md1_forest(n, rate, (s as f64 * f) as u64, 42));

        let pk = |srv_ns: f64| {
            let lambda = rate / 1e9;
            lambda * srv_ns * srv_ns / (2.0 * (1.0 - lambda * srv_ns))
        };
        // The simulated queues agree with the analytic M/D/1 wait.
        let (w_base, w_scaled) = (mean_wait_ns(&base), mean_wait_ns(&scaled));
        assert!(
            (w_base - pk(s as f64)).abs() / pk(s as f64) < 0.15,
            "base sim vs P-K: {w_base} vs {}",
            pk(s as f64)
        );
        assert!((w_scaled - pk(s as f64 * f)).abs() / pk(s as f64 * f) < 0.15);

        // Queue-blind prediction keeps the *base* wait; measurement
        // enjoys the scaled one. The gap is the wait difference, and
        // the prediction is pessimistic (over-estimates latency).
        let p = predict(&base, Component::Exec, f);
        let measured_mean = scaled.e2e.mean_ms;
        let gap_ms = p.predicted.mean_ms - measured_mean;
        let pk_gap_ms = (w_base - w_scaled) / 1e6;
        assert!(gap_ms > 0.0, "speedup must relieve the queue");
        assert!(
            (gap_ms - pk_gap_ms).abs() / pk_gap_ms < 0.15,
            "blind spot {gap_ms:.3} ms vs P-K wait relief {pk_gap_ms:.3} ms"
        );
    }

    #[test]
    fn rank_orders_by_p99_gain() {
        let a = Analysis::from_forest(md1_forest(500, 70.0, 10_000_000, 11));
        let ranked = rank(&a, 0.5);
        assert_eq!(ranked.len(), Component::ALL.len());
        for pair in ranked.windows(2) {
            assert!(pair[0].p99_gain_ms() >= pair[1].p99_gain_ms());
        }
        // At ρ=0.7 the M/D/1 queue wait (mean ρs/2(1−ρ) ≈ 11.7 ms)
        // dwarfs the 5 ms exec gain: dispatch ranks first, exec second.
        assert_eq!(ranked[0].component, "dispatch");
        assert_eq!(ranked[1].component, "exec");
        let table = render(&ranked);
        assert!(table.contains("exec"));
        assert!(table.lines().count() == 1 + ranked.len());
    }

    proptest! {
        /// Monotone + bounded: predicted per-request latency is
        /// non-decreasing in `f`, equals the observed latency at 1.0,
        /// and never drops below latency − segment.
        #[test]
        fn predicted_latency_monotone_in_factor(
            seed in 0u64..1000,
            f1 in 0.25f64..1.75,
            f2 in 0.25f64..1.75,
        ) {
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            let a = Analysis::from_forest(md1_forest(60, 70.0, 10_000_000, seed));
            for c in Component::ALL {
                let at_lo = predicted_latencies_ns(&a, c, lo);
                let at_hi = predicted_latencies_ns(&a, c, hi);
                let at_one = predicted_latencies_ns(&a, c, 1.0);
                for (i, b) in a.breakdowns.iter().enumerate() {
                    prop_assert!(at_lo[i] <= at_hi[i] + 1, "{c} not monotone");
                    prop_assert_eq!(at_one[i], b.total.nanos());
                    let floor = b.total.nanos() - b.seg(c.segment()).nanos();
                    prop_assert!(at_lo[i] >= floor);
                }
            }
        }
    }
}
