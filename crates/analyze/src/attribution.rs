//! Exact latency attribution and the per-request critical path.
//!
//! Every completed request's end-to-end latency is split into the
//! telescoping [`Segment`]s below. Each segment is the advance of a
//! running boundary clamped to `[previous, complete]`, so the segments
//! are non-negative and **sum to the end-to-end latency exactly** — no
//! nanosecond is lost or double-counted, which the property tests
//! enforce on real serving runs. The *critical* segment of a request is
//! the largest one (ties broken toward the earlier pipeline stage), so
//! "where did the p99 go" has a deterministic answer.

use crate::span::{Outcome, RequestSpan, SpanForest};
use desim::{Duration, SimTime};
use ncsw_obs::{EventLog, LogHistogram, ShedCause};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One telescoping slice of a completed request's latency, in pipeline
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Arrival → its first `BatchClose`: waiting for the batch to form.
    Formation,
    /// First close → the dispatch that finally succeeded: stall added
    /// by failed attempts, backoff and replanning (zero without
    /// failover).
    RetryStall,
    /// Successful dispatch → first device activity.
    DispatchQueue,
    /// Host→device input transfer.
    UsbWrite,
    /// Input on device → SHAVE start.
    ExecWait,
    /// On-device execution.
    Exec,
    /// SHAVE end → result transfer start.
    ReadWait,
    /// Device→host result transfer.
    UsbRead,
    /// Result on host → `Complete`: completion overhead (includes the
    /// whole post-dispatch path for workers with no device detail).
    Completion,
}

impl Segment {
    pub const ALL: [Segment; 9] = [
        Segment::Formation,
        Segment::RetryStall,
        Segment::DispatchQueue,
        Segment::UsbWrite,
        Segment::ExecWait,
        Segment::Exec,
        Segment::ReadWait,
        Segment::UsbRead,
        Segment::Completion,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            Segment::Formation => "formation",
            Segment::RetryStall => "retry-stall",
            Segment::DispatchQueue => "dispatch-queue",
            Segment::UsbWrite => "usb-write",
            Segment::ExecWait => "exec-wait",
            Segment::Exec => "exec",
            Segment::ReadWait => "read-wait",
            Segment::UsbRead => "usb-read",
            Segment::Completion => "completion",
        }
    }
}

/// One completed request's exact latency split.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    pub id: u64,
    pub total: Duration,
    /// Indexed by [`Segment::ALL`] position; sums to `total` exactly.
    pub segs: [Duration; 9],
    pub critical: Segment,
    pub worker: Option<u32>,
    pub retries: u32,
}

impl Breakdown {
    /// `None` unless the request completed.
    pub fn of(r: &RequestSpan) -> Option<Breakdown> {
        let complete = r.complete?;
        if complete < r.arrive {
            return None;
        }
        let mut segs = [Duration::ZERO; 9];
        let mut prev = r.arrive;
        let mut put = |seg: Segment, until: Option<SimTime>, prev: &mut SimTime| {
            if let Some(u) = until {
                let u = u.max(*prev).min(complete);
                segs[seg as usize] = u.since(*prev);
                *prev = u;
            }
        };
        let (uw, ex, ur) = (r.dev.usb_write, r.dev.exec, r.dev.usb_read);
        put(Segment::Formation, r.batch_close, &mut prev);
        put(Segment::RetryStall, r.final_dispatch(), &mut prev);
        put(Segment::DispatchQueue, uw.map(|s| s.0).or(ex.map(|s| s.0)), &mut prev);
        put(Segment::UsbWrite, uw.map(|s| s.1), &mut prev);
        put(Segment::ExecWait, ex.map(|s| s.0), &mut prev);
        put(Segment::Exec, ex.map(|s| s.1), &mut prev);
        put(Segment::ReadWait, ur.map(|s| s.0), &mut prev);
        put(Segment::UsbRead, ur.map(|s| s.1), &mut prev);
        put(Segment::Completion, Some(complete), &mut prev);
        let mut critical = Segment::Formation;
        for s in Segment::ALL {
            if segs[s as usize] > segs[critical as usize] {
                critical = s;
            }
        }
        Some(Breakdown {
            id: r.id,
            total: complete.since(r.arrive),
            segs,
            critical,
            worker: r.worker,
            retries: r.retries,
        })
    }

    pub fn seg(&self, s: Segment) -> Duration {
        self.segs[s as usize]
    }

    /// Whether the segments telescope to the total exactly (they do by
    /// construction; exposed so tests state the invariant).
    pub fn exact(&self) -> bool {
        self.segs.iter().copied().sum::<Duration>() == self.total
    }
}

/// Exact quantile over sorted nanosecond values (nearest-rank).
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One aggregated row of the attribution table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentRow {
    pub segment: String,
    /// Completed requests where this segment is non-zero.
    pub count: usize,
    /// Sum over all completed requests, in ms.
    pub total_ms: f64,
    /// Share of the summed end-to-end latency.
    pub share: f64,
    /// Exact quantiles over all completed requests (zeros included).
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Requests whose critical segment this is.
    pub critical: usize,
}

/// The aggregated attribution table (one row per [`Segment`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionTable {
    pub completed: usize,
    pub rows: Vec<SegmentRow>,
}

impl AttributionTable {
    pub fn of(breakdowns: &[Breakdown]) -> AttributionTable {
        let grand: Duration = breakdowns.iter().map(|b| b.total).sum();
        let rows = Segment::ALL
            .into_iter()
            .map(|s| {
                let mut ns: Vec<u64> = breakdowns.iter().map(|b| b.seg(s).nanos()).collect();
                ns.sort_unstable();
                let total: u64 = ns.iter().sum();
                SegmentRow {
                    segment: s.name().to_string(),
                    count: ns.iter().filter(|&&v| v > 0).count(),
                    total_ms: total as f64 / 1e6,
                    share: if grand.nanos() == 0 {
                        0.0
                    } else {
                        total as f64 / grand.nanos() as f64
                    },
                    mean_ms: total as f64 / 1e6 / ns.len().max(1) as f64,
                    p50_ms: quantile_ns(&ns, 0.50) as f64 / 1e6,
                    p95_ms: quantile_ns(&ns, 0.95) as f64 / 1e6,
                    p99_ms: quantile_ns(&ns, 0.99) as f64 / 1e6,
                    max_ms: ns.last().copied().unwrap_or(0) as f64 / 1e6,
                    critical: breakdowns.iter().filter(|b| b.critical == s).count(),
                }
            })
            .collect();
        AttributionTable { completed: breakdowns.len(), rows }
    }
}

/// End-to-end latency statistics (exact nearest-rank quantiles, unlike
/// the serving report's log-bucketed ones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct E2e {
    pub count: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

impl E2e {
    fn of(breakdowns: &[Breakdown]) -> E2e {
        E2e::of_ns(breakdowns.iter().map(|b| b.total.nanos()).collect())
    }

    /// Exact stats over raw nanosecond latencies — the what-if engine
    /// aggregates counterfactual (scaled) latencies through the same
    /// nearest-rank math as the observed ones.
    pub(crate) fn of_ns(mut ns: Vec<u64>) -> E2e {
        ns.sort_unstable();
        let total: u64 = ns.iter().sum();
        E2e {
            count: ns.len(),
            mean_ms: total as f64 / 1e6 / ns.len().max(1) as f64,
            p50_ms: quantile_ns(&ns, 0.50) as f64 / 1e6,
            p95_ms: quantile_ns(&ns, 0.95) as f64 / 1e6,
            p99_ms: quantile_ns(&ns, 0.99) as f64 / 1e6,
            max_ms: ns.last().copied().unwrap_or(0) as f64 / 1e6,
        }
    }
}

/// Shed requests by cause, as found in the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ShedCounts {
    pub rejected: usize,
    pub evicted: usize,
    pub deadline: usize,
    pub retries_exhausted: usize,
    /// `Shed` events with no recognizable cause arg (a malformed
    /// trace — `trace_check` rejects these upstream).
    pub unknown: usize,
}

impl ShedCounts {
    pub fn total(&self) -> usize {
        self.rejected + self.evicted + self.deadline + self.retries_exhausted + self.unknown
    }
}

/// The full analysis of one observed run.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub forest: SpanForest,
    /// Per-request exact splits, ordered by request id.
    pub breakdowns: Vec<Breakdown>,
    pub table: AttributionTable,
    pub e2e: E2e,
    pub shed: ShedCounts,
    /// Energy attribution from the power lanes; `None` when the trace
    /// predates them (built from the log, so [`Analysis::from_forest`]
    /// always leaves it `None`).
    pub energy: Option<crate::energy::EnergyAnalysis>,
}

impl Analysis {
    pub fn of(log: &EventLog) -> Analysis {
        let _prof = ncsw_obs::prof::scope("analyze.attribute");
        let mut a = Analysis::from_forest(SpanForest::build(log));
        a.energy = crate::energy::EnergyAnalysis::of(log, &a.forest, &a.breakdowns);
        a
    }

    pub fn from_forest(forest: SpanForest) -> Analysis {
        let breakdowns: Vec<Breakdown> =
            forest.requests.values().filter_map(Breakdown::of).collect();
        let mut shed = ShedCounts::default();
        for r in forest.requests.values() {
            if r.outcome() == Outcome::Shed {
                match r.shed_cause {
                    Some(ShedCause::Rejected) => shed.rejected += 1,
                    Some(ShedCause::Evicted) => shed.evicted += 1,
                    Some(ShedCause::Deadline) => shed.deadline += 1,
                    Some(ShedCause::RetriesExhausted) => shed.retries_exhausted += 1,
                    None => shed.unknown += 1,
                }
            }
        }
        let table = AttributionTable::of(&breakdowns);
        let e2e = E2e::of(&breakdowns);
        Analysis { forest, breakdowns, table, e2e, shed, energy: None }
    }

    /// Parse an exported Chrome trace and analyze it.
    pub fn from_chrome(json: &str) -> Result<Analysis, String> {
        Ok(Analysis::of(&crate::parse::parse_chrome_trace(json)?))
    }

    /// p99 end-to-end latency of completions overlapping a
    /// circuit-breaker outage window — same definition (and the same
    /// log-bucketed histogram) as the serving report's
    /// `p99_during_failover_ms`, but derived purely from the trace.
    pub fn p99_during_outages_ms(&self) -> f64 {
        let end =
            self.forest.requests.values().filter_map(|r| r.complete).max().unwrap_or(SimTime::ZERO);
        let mut h = LogHistogram::new();
        for r in self.forest.requests.values() {
            let Some(done) = r.complete else { continue };
            let overlaps = self
                .forest
                .outages
                .iter()
                .any(|o| r.arrive <= o.until.unwrap_or(end) && done >= o.from);
            if overlaps {
                h.record(done.since(r.arrive));
            }
        }
        if h.is_empty() {
            0.0
        } else {
            h.quantile(0.99).as_millis()
        }
    }

    /// Human-readable report: attribution table, critical-path summary,
    /// end-to-end stats, shed breakdown and alert windows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} requests in trace: {} completed, {} shed, {} incomplete",
            self.forest.requests.len(),
            self.e2e.count,
            self.shed.total(),
            self.forest.requests.len() - self.e2e.count - self.shed.total(),
        );
        let _ = writeln!(
            out,
            "e2e latency: mean {:.2} ms  p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
            self.e2e.mean_ms, self.e2e.p50_ms, self.e2e.p95_ms, self.e2e.p99_ms, self.e2e.max_ms
        );
        let _ = writeln!(
            out,
            "\n{:<15} {:>6} {:>11} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "segment",
            "count",
            "total_ms",
            "share",
            "mean_ms",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "critical"
        );
        for r in &self.table.rows {
            let _ = writeln!(
                out,
                "{:<15} {:>6} {:>11.3} {:>6.1}% {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9}",
                r.segment,
                r.count,
                r.total_ms,
                r.share * 100.0,
                r.mean_ms,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.critical
            );
        }
        if self.shed.total() > 0 {
            let _ = writeln!(
                out,
                "\nshed: {} rejected, {} evicted, {} deadline, {} retries-exhausted",
                self.shed.rejected,
                self.shed.evicted,
                self.shed.deadline,
                self.shed.retries_exhausted
            );
        }
        if !self.forest.outages.is_empty() {
            let _ = writeln!(
                out,
                "\n{} outage window(s); p99 during failover {:.1} ms",
                self.forest.outages.len(),
                self.p99_during_outages_ms()
            );
        }
        if !self.forest.alerts.is_empty() {
            let _ = writeln!(out, "\nSLO burn alerts:");
            for (from, until) in &self.forest.alerts {
                let _ = writeln!(
                    out,
                    "  [{:.1} ms .. {:.1} ms] ({:.1} ms)",
                    from.as_millis(),
                    until.as_millis(),
                    until.since(*from).as_millis()
                );
            }
        }
        if let Some(e) = &self.energy {
            let _ = writeln!(out);
            out.push_str(&e.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::DeviceSpans;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    fn vpu_request() -> RequestSpan {
        RequestSpan {
            id: 1,
            arrive: t(0),
            batch_close: Some(t(10)),
            dispatches: vec![(t(10), Some(4), Some(2))],
            complete: Some(t(40)),
            batch: Some(4),
            worker: Some(2),
            dev: DeviceSpans {
                usb_write: Some((t(11), t(13))),
                exec: Some((t(14), t(30))),
                usb_read: Some((t(31), t(33))),
            },
            ..RequestSpan::default()
        }
    }

    #[test]
    fn segments_sum_exactly_and_name_the_critical_phase() {
        let b = Breakdown::of(&vpu_request()).unwrap();
        assert!(b.exact());
        assert_eq!(b.total, Duration::from_millis(40.0));
        assert_eq!(b.seg(Segment::Formation), Duration::from_millis(10.0));
        assert_eq!(b.seg(Segment::RetryStall), Duration::ZERO);
        assert_eq!(b.seg(Segment::DispatchQueue), Duration::from_millis(1.0));
        assert_eq!(b.seg(Segment::UsbWrite), Duration::from_millis(2.0));
        assert_eq!(b.seg(Segment::ExecWait), Duration::from_millis(1.0));
        assert_eq!(b.seg(Segment::Exec), Duration::from_millis(16.0));
        assert_eq!(b.seg(Segment::ReadWait), Duration::from_millis(1.0));
        assert_eq!(b.seg(Segment::UsbRead), Duration::from_millis(2.0));
        assert_eq!(b.seg(Segment::Completion), Duration::from_millis(7.0));
        assert_eq!(b.critical, Segment::Exec);
    }

    #[test]
    fn ties_break_toward_the_earlier_stage() {
        let mut r = vpu_request();
        r.dev = DeviceSpans::default();
        r.batch_close = Some(t(20));
        r.dispatches = vec![(t(40), Some(4), Some(2))];
        // Formation 20, RetryStall 20, Completion 0 — tie goes to
        // Formation.
        let b = Breakdown::of(&r).unwrap();
        assert!(b.exact());
        assert_eq!(b.critical, Segment::Formation);
    }

    #[test]
    fn out_of_range_device_spans_cannot_break_exactness() {
        // A device span reaching past Complete (or before dispatch)
        // gets clamped, never double-counted.
        let mut r = vpu_request();
        r.dev.usb_read = Some((t(31), t(55)));
        let b = Breakdown::of(&r).unwrap();
        assert!(b.exact());
        assert_eq!(b.seg(Segment::Completion), Duration::ZERO);
        assert_eq!(b.seg(Segment::UsbRead), Duration::from_millis(9.0));
    }

    #[test]
    fn host_requests_attribute_exec_via_the_batch_span() {
        let r = RequestSpan {
            id: 2,
            arrive: t(0),
            batch_close: Some(t(4)),
            dispatches: vec![(t(4), Some(9), Some(0))],
            complete: Some(t(30)),
            batch: Some(9),
            worker: Some(0),
            dev: DeviceSpans { exec: Some((t(5), t(30))), ..DeviceSpans::default() },
            ..RequestSpan::default()
        };
        let b = Breakdown::of(&r).unwrap();
        assert!(b.exact());
        assert_eq!(b.seg(Segment::DispatchQueue), Duration::from_millis(1.0));
        assert_eq!(b.seg(Segment::Exec), Duration::from_millis(25.0));
        assert_eq!(b.seg(Segment::UsbWrite), Duration::ZERO);
        assert_eq!(b.critical, Segment::Exec);
    }

    #[test]
    fn exact_quantiles_are_nearest_rank() {
        let ns: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_ns(&ns, 0.50), 50);
        assert_eq!(quantile_ns(&ns, 0.95), 95);
        assert_eq!(quantile_ns(&ns, 0.99), 99);
        assert_eq!(quantile_ns(&ns, 1.0), 100);
        assert_eq!(quantile_ns(&[], 0.5), 0);
    }
}
