//! Span-tree reconstruction: from the flat event stream back to one
//! typed span record per request.
//!
//! The serving loop emits events as they happen, interleaved across
//! requests, batches and lanes. [`SpanForest::build`] groups them back
//! into per-request [`RequestSpan`]s. Two subtleties make this more
//! than a group-by:
//!
//! - A request that failed over was dispatched more than once, and a
//!   *timed-out* attempt still emits full device spans (the work
//!   happened, just too late). Device spans are therefore joined to the
//!   request through the **batch id carried by its `Complete` event** —
//!   every dispatch attempt gets a fresh batch id, so the successful
//!   attempt's spans are unambiguous.
//! - The USB fabric tap mirrors each `UsbWrite` onto the root/hub
//!   lanes with the same request context. Only the `Host` lane span is
//!   the request's transfer; the fabric copies are ignored here.

use desim::{Duration, SimTime};
use ncsw_obs::{EventLog, Lane, Phase, ShedCause};
use std::collections::BTreeMap;

/// Host-visible device spans of one request's successful attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceSpans {
    /// Host→device input transfer (`Host` lane only).
    pub usb_write: Option<(SimTime, SimTime)>,
    /// On-device execution. Per-image (`Vpu` lane) when the worker has
    /// USB-level detail, else the whole batch's `Worker`-lane span.
    pub exec: Option<(SimTime, SimTime)>,
    /// Device→host result transfer.
    pub usb_read: Option<(SimTime, SimTime)>,
}

/// How a request's story ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Completed,
    Shed,
    /// Present in the trace but neither completed nor shed (e.g. a
    /// truncated log).
    Incomplete,
}

/// One request's reconstructed span tree.
#[derive(Debug, Clone, Default)]
pub struct RequestSpan {
    pub id: u64,
    pub arrive: SimTime,
    pub admit: Option<SimTime>,
    /// First `BatchClose` — the instant its first batch formed.
    pub batch_close: Option<SimTime>,
    /// Every dispatch attempt: `(instant, batch, worker)`, in time
    /// order. More than one means the request rode a failover.
    pub dispatches: Vec<(SimTime, Option<u64>, Option<u32>)>,
    /// `RetryAttempt` events observed for this request.
    pub retries: u32,
    pub complete: Option<SimTime>,
    /// Batch id of the successful attempt (from the `Complete` event).
    pub batch: Option<u64>,
    /// Worker that served the successful attempt.
    pub worker: Option<u32>,
    /// Device spans of the successful attempt.
    pub dev: DeviceSpans,
    pub shed_at: Option<SimTime>,
    pub shed_cause: Option<ShedCause>,
}

impl RequestSpan {
    pub fn outcome(&self) -> Outcome {
        if self.complete.is_some() {
            Outcome::Completed
        } else if self.shed_at.is_some() {
            Outcome::Shed
        } else {
            Outcome::Incomplete
        }
    }

    /// End-to-end latency of a completed request.
    pub fn latency(&self) -> Option<Duration> {
        self.complete.map(|c| c.since(self.arrive))
    }

    /// Dispatch instant of the attempt that completed (the one whose
    /// batch id matches the `Complete` event's).
    pub fn final_dispatch(&self) -> Option<SimTime> {
        let b = self.batch?;
        self.dispatches.iter().find(|d| d.1 == Some(b)).map(|d| d.0)
    }
}

/// One circuit-breaker outage window (`None` until = never re-closed
/// within the trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    pub worker: u32,
    pub from: SimTime,
    pub until: Option<SimTime>,
}

/// Every request's span tree plus the run-level side structures.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    pub requests: BTreeMap<u64, RequestSpan>,
    /// Batch-level `Exec` spans (host devices execute whole batches
    /// with no per-image device detail): batch id → span.
    pub batch_exec: BTreeMap<u64, (SimTime, SimTime)>,
    /// Circuit-breaker outage windows, in open order.
    pub outages: Vec<OutageWindow>,
    /// `SloAlert` windows present in the trace.
    pub alerts: Vec<(SimTime, SimTime)>,
    /// Latest event finish in the log.
    pub end: SimTime,
}

impl SpanForest {
    pub fn build(log: &EventLog) -> SpanForest {
        let mut f = SpanForest { end: log.horizon(), ..SpanForest::default() };
        // Device spans per (request, attempt batch); resolved against
        // the successful batch id after the scan.
        let mut dev: BTreeMap<(u64, u64), DeviceSpans> = BTreeMap::new();
        for ev in log.events() {
            match (ev.phase, ev.ctx.request_id) {
                (Phase::SloAlert, _) => f.alerts.push((ev.start, ev.finish())),
                (Phase::CircuitOpen, _) => {
                    if let Some(w) = ev.ctx.worker {
                        f.outages.push(OutageWindow { worker: w, from: ev.start, until: None });
                    }
                }
                (Phase::CircuitClose, _) => {
                    if let Some(w) = ev.ctx.worker {
                        if let Some(o) =
                            f.outages.iter_mut().rev().find(|o| o.worker == w && o.until.is_none())
                        {
                            o.until = Some(ev.start);
                        }
                    }
                }
                (Phase::Exec, None) => {
                    // Batch-level host execution (no per-image detail).
                    if let (Some(b), Some(end)) = (ev.ctx.batch_id, ev.end) {
                        f.batch_exec.entry(b).or_insert((ev.start, end));
                    }
                }
                (phase, Some(id)) => {
                    let r = f.requests.entry(id).or_insert_with(|| RequestSpan {
                        id,
                        arrive: ev.start,
                        ..RequestSpan::default()
                    });
                    match phase {
                        Phase::Arrive => r.arrive = r.arrive.min(ev.start),
                        Phase::Admit => r.admit = Some(r.admit.unwrap_or(ev.start).min(ev.start)),
                        Phase::BatchClose => {
                            r.batch_close = Some(r.batch_close.unwrap_or(ev.start).min(ev.start));
                        }
                        Phase::Dispatch => {
                            r.dispatches.push((ev.start, ev.ctx.batch_id, ev.ctx.worker));
                        }
                        Phase::RetryAttempt => r.retries += 1,
                        Phase::Complete => {
                            r.complete = Some(ev.start);
                            r.batch = ev.ctx.batch_id;
                            r.worker = ev.ctx.worker;
                        }
                        Phase::Shed => {
                            r.shed_at = Some(ev.finish());
                            r.shed_cause = ev.cause;
                        }
                        Phase::UsbWrite | Phase::Exec | Phase::UsbRead => {
                            let host = matches!(ev.lane, Lane::Host { .. });
                            let vpu = matches!(ev.lane, Lane::Vpu { .. });
                            if let (Some(b), Some(end)) = (ev.ctx.batch_id, ev.end) {
                                let d = dev.entry((id, b)).or_default();
                                let span = Some((ev.start, end));
                                match phase {
                                    // Only the Host lane carries the
                                    // request's transfer; the USB
                                    // fabric tap mirrors it.
                                    Phase::UsbWrite if host => d.usb_write = span,
                                    Phase::UsbRead if host => d.usb_read = span,
                                    Phase::Exec if vpu => d.exec = span,
                                    _ => {}
                                }
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        for r in f.requests.values_mut() {
            if let Some(b) = r.batch {
                if let Some(d) = dev.get(&(r.id, b)) {
                    r.dev = *d;
                }
                if r.dev.exec.is_none() {
                    r.dev.exec = f.batch_exec.get(&b).copied();
                }
            }
            r.dispatches.sort_by_key(|d| d.0);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncsw_obs::{Ctx, Event, Recorder};

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// A request that timed out on worker 0 (full device spans, batch
    /// 0), failed over, and completed on worker 1 (batch 1).
    fn failover_log() -> EventLog {
        let mut log = EventLog::new();
        let r = Ctx::request(7);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), r));
        log.record(Event::instant(Phase::Admit, Lane::Server, t(0), r));
        log.record(Event::instant(Phase::BatchClose, Lane::Queue, t(10), r.with_batch(0)));
        let a0 = r.with_batch(0).with_worker(0);
        log.record(Event::instant(Phase::Dispatch, Lane::Worker(0), t(10), a0));
        log.record(Event::span(
            Phase::UsbWrite,
            Lane::Host { worker: 0, dev: 0 },
            t(10),
            t(12),
            a0,
        ));
        log.record(Event::span(Phase::Exec, Lane::Vpu { worker: 0, dev: 0 }, t(12), t(90), a0));
        log.record(Event::instant(Phase::RetryAttempt, Lane::Server, t(40), r.with_batch(0)));
        let a1 = r.with_batch(1).with_worker(1);
        log.record(Event::instant(Phase::Dispatch, Lane::Worker(1), t(45), a1));
        log.record(Event::span(
            Phase::UsbWrite,
            Lane::Host { worker: 1, dev: 0 },
            t(45),
            t(47),
            a1,
        ));
        // Fabric tap mirror of the same transfer: must be ignored.
        log.record(Event::span(Phase::UsbWrite, Lane::UsbRoot { worker: 1 }, t(45), t(47), a1));
        log.record(Event::span(Phase::Exec, Lane::Vpu { worker: 1, dev: 0 }, t(47), t(60), a1));
        log.record(Event::span(Phase::UsbRead, Lane::Host { worker: 1, dev: 0 }, t(60), t(62), a1));
        log.record(Event::instant(Phase::Complete, Lane::Server, t(62), a1));
        log
    }

    #[test]
    fn device_spans_join_on_the_successful_batch() {
        let f = SpanForest::build(&failover_log());
        let r = &f.requests[&7];
        assert_eq!(r.outcome(), Outcome::Completed);
        assert_eq!(r.batch, Some(1));
        assert_eq!(r.worker, Some(1));
        assert_eq!(r.dispatches.len(), 2);
        assert_eq!(r.final_dispatch(), Some(t(45)));
        assert_eq!(r.retries, 1);
        // Batch 1's spans, not the timed-out batch 0's.
        assert_eq!(r.dev.usb_write, Some((t(45), t(47))));
        assert_eq!(r.dev.exec, Some((t(47), t(60))));
        assert_eq!(r.dev.usb_read, Some((t(60), t(62))));
        assert_eq!(r.latency(), Some(t(62).since(t(0))));
    }

    #[test]
    fn host_batches_fall_back_to_the_batch_exec_span() {
        let mut log = EventLog::new();
        let r = Ctx::request(1);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), r));
        log.record(Event::instant(Phase::BatchClose, Lane::Queue, t(5), r.with_batch(3)));
        log.record(Event::instant(
            Phase::Dispatch,
            Lane::Worker(0),
            t(5),
            r.with_batch(3).with_worker(0),
        ));
        // Batch-level exec: no request id, batch id set.
        log.record(Event::span(
            Phase::Exec,
            Lane::Worker(0),
            t(6),
            t(20),
            Ctx { request_id: None, batch_id: Some(3), worker: Some(0) },
        ));
        log.record(Event::instant(
            Phase::Complete,
            Lane::Server,
            t(20),
            r.with_batch(3).with_worker(0),
        ));
        let f = SpanForest::build(&log);
        let rs = &f.requests[&1];
        assert_eq!(rs.dev.exec, Some((t(6), t(20))));
        assert_eq!(rs.dev.usb_write, None);
    }

    #[test]
    fn outage_windows_pair_open_and_close() {
        let mut log = EventLog::new();
        let w = |n: u32| Ctx { request_id: None, batch_id: None, worker: Some(n) };
        log.record(Event::instant(Phase::CircuitOpen, Lane::Worker(2), t(10), w(2)));
        log.record(Event::instant(Phase::CircuitClose, Lane::Worker(2), t(30), w(2)));
        log.record(Event::instant(Phase::CircuitOpen, Lane::Worker(2), t(50), w(2)));
        let f = SpanForest::build(&log);
        assert_eq!(f.outages.len(), 2);
        assert_eq!(f.outages[0].until, Some(t(30)));
        assert_eq!(f.outages[1].until, None);
    }
}
