//! `repro explain <request-id>`: one request's causal timeline.
//!
//! Renders everything the trace knows about a single request — its
//! chronological event timeline (dispatch attempts, retries, hedges,
//! integrity failures), the nine telescoping latency segments with the
//! critical one marked, and the batch-scoped side events (hedges,
//! quarantines) of every batch that carried it. Works on a full trace
//! or a tail-sampled one: sampling keeps kept chains intact, so an
//! anomalous request explains identically either way; a sampled-out
//! request yields a one-line error saying so.

use crate::attribution::{Breakdown, Segment};
use crate::parse::parse_chrome_trace;
use crate::span::{Outcome, SpanForest};
use desim::SimTime;
use ncsw_obs::{Event, EventLog, Phase};
use std::fmt::Write as _;

/// Render the causal timeline of `id` from a parsed event log.
pub fn explain_request(log: &EventLog, id: u64) -> Result<String, String> {
    let evs = log.for_request(id);
    if evs.is_empty() {
        return Err(format!(
            "request {id} not in trace (wrong id, or dropped by tail sampling — \
             anomalous chains are always kept)"
        ));
    }
    let forest = SpanForest::build(log);
    let r = forest
        .requests
        .get(&id)
        .ok_or_else(|| format!("request {id} has events but no span tree"))?;
    let t0 = r.arrive;
    let ms = |t: SimTime| t.since(t0).as_millis();
    let mut out = String::new();

    // Headline: how the story ended.
    match r.outcome() {
        Outcome::Completed => {
            let _ = writeln!(
                out,
                "request {id}: completed in {:.3} ms on worker {} (batch {}){}",
                r.latency().map(|d| d.as_millis()).unwrap_or(0.0),
                r.worker.map_or("?".to_string(), |w| w.to_string()),
                r.batch.map_or("?".to_string(), |b| b.to_string()),
                if r.retries > 0 {
                    format!(", {} retr{}", r.retries, if r.retries == 1 { "y" } else { "ies" })
                } else {
                    String::new()
                }
            );
        }
        Outcome::Shed => {
            let _ = writeln!(
                out,
                "request {id}: shed ({}) {:.3} ms after arrival",
                r.shed_cause.map_or("unknown", |c| c.name()),
                r.shed_at.map(ms).unwrap_or(0.0),
            );
        }
        Outcome::Incomplete => {
            let _ = writeln!(out, "request {id}: incomplete in this trace (truncated run?)");
        }
    }

    // Chronological event timeline, offsets relative to arrival.
    let _ = writeln!(out, "\ntimeline (t=0 at arrival, {:.3} ms absolute):", t0.as_millis());
    for ev in &evs {
        let _ = write!(out, "  t+{:>9.3} ms  {:<12}", ms(ev.start), ev.phase.name());
        if let Some(end) = ev.end {
            let _ = write!(out, " {:>9.3} ms", end.since(ev.start).as_millis());
        } else {
            let _ = write!(out, " {:>12}", "·");
        }
        let _ = write!(out, "  {}", ev.lane.name());
        if let Some(b) = ev.ctx.batch_id {
            let _ = write!(out, "  batch {b}");
        }
        if let Some(c) = ev.cause {
            let _ = write!(out, "  cause {}", c.name());
        }
        out.push('\n');
    }

    // Batch-scoped side events: hedges/quarantines/failovers on any
    // batch that carried this request.
    let batches: Vec<u64> =
        evs.iter().filter_map(|e| e.ctx.batch_id).fold(Vec::new(), |mut acc, b| {
            if !acc.contains(&b) {
                acc.push(b);
            }
            acc
        });
    let side: Vec<&Event> = log
        .events()
        .iter()
        .filter(|e| {
            e.ctx.request_id.is_none()
                && e.ctx.batch_id.is_some_and(|b| batches.contains(&b))
                && matches!(
                    e.phase,
                    Phase::Hedge
                        | Phase::HedgeWin
                        | Phase::HedgeCancel
                        | Phase::Quarantine
                        | Phase::Failover
                )
        })
        .collect();
    if !side.is_empty() {
        let _ = writeln!(out, "\nbatch side events:");
        for ev in side {
            let _ = writeln!(
                out,
                "  t+{:>9.3} ms  {:<12}  batch {}  {}",
                ms(ev.start),
                ev.phase.name(),
                ev.ctx.batch_id.unwrap_or(0),
                ev.lane.name()
            );
        }
    }

    // The nine telescoping segments of a completed request.
    if let Some(b) = Breakdown::of(r) {
        let _ =
            writeln!(out, "\nlatency attribution ({:.3} ms total, exact):", b.total.as_millis());
        let widest = b.segs.iter().map(|d| d.nanos()).max().unwrap_or(1).max(1);
        for s in Segment::ALL {
            let d = b.seg(s);
            let bar = "#".repeat(((d.nanos() * 24) / widest) as usize);
            let _ = writeln!(
                out,
                "  {:<14} {:>9.3} ms {}{}",
                s.name(),
                d.as_millis(),
                bar,
                if s == b.critical { "  <- critical" } else { "" }
            );
        }
    }
    Ok(out)
}

/// [`explain_request`] over Chrome trace-event JSON (full or sampled).
pub fn explain_chrome(json: &str, id: u64) -> Result<String, String> {
    let log = parse_chrome_trace(json)?;
    explain_request(&log, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncsw_obs::{chrome_trace, Ctx, Event, Lane, Recorder, ShedCause};

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    fn served_log() -> EventLog {
        let mut log = EventLog::new();
        let r = Ctx::request(7);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), r));
        log.record(Event::instant(Phase::Admit, Lane::Server, t(0), r));
        log.record(Event::instant(Phase::BatchClose, Lane::Queue, t(10), r.with_batch(0)));
        let a = r.with_batch(0).with_worker(1);
        log.record(Event::instant(Phase::Dispatch, Lane::Worker(1), t(10), a));
        log.record(Event::span(Phase::UsbWrite, Lane::Host { worker: 1, dev: 0 }, t(10), t(12), a));
        log.record(Event::span(Phase::Exec, Lane::Vpu { worker: 1, dev: 0 }, t(12), t(60), a));
        log.record(Event::span(Phase::UsbRead, Lane::Host { worker: 1, dev: 0 }, t(60), t(62), a));
        // A hedge launched against the same batch.
        let h = Ctx { request_id: None, batch_id: Some(0), worker: Some(2) };
        log.record(Event::span(Phase::Hedge, Lane::Worker(2), t(30), t(31), h));
        log.record(Event::instant(Phase::Complete, Lane::Server, t(62), a));
        log
    }

    #[test]
    fn explains_a_completed_request_with_segments_and_hedges() {
        let text = explain_request(&served_log(), 7).expect("request present");
        assert!(text.starts_with("request 7: completed in 62.000 ms on worker 1"), "{text}");
        assert!(text.contains("timeline"), "{text}");
        assert!(text.contains("exec"), "{text}");
        assert!(text.contains("batch side events"), "{text}");
        assert!(text.contains("Hedge"), "{text}");
        assert!(text.contains("latency attribution (62.000 ms total"), "{text}");
        assert!(text.contains("<- critical"), "{text}");
        // exec (48 ms) dominates this request.
        let crit_line = text.lines().find(|l| l.contains("<- critical")).expect("critical marker");
        assert!(crit_line.trim_start().starts_with("exec "), "{crit_line}");
    }

    #[test]
    fn explains_a_shed_request_and_rejects_unknown_ids() {
        let mut log = EventLog::new();
        let r = Ctx::request(3);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), r));
        log.record(
            Event::instant(Phase::Shed, Lane::Server, t(4), r).with_cause(ShedCause::Rejected),
        );
        let text = explain_request(&log, 3).unwrap();
        assert!(text.starts_with("request 3: shed (rejected) 4.000 ms after arrival"), "{text}");
        let err = explain_request(&log, 99).unwrap_err();
        assert!(err.contains("request 99 not in trace"), "{err}");
        assert!(err.contains("sampling"), "{err}");
    }

    #[test]
    fn explain_round_trips_through_chrome_json() {
        let log = served_log();
        let direct = explain_request(&log, 7).unwrap();
        let via_json = explain_chrome(&chrome_trace(&log), 7).unwrap();
        assert_eq!(direct, via_json);
    }
}
