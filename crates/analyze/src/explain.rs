//! `repro explain <request-id>`: one request's causal timeline.
//!
//! Builds everything the trace knows about a single request — its
//! chronological event timeline (dispatch attempts, retries, hedges,
//! integrity failures), the nine telescoping latency segments with the
//! critical one marked, and the batch-scoped side events (hedges,
//! quarantines) of every batch that carried it — as a structured
//! [`Explanation`] (the `repro explain --json` shape), with
//! [`Explanation::render`] producing the human timeline. Works on a
//! full trace or a tail-sampled one: sampling keeps kept chains intact,
//! so an anomalous request explains identically either way; a
//! sampled-out request yields a one-line error saying so.

use crate::attribution::{Breakdown, Segment};
use crate::parse::parse_chrome_trace;
use crate::span::{Outcome, SpanForest};
use desim::SimTime;
use ncsw_obs::{Event, EventLog, Phase};
use serde::Serialize;
use std::fmt::Write as _;

/// One timeline (or batch-side) event of an [`Explanation`].
#[derive(Debug, Clone, Serialize)]
pub struct ExplainEvent {
    /// Offset from the request's arrival, ms.
    pub t_ms: f64,
    pub phase: String,
    /// Span duration; `None` for instant events.
    pub dur_ms: Option<f64>,
    pub lane: String,
    pub batch: Option<u64>,
    pub cause: Option<String>,
}

impl ExplainEvent {
    fn of(ev: &Event, t0: SimTime) -> ExplainEvent {
        ExplainEvent {
            t_ms: ev.start.since(t0).as_millis(),
            phase: ev.phase.name().to_string(),
            dur_ms: ev.end.map(|end| end.since(ev.start).as_millis()),
            lane: ev.lane.name(),
            batch: ev.ctx.batch_id,
            cause: ev.cause.map(|c| c.name().to_string()),
        }
    }
}

/// One of the nine telescoping latency segments.
#[derive(Debug, Clone, Serialize)]
pub struct ExplainSegment {
    pub segment: String,
    /// Exact nanoseconds (they sum to the total exactly).
    pub ns: u64,
    pub ms: f64,
    pub critical: bool,
}

/// The structured shape of `repro explain` (and its `--json` output):
/// one request's full causal story.
#[derive(Debug, Clone, Serialize)]
pub struct Explanation {
    pub id: u64,
    /// `completed` | `shed` | `incomplete`.
    pub outcome: String,
    /// Arrival instant, absolute ms into the run.
    pub arrive_ms: f64,
    pub latency_ms: Option<f64>,
    pub worker: Option<u32>,
    pub batch: Option<u64>,
    pub retries: u32,
    pub shed_cause: Option<String>,
    pub shed_after_ms: Option<f64>,
    /// The request's own events, chronological, offsets from arrival.
    pub timeline: Vec<ExplainEvent>,
    /// Hedges/quarantines/failovers on any batch that carried it.
    pub batch_side_events: Vec<ExplainEvent>,
    /// The nine exact segments; empty unless the request completed.
    pub segments: Vec<ExplainSegment>,
    /// Name of the critical (largest) segment, when completed.
    pub critical: Option<String>,
}

/// Build the structured explanation of `id` from a parsed event log.
pub fn explain(log: &EventLog, id: u64) -> Result<Explanation, String> {
    let evs = log.for_request(id);
    if evs.is_empty() {
        return Err(format!(
            "request {id} not in trace (wrong id, or dropped by tail sampling — \
             anomalous chains are always kept)"
        ));
    }
    let forest = SpanForest::build(log);
    let r = forest
        .requests
        .get(&id)
        .ok_or_else(|| format!("request {id} has events but no span tree"))?;
    let t0 = r.arrive;

    let batches: Vec<u64> =
        evs.iter().filter_map(|e| e.ctx.batch_id).fold(Vec::new(), |mut acc, b| {
            if !acc.contains(&b) {
                acc.push(b);
            }
            acc
        });
    let side: Vec<ExplainEvent> = log
        .events()
        .iter()
        .filter(|e| {
            e.ctx.request_id.is_none()
                && e.ctx.batch_id.is_some_and(|b| batches.contains(&b))
                && matches!(
                    e.phase,
                    Phase::Hedge
                        | Phase::HedgeWin
                        | Phase::HedgeCancel
                        | Phase::Quarantine
                        | Phase::Failover
                )
        })
        .map(|e| ExplainEvent::of(e, t0))
        .collect();

    let breakdown = Breakdown::of(r);
    let segments = breakdown
        .as_ref()
        .map(|b| {
            Segment::ALL
                .into_iter()
                .map(|s| ExplainSegment {
                    segment: s.name().to_string(),
                    ns: b.seg(s).nanos(),
                    ms: b.seg(s).as_millis(),
                    critical: s == b.critical,
                })
                .collect()
        })
        .unwrap_or_default();

    Ok(Explanation {
        id,
        outcome: match r.outcome() {
            Outcome::Completed => "completed",
            Outcome::Shed => "shed",
            Outcome::Incomplete => "incomplete",
        }
        .to_string(),
        arrive_ms: t0.as_millis(),
        latency_ms: r.latency().map(|d| d.as_millis()),
        worker: r.worker,
        batch: r.batch,
        retries: r.retries,
        shed_cause: r.shed_cause.map(|c| c.name().to_string()),
        shed_after_ms: r.shed_at.map(|t| t.since(t0).as_millis()),
        timeline: evs.iter().map(|e| ExplainEvent::of(e, t0)).collect(),
        batch_side_events: side,
        segments,
        critical: breakdown.map(|b| b.critical.name().to_string()),
    })
}

impl Explanation {
    /// The human timeline `repro explain` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();

        // Headline: how the story ended.
        match self.outcome.as_str() {
            "completed" => {
                let _ = writeln!(
                    out,
                    "request {}: completed in {:.3} ms on worker {} (batch {}){}",
                    self.id,
                    self.latency_ms.unwrap_or(0.0),
                    self.worker.map_or("?".to_string(), |w| w.to_string()),
                    self.batch.map_or("?".to_string(), |b| b.to_string()),
                    if self.retries > 0 {
                        format!(
                            ", {} retr{}",
                            self.retries,
                            if self.retries == 1 { "y" } else { "ies" }
                        )
                    } else {
                        String::new()
                    }
                );
            }
            "shed" => {
                let _ = writeln!(
                    out,
                    "request {}: shed ({}) {:.3} ms after arrival",
                    self.id,
                    self.shed_cause.as_deref().unwrap_or("unknown"),
                    self.shed_after_ms.unwrap_or(0.0),
                );
            }
            _ => {
                let _ =
                    writeln!(out, "request {}: incomplete in this trace (truncated run?)", self.id);
            }
        }

        // Chronological event timeline, offsets relative to arrival.
        let _ = writeln!(out, "\ntimeline (t=0 at arrival, {:.3} ms absolute):", self.arrive_ms);
        for ev in &self.timeline {
            let _ = write!(out, "  t+{:>9.3} ms  {:<12}", ev.t_ms, ev.phase);
            if let Some(d) = ev.dur_ms {
                let _ = write!(out, " {:>9.3} ms", d);
            } else {
                let _ = write!(out, " {:>12}", "·");
            }
            let _ = write!(out, "  {}", ev.lane);
            if let Some(b) = ev.batch {
                let _ = write!(out, "  batch {b}");
            }
            if let Some(c) = &ev.cause {
                let _ = write!(out, "  cause {c}");
            }
            out.push('\n');
        }

        if !self.batch_side_events.is_empty() {
            let _ = writeln!(out, "\nbatch side events:");
            for ev in &self.batch_side_events {
                let _ = writeln!(
                    out,
                    "  t+{:>9.3} ms  {:<12}  batch {}  {}",
                    ev.t_ms,
                    ev.phase,
                    ev.batch.unwrap_or(0),
                    ev.lane
                );
            }
        }

        // The nine telescoping segments of a completed request.
        if !self.segments.is_empty() {
            let total_ns: u64 = self.segments.iter().map(|s| s.ns).sum();
            let _ = writeln!(
                out,
                "\nlatency attribution ({:.3} ms total, exact):",
                total_ns as f64 / 1e6
            );
            let widest = self.segments.iter().map(|s| s.ns).max().unwrap_or(1).max(1);
            for s in &self.segments {
                let bar = "#".repeat(((s.ns * 24) / widest) as usize);
                let _ = writeln!(
                    out,
                    "  {:<14} {:>9.3} ms {}{}",
                    s.segment,
                    s.ms,
                    bar,
                    if s.critical { "  <- critical" } else { "" }
                );
            }
        }
        out
    }
}

/// Render the causal timeline of `id` from a parsed event log.
pub fn explain_request(log: &EventLog, id: u64) -> Result<String, String> {
    Ok(explain(log, id)?.render())
}

/// [`explain`] over Chrome trace-event JSON (full or sampled).
pub fn explain_chrome_json(json: &str, id: u64) -> Result<Explanation, String> {
    let log = parse_chrome_trace(json)?;
    explain(&log, id)
}

/// [`explain_request`] over Chrome trace-event JSON (full or sampled).
pub fn explain_chrome(json: &str, id: u64) -> Result<String, String> {
    Ok(explain_chrome_json(json, id)?.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncsw_obs::{chrome_trace, Ctx, Event, Lane, Recorder, ShedCause};

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    fn served_log() -> EventLog {
        let mut log = EventLog::new();
        let r = Ctx::request(7);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), r));
        log.record(Event::instant(Phase::Admit, Lane::Server, t(0), r));
        log.record(Event::instant(Phase::BatchClose, Lane::Queue, t(10), r.with_batch(0)));
        let a = r.with_batch(0).with_worker(1);
        log.record(Event::instant(Phase::Dispatch, Lane::Worker(1), t(10), a));
        log.record(Event::span(Phase::UsbWrite, Lane::Host { worker: 1, dev: 0 }, t(10), t(12), a));
        log.record(Event::span(Phase::Exec, Lane::Vpu { worker: 1, dev: 0 }, t(12), t(60), a));
        log.record(Event::span(Phase::UsbRead, Lane::Host { worker: 1, dev: 0 }, t(60), t(62), a));
        // A hedge launched against the same batch.
        let h = Ctx { request_id: None, batch_id: Some(0), worker: Some(2) };
        log.record(Event::span(Phase::Hedge, Lane::Worker(2), t(30), t(31), h));
        log.record(Event::instant(Phase::Complete, Lane::Server, t(62), a));
        log
    }

    #[test]
    fn explains_a_completed_request_with_segments_and_hedges() {
        let text = explain_request(&served_log(), 7).expect("request present");
        assert!(text.starts_with("request 7: completed in 62.000 ms on worker 1"), "{text}");
        assert!(text.contains("timeline"), "{text}");
        assert!(text.contains("exec"), "{text}");
        assert!(text.contains("batch side events"), "{text}");
        assert!(text.contains("Hedge"), "{text}");
        assert!(text.contains("latency attribution (62.000 ms total"), "{text}");
        assert!(text.contains("<- critical"), "{text}");
        // exec (48 ms) dominates this request.
        let crit_line = text.lines().find(|l| l.contains("<- critical")).expect("critical marker");
        assert!(crit_line.trim_start().starts_with("exec "), "{crit_line}");
    }

    #[test]
    fn structured_explanation_carries_the_same_story() {
        let e = explain(&served_log(), 7).expect("request present");
        assert_eq!(e.outcome, "completed");
        assert_eq!(e.latency_ms, Some(62.0));
        assert_eq!((e.worker, e.batch, e.retries), (Some(1), Some(0), 0));
        assert_eq!(e.timeline.len(), 8, "the request's own events, in order");
        assert_eq!(e.batch_side_events.len(), 1);
        assert_eq!(e.batch_side_events[0].phase, "Hedge");
        // Segments telescope exactly and name the critical one.
        assert_eq!(e.segments.len(), 9);
        assert_eq!(e.segments.iter().map(|s| s.ns).sum::<u64>(), 62_000_000);
        assert_eq!(e.critical.as_deref(), Some("exec"));
        assert!(e.segments.iter().any(|s| s.segment == "exec" && s.critical && s.ns == 48_000_000));
        // And it is what the JSON arm serializes.
        let json = serde_json::to_string_pretty(&e).expect("serialize");
        assert!(json.contains("\"critical\": \"exec\""), "{json}");
    }

    #[test]
    fn explains_a_shed_request_and_rejects_unknown_ids() {
        let mut log = EventLog::new();
        let r = Ctx::request(3);
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), r));
        log.record(
            Event::instant(Phase::Shed, Lane::Server, t(4), r).with_cause(ShedCause::Rejected),
        );
        let text = explain_request(&log, 3).unwrap();
        assert!(text.starts_with("request 3: shed (rejected) 4.000 ms after arrival"), "{text}");
        let e = explain(&log, 3).unwrap();
        assert_eq!(e.outcome, "shed");
        assert_eq!(e.shed_cause.as_deref(), Some("rejected"));
        assert!(e.segments.is_empty() && e.critical.is_none());
        let err = explain_request(&log, 99).unwrap_err();
        assert!(err.contains("request 99 not in trace"), "{err}");
        assert!(err.contains("sampling"), "{err}");
    }

    #[test]
    fn explain_round_trips_through_chrome_json() {
        let log = served_log();
        let direct = explain_request(&log, 7).unwrap();
        let via_json = explain_chrome(&chrome_trace(&log), 7).unwrap();
        assert_eq!(direct, via_json);
    }
}
