//! Paired A/B trace diffing with a machine-readable verdict.
//!
//! Two runs of the same seeded workload produce identical arrivals, so
//! their traces join exactly on request id and every latency delta is a
//! *paired* observation — policy A vs policy B on the same request, the
//! strongest comparison the determinism of the simulator buys us. The
//! verdict is symmetric by construction: `diff(a, b)` mirrors
//! `diff(b, a)` with Improved and Regressed swapped, and `diff(a, a)`
//! is all-neutral — both are property-tested.

use crate::attribution::{Analysis, Segment};
use serde::{Deserialize, Serialize};

/// Neutrality thresholds: a delta is Neutral unless it clears BOTH the
/// absolute floor (ignore sub-noise shifts) and the relative one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffConfig {
    /// Minimum |delta| in ms (or units of the metric) to be non-neutral.
    pub abs_floor: f64,
    /// Minimum |delta| as a percentage of `max(|a|, |b|)`.
    pub rel_pct: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig { abs_floor: 0.5, rel_pct: 5.0 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    Improved,
    Regressed,
    Neutral,
}

impl Verdict {
    pub const fn name(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "regressed",
            Verdict::Neutral => "neutral",
        }
    }
}

/// One metric compared across the two runs. `delta = b - a`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDelta {
    pub metric: String,
    pub a: f64,
    pub b: f64,
    pub delta: f64,
    /// Delta relative to `max(|a|, |b|)`, in percent (symmetric under
    /// swapping the runs).
    pub rel_pct: f64,
    pub verdict: Verdict,
    /// Whether this metric participates in the regression gate.
    pub gated: bool,
}

impl MetricDelta {
    fn of(
        metric: &str,
        a: f64,
        b: f64,
        lower_is_better: bool,
        gated: bool,
        cfg: &DiffConfig,
    ) -> Self {
        let delta = b - a;
        let denom = a.abs().max(b.abs());
        let rel_pct = if denom == 0.0 { 0.0 } else { delta / denom * 100.0 };
        let significant = delta.abs() >= cfg.abs_floor && rel_pct.abs() >= cfg.rel_pct;
        let verdict = if !significant {
            Verdict::Neutral
        } else if (delta < 0.0) == lower_is_better {
            Verdict::Improved
        } else {
            Verdict::Regressed
        };
        MetricDelta { metric: metric.to_string(), a, b, delta, rel_pct, verdict, gated }
    }
}

/// Per-request paired deltas, classified with the same thresholds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PerRequest {
    pub improved: usize,
    pub regressed: usize,
    pub neutral: usize,
    /// Mean of `latency(b) - latency(a)` over joined requests, ms.
    pub mean_delta_ms: f64,
    /// Largest single-request regression (positive) in ms.
    pub max_regression_ms: f64,
    /// Largest single-request improvement (positive) in ms.
    pub max_improvement_ms: f64,
}

/// The full diff of two runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDiff {
    /// Requests completed in both runs (the paired population).
    pub joined: usize,
    /// Completed only in run A / only in run B.
    pub only_a: usize,
    pub only_b: usize,
    pub config: DiffConfig,
    /// End-to-end metrics; `gated` rows drive [`TraceDiff::regression`].
    pub metrics: Vec<MetricDelta>,
    /// Per-segment mean deltas (informational, never gated).
    pub segments: Vec<MetricDelta>,
    pub per_request: PerRequest,
    /// True when any gated metric regressed — the CI exit-code signal.
    pub regression: bool,
}

/// Diff two analyses (`a` = baseline, `b` = candidate).
pub fn diff(a: &Analysis, b: &Analysis, cfg: &DiffConfig) -> TraceDiff {
    let mut metrics = Vec::new();
    let mut m = |name: &str, va: f64, vb: f64, lower: bool, gated: bool| {
        metrics.push(MetricDelta::of(name, va, vb, lower, gated, cfg));
    };
    m("latency_mean_ms", a.e2e.mean_ms, b.e2e.mean_ms, true, true);
    m("latency_p50_ms", a.e2e.p50_ms, b.e2e.p50_ms, true, true);
    m("latency_p95_ms", a.e2e.p95_ms, b.e2e.p95_ms, true, true);
    m("latency_p99_ms", a.e2e.p99_ms, b.e2e.p99_ms, true, true);
    m("latency_max_ms", a.e2e.max_ms, b.e2e.max_ms, true, false);
    m("completed", a.e2e.count as f64, b.e2e.count as f64, false, true);
    m("shed", a.shed.total() as f64, b.shed.total() as f64, true, true);
    // Energy deltas when both traces carry power lanes. Informational
    // (never gated): a policy trading joules for latency should fail
    // the gate only on the latency rows.
    if let (Some(ea), Some(eb)) = (&a.energy, &b.energy) {
        use ncsw_obs::joules;
        m("energy_fleet_j", joules(ea.fleet_pj), joules(eb.fleet_pj), true, false);
        m("energy_wasted_j", joules(ea.wasted_pj), joules(eb.wasted_pj), true, false);
        m("energy_idle_j", joules(ea.idle_pj), joules(eb.idle_pj), true, false);
        let jpr = |e: &crate::energy::EnergyAnalysis, n: usize| {
            if n == 0 {
                0.0
            } else {
                joules(e.fleet_pj) / n as f64
            }
        };
        m("j_per_inference", jpr(ea, a.e2e.count), jpr(eb, b.e2e.count), true, false);
    }

    let seg_mean = |x: &Analysis, s: Segment| x.table.rows[s as usize].mean_ms;
    let segments = Segment::ALL
        .into_iter()
        .map(|s| MetricDelta::of(s.name(), seg_mean(a, s), seg_mean(b, s), true, false, cfg))
        .collect();

    let mut per = PerRequest::default();
    let mut joined = 0usize;
    let mut only_a = 0usize;
    let mut sum_delta = 0.0f64;
    let b_by_id: std::collections::BTreeMap<u64, f64> =
        b.breakdowns.iter().map(|x| (x.id, x.total.as_millis())).collect();
    for ba in &a.breakdowns {
        let Some(&vb) = b_by_id.get(&ba.id) else {
            only_a += 1;
            continue;
        };
        let va = ba.total.as_millis();
        joined += 1;
        let d = MetricDelta::of("req", va, vb, true, false, cfg);
        match d.verdict {
            Verdict::Improved => per.improved += 1,
            Verdict::Regressed => per.regressed += 1,
            Verdict::Neutral => per.neutral += 1,
        }
        sum_delta += d.delta;
        if d.delta > 0.0 {
            per.max_regression_ms = per.max_regression_ms.max(d.delta);
        } else {
            per.max_improvement_ms = per.max_improvement_ms.max(-d.delta);
        }
    }
    let only_b = b.breakdowns.len() - joined;
    per.mean_delta_ms = if joined == 0 { 0.0 } else { sum_delta / joined as f64 };

    let regression =
        metrics.iter().any(|m: &MetricDelta| m.gated && m.verdict == Verdict::Regressed);
    TraceDiff {
        joined,
        only_a,
        only_b,
        config: *cfg,
        metrics,
        segments,
        per_request: per,
        regression,
    }
}

impl TraceDiff {
    /// Human-readable rendering (the `repro diff` stdout).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "joined {} requests ({} only in A, {} only in B); thresholds: \
             |delta| >= {} and >= {}%",
            self.joined, self.only_a, self.only_b, self.config.abs_floor, self.config.rel_pct
        );
        let _ = writeln!(
            out,
            "\n{:<16} {:>12} {:>12} {:>10} {:>8}  verdict",
            "metric", "A", "B", "delta", "rel"
        );
        for m in &self.metrics {
            let _ = writeln!(
                out,
                "{:<16} {:>12.3} {:>12.3} {:>+10.3} {:>+7.1}%  {}{}",
                m.metric,
                m.a,
                m.b,
                m.delta,
                m.rel_pct,
                m.verdict.name(),
                if m.gated { " (gated)" } else { "" }
            );
        }
        let _ = writeln!(out, "\nper-segment mean deltas:");
        for m in &self.segments {
            let _ = writeln!(
                out,
                "{:<16} {:>12.3} {:>12.3} {:>+10.3} {:>+7.1}%  {}",
                m.metric,
                m.a,
                m.b,
                m.delta,
                m.rel_pct,
                m.verdict.name()
            );
        }
        let p = &self.per_request;
        let _ = writeln!(
            out,
            "\nper-request: {} improved, {} regressed, {} neutral; mean delta {:+.3} ms, \
             worst regression {:.3} ms, best improvement {:.3} ms",
            p.improved,
            p.regressed,
            p.neutral,
            p.mean_delta_ms,
            p.max_regression_ms,
            p.max_improvement_ms
        );
        let _ = writeln!(
            out,
            "\nverdict: {}",
            if self.regression { "REGRESSED" } else { "no regression" }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn md(a: f64, b: f64) -> MetricDelta {
        MetricDelta::of("m", a, b, true, true, &DiffConfig::default())
    }

    #[test]
    fn thresholds_gate_the_verdict() {
        assert_eq!(md(100.0, 100.3).verdict, Verdict::Neutral, "below abs floor");
        assert_eq!(md(100.0, 102.0).verdict, Verdict::Neutral, "below rel pct");
        assert_eq!(md(100.0, 110.0).verdict, Verdict::Regressed);
        assert_eq!(md(110.0, 100.0).verdict, Verdict::Improved);
        assert_eq!(md(0.0, 0.0).verdict, Verdict::Neutral);
        // Higher-is-better flips direction.
        let m = MetricDelta::of("c", 100.0, 110.0, false, true, &DiffConfig::default());
        assert_eq!(m.verdict, Verdict::Improved);
    }

    #[test]
    fn verdicts_are_symmetric_under_swap() {
        for (a, b) in [(100.0, 110.0), (100.0, 100.2), (3.0, 0.0), (0.0, 3.0)] {
            let fwd = md(a, b);
            let rev = md(b, a);
            assert_eq!(fwd.delta, -rev.delta);
            let mirror = match fwd.verdict {
                Verdict::Improved => Verdict::Regressed,
                Verdict::Regressed => Verdict::Improved,
                Verdict::Neutral => Verdict::Neutral,
            };
            assert_eq!(rev.verdict, mirror, "a={a} b={b}");
        }
    }
}
