//! Folded-stacks export of the attribution — the input format of
//! Brendan Gregg's `flamegraph.pl` and of speedscope's "folded" importer:
//! one `frame;frame;frame value` line per stack, values here in
//! microseconds of attributed virtual time.
//!
//! Stacks are `serve;worker<N>;<segment>` for completed requests
//! (aggregated over the fleet) and `serve;shed;<cause>` for the queue
//! time burned by shed requests, so the width of each segment bar *is*
//! the attribution table drawn as a flamegraph.

use crate::attribution::{Analysis, Segment};
use crate::span::Outcome;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render the analysis as folded stacks. Deterministic: stacks are
/// emitted in sorted order, values are integer microseconds.
pub fn folded(a: &Analysis) -> String {
    // (worker, segment index) -> total ns.
    let mut by_worker: BTreeMap<(Option<u32>, usize), u64> = BTreeMap::new();
    for b in &a.breakdowns {
        for s in Segment::ALL {
            let ns = b.seg(s).nanos();
            if ns > 0 {
                *by_worker.entry((b.worker, s as usize)).or_insert(0) += ns;
            }
        }
    }
    let mut shed: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in a.forest.requests.values() {
        if r.outcome() == Outcome::Shed {
            let cause = r.shed_cause.map(|c| c.name()).unwrap_or("unknown");
            let wait = r.shed_at.map(|at| at.since(r.arrive).nanos()).unwrap_or(0);
            *shed.entry(cause).or_insert(0) += wait;
        }
    }
    let mut out = String::new();
    for ((worker, seg), ns) in &by_worker {
        let w = worker.map(|w| w.to_string()).unwrap_or_else(|| "?".to_string());
        let _ = writeln!(out, "serve;worker{w};{} {}", Segment::ALL[*seg].name(), ns / 1_000);
    }
    for (cause, ns) in &shed {
        let _ = writeln!(out, "serve;shed;{cause} {}", ns / 1_000);
    }
    out
}

/// The energy attribution as folded stacks, values in exact picojoules:
/// `serve;worker<N>;<segment>` for the energy attributed to completed
/// requests and `serve;wasted;worker<N>` for failed attempts' burn, so
/// bar widths are joules instead of time. Empty when the trace has no
/// power lanes.
pub fn folded_energy(a: &Analysis) -> String {
    let Some(e) = &a.energy else {
        return String::new();
    };
    let worker_of: BTreeMap<u64, Option<u32>> =
        a.breakdowns.iter().map(|b| (b.id, b.worker)).collect();
    let mut by_worker: BTreeMap<(Option<u32>, usize), u64> = BTreeMap::new();
    for r in &e.requests {
        let w = worker_of.get(&r.id).copied().flatten();
        for (seg, pj) in r.segs.iter().enumerate() {
            if *pj > 0 {
                *by_worker.entry((w, seg)).or_insert(0) += pj;
            }
        }
    }
    let mut out = String::new();
    for ((worker, seg), pj) in &by_worker {
        let w = worker.map(|w| w.to_string()).unwrap_or_else(|| "?".to_string());
        let _ = writeln!(out, "serve;worker{w};{} {pj}", Segment::ALL[*seg].name());
    }
    for l in &e.workers {
        let pj = l.wasted_pj();
        if pj > 0 {
            let _ = writeln!(out, "serve;wasted;worker{} {pj}", l.worker);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{DeviceSpans, RequestSpan, SpanForest};
    use desim::SimTime;
    use ncsw_obs::ShedCause;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    #[test]
    fn folded_stacks_cover_completed_and_shed_requests() {
        let mut forest = SpanForest::default();
        forest.requests.insert(
            1,
            RequestSpan {
                id: 1,
                arrive: t(0),
                batch_close: Some(t(10)),
                dispatches: vec![(t(10), Some(0), Some(3))],
                complete: Some(t(30)),
                batch: Some(0),
                worker: Some(3),
                dev: DeviceSpans { exec: Some((t(12), t(28))), ..DeviceSpans::default() },
                ..RequestSpan::default()
            },
        );
        forest.requests.insert(
            2,
            RequestSpan {
                id: 2,
                arrive: t(5),
                shed_at: Some(t(9)),
                shed_cause: Some(ShedCause::Evicted),
                ..RequestSpan::default()
            },
        );
        let a = Analysis::from_forest(forest);
        let f = folded(&a);
        assert!(f.contains("serve;worker3;formation 10000\n"), "{f}");
        assert!(f.contains("serve;worker3;exec 16000\n"), "{f}");
        assert!(f.contains("serve;shed;evicted 4000\n"), "{f}");
        // Total attributed µs equals the completed request's latency.
        let total: u64 = f
            .lines()
            .filter(|l| l.starts_with("serve;worker"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 30_000);
    }
}
