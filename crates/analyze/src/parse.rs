//! Chrome trace-event JSON → [`EventLog`].
//!
//! The exporter in `ncsw-obs` is lossless for what the analyzer needs:
//! lanes live in `thread_name` metadata, phases are event names,
//! timestamps are exact microseconds with a 3-decimal nanosecond
//! remainder, and the request context rides in `args`. This module
//! inverts it so `repro analyze` / `repro diff` work from trace files
//! alone — no access to the run that produced them.

use desim::SimTime;
use ncsw_obs::{Ctx, Event, EventLog, Lane, Phase, Recorder, ShedCause};
use serde_json::Value;
use std::collections::BTreeMap;

fn number(v: &Value) -> Option<f64> {
    match v {
        Value::U64(u) => Some(*u as f64),
        Value::I64(i) => Some(*i as f64),
        Value::F64(f) => Some(*f),
        _ => None,
    }
}

/// Exported timestamps are `<us>.<ns%1000>` — exact nanoseconds.
fn ns_of(us: f64) -> u64 {
    (us * 1_000.0).round() as u64
}

/// Parse an exported Chrome trace back into an [`EventLog`]. Strict:
/// unknown phase names, unnamed tracks or malformed timestamps are
/// errors, not skips — a trace that parses here is one the analyzer
/// fully understands.
pub fn parse_chrome_trace(json: &str) -> Result<EventLog, String> {
    let _prof = ncsw_obs::prof::scope("analyze.parse");
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_seq)
        .ok_or("missing traceEvents array".to_string())?;

    // First pass: tid → lane from thread_name metadata.
    let mut lanes: BTreeMap<u64, Lane> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.get("ph").and_then(Value::as_str) != Some("M")
            || ev.get("name").and_then(Value::as_str) != Some("thread_name")
        {
            continue;
        }
        let tid =
            ev.get("tid").and_then(number).ok_or(format!("metadata event {i}: missing tid"))?
                as u64;
        let name = ev
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(Value::as_str)
            .ok_or(format!("metadata event {i}: thread_name without a name"))?;
        let lane = Lane::parse(name).ok_or(format!("metadata event {i}: unknown lane {name:?}"))?;
        lanes.insert(tid, lane);
    }

    let mut log = EventLog::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Value::as_str).ok_or(format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        if ph != "X" && ph != "i" && ph != "C" {
            return Err(format!("event {i}: unexpected ph {ph:?}"));
        }
        let tid = ev.get("tid").and_then(number).ok_or(format!("event {i}: missing tid"))? as u64;
        let lane = *lanes.get(&tid).ok_or(format!("event {i}: tid {tid} has no thread_name"))?;
        let ts = ev.get("ts").and_then(number).ok_or(format!("event {i}: missing ts"))?;
        let start = SimTime(ns_of(ts));
        let args = ev.get("args");
        let arg = |k: &str| args.and_then(|a| a.get(k)).and_then(number);
        if ph == "C" {
            // Counter sample: the exporter names it after its own lane
            // and carries the reading in args.mw.
            let name =
                ev.get("name").and_then(Value::as_str).ok_or(format!("event {i}: missing name"))?;
            if name != lane.name() {
                return Err(format!("event {i}: counter name {name:?} != lane {:?}", lane.name()));
            }
            let mw = arg("mw").ok_or(format!("event {i}: counter without args.mw"))?;
            let ctx = Ctx {
                request_id: arg("request_id").map(|v| v as u64),
                batch_id: arg("batch_id").map(|v| v as u64),
                worker: arg("worker").map(|v| v as u32),
            };
            log.record(Event::counter(lane, start, mw as u64, ctx));
            continue;
        }
        let name =
            ev.get("name").and_then(Value::as_str).ok_or(format!("event {i}: missing name"))?;
        let phase = Phase::parse(name).ok_or(format!("event {i}: unknown phase {name:?}"))?;
        let end = if ph == "X" {
            let dur =
                ev.get("dur").and_then(number).ok_or(format!("event {i}: span without dur"))?;
            if dur < 0.0 {
                return Err(format!("event {i}: negative dur"));
            }
            Some(SimTime(start.nanos() + ns_of(dur)))
        } else {
            None
        };
        let ctx = Ctx {
            request_id: arg("request_id").map(|v| v as u64),
            batch_id: arg("batch_id").map(|v| v as u64),
            worker: arg("worker").map(|v| v as u32),
        };
        let cause = match args.and_then(|a| a.get("cause")).and_then(Value::as_str) {
            Some(c) => Some(ShedCause::parse(c).ok_or(format!("event {i}: unknown cause {c:?}"))?),
            None => None,
        };
        let mut event = Event { phase, lane, start, end, ctx, cause: None, value: None };
        if let Some(c) = cause {
            event = event.with_cause(c);
        }
        log.record(event);
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncsw_obs::chrome_trace;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(1_500), Ctx::request(0)));
        log.record(Event::span(
            Phase::Exec,
            Lane::Vpu { worker: 0, dev: 2 },
            SimTime(2_000),
            SimTime(102_500),
            Ctx::request(0).with_batch(1).with_worker(0),
        ));
        log.record(
            Event::span(Phase::Shed, Lane::Queue, t(1), t(5), Ctx::request(9))
                .with_cause(ShedCause::Evicted),
        );
        log.record(Event::counter(
            Lane::Power(0),
            SimTime(2_000),
            900,
            Ctx::NONE.with_batch(1).with_worker(0),
        ));
        log
    }

    #[test]
    fn export_parse_round_trip_is_lossless() {
        let log = sample_log();
        let back = parse_chrome_trace(&chrome_trace(&log)).expect("own export must parse");
        assert_eq!(back.events(), log.events());
    }

    #[test]
    fn strict_about_unknown_names() {
        let json = chrome_trace(&sample_log());
        let bad = json.replace("\"name\":\"Arrive\"", "\"name\":\"Arrived\"");
        assert!(parse_chrome_trace(&bad).unwrap_err().contains("unknown phase"));
        let bad = json.replace("\"cause\":\"evicted\"", "\"cause\":\"vibes\"");
        assert!(parse_chrome_trace(&bad).unwrap_err().contains("unknown cause"));
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{}").is_err());
    }
}
