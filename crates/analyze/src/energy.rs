//! Exact energy attribution from the trace's power lanes.
//!
//! The serving loop's [`ncsw_obs::EnergyMeter`] exports each worker's
//! power draw as a step function of `PowerSample` counter events on a
//! per-worker [`Lane::Power`] lane. This module re-integrates those
//! samples — the trace alone recovers the *exact* picojoule ledger the
//! server accounted, no access to the run required — and then mirrors
//! the latency attribution with an energy attribution:
//!
//! - each busy span is classified **active** (its batch id appears on a
//!   `Complete` event) or **wasted** (a timed-out or failed attempt:
//!   energy burned, latency never attributed);
//! - every active span's energy is split exactly across its batch
//!   members (integer division, remainder to the lowest request ids),
//!   and each member's share is split across the nine telescoping
//!   latency [`Segment`]s by nanosecond overlap with the busy span;
//! - all splits are integer-exact, so the conservation laws are `u64`
//!   equalities: per-request segments sum to the request's share, the
//!   shares sum to the fleet's active energy, and
//!   `active + wasted + idle == integrated fleet energy`.

use crate::attribution::{Breakdown, Segment};
use crate::span::SpanForest;
use desim::SimTime;
use ncsw_obs::{EventLog, Lane, Phase};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One busy span reconstructed from a worker's power lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusySpan {
    pub batch: u64,
    pub start: SimTime,
    pub end: SimTime,
    /// Draw during the span, milliwatts.
    pub mw: u64,
    /// True when no completion carries this batch id — a failed
    /// attempt whose energy is charged but never attributed.
    pub wasted: bool,
}

impl BusySpan {
    /// Exact span energy: `mW × ns == pJ`.
    pub fn pj(&self) -> u64 {
        self.mw * (self.end.nanos() - self.start.nanos())
    }
}

/// One worker's power lane, re-integrated.
#[derive(Debug, Clone)]
pub struct WorkerLedger {
    pub worker: u32,
    /// Gated draw between busy spans (the lane's first sample).
    pub idle_mw: u64,
    /// Exact step-function integral over the sampled window.
    pub total_pj: u64,
    pub busy: Vec<BusySpan>,
    /// First and last sample instants (epoch and energy horizon).
    pub from: SimTime,
    pub until: SimTime,
}

impl WorkerLedger {
    pub fn active_pj(&self) -> u64 {
        self.busy.iter().filter(|s| !s.wasted).map(BusySpan::pj).sum()
    }

    pub fn wasted_pj(&self) -> u64 {
        self.busy.iter().filter(|s| s.wasted).map(BusySpan::pj).sum()
    }
}

/// One completed request's exact energy share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestEnergy {
    pub id: u64,
    /// The request's share of its batch's busy energy, picojoules.
    pub pj: u64,
    /// Split across [`Segment::ALL`]; sums to `pj` exactly.
    pub segs: [u64; 9],
}

/// The energy view of one trace. `None` from [`EnergyAnalysis::of`]
/// when the trace predates power lanes.
#[derive(Debug, Clone)]
pub struct EnergyAnalysis {
    pub workers: Vec<WorkerLedger>,
    /// Σ per-worker integrals — the trace's total device energy.
    pub fleet_pj: u64,
    /// Busy energy of spans whose batch completed.
    pub active_pj: u64,
    /// Busy energy of failed attempts.
    pub wasted_pj: u64,
    /// Everything else: gated draw over the horizon.
    pub idle_pj: u64,
    /// Σ per-request shares. Equals `active_pj` exactly — the
    /// conservation law the property tests enforce.
    pub attributed_pj: u64,
    /// Per-request shares, ordered by request id.
    pub requests: Vec<RequestEnergy>,
}

/// Overlap of two half-open intervals, in nanoseconds.
fn overlap(a0: u64, a1: u64, b0: u64, b1: u64) -> u64 {
    a1.min(b1).saturating_sub(a0.max(b0))
}

/// Split `share` pJ across the nine segments of `b` (whose boundaries
/// start at `arrive`) weighted by overlap with the busy span. Integer
/// floor division with the remainder going to the earliest overlapping
/// segments, so the parts sum to `share` exactly. A request whose
/// segments never overlap its batch's busy span (clock skew cannot
/// happen in the simulator, but a truncated trace can) charges
/// everything to `Completion`.
fn split_segments(b: &Breakdown, arrive: SimTime, span: &BusySpan, share: u64) -> [u64; 9] {
    let mut weights = [0u64; 9];
    let mut t = arrive.nanos();
    for s in Segment::ALL {
        let end = t + b.seg(s).nanos();
        weights[s as usize] = overlap(t, end, span.start.nanos(), span.end.nanos());
        t = end;
    }
    let total_w: u64 = weights.iter().sum();
    let mut out = [0u64; 9];
    if total_w == 0 {
        out[Segment::Completion as usize] = share;
        return out;
    }
    let mut assigned = 0u64;
    for i in 0..9 {
        out[i] = (share as u128 * weights[i] as u128 / total_w as u128) as u64;
        assigned += out[i];
    }
    // Each floor loses < 1 pJ, so the remainder is smaller than the
    // number of overlapping segments.
    let mut rem = share - assigned;
    for i in 0..9 {
        if rem == 0 {
            break;
        }
        if weights[i] > 0 {
            out[i] += 1;
            rem -= 1;
        }
    }
    out
}

impl EnergyAnalysis {
    /// Re-integrate the power lanes of `log` and attribute the active
    /// energy to the completed requests of `forest`/`breakdowns`.
    pub fn of(log: &EventLog, forest: &SpanForest, breakdowns: &[Breakdown]) -> Option<Self> {
        // Batch ids that produced completions, and their members.
        let mut members: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for r in forest.requests.values() {
            if let (Some(_), Some(b)) = (r.complete, r.batch) {
                members.entry(b).or_default().push(r.id);
            }
        }
        let successful: BTreeSet<u64> = members.keys().copied().collect();

        // Per-lane samples, in record order (the exporter emits each
        // lane's step function in time order).
        let mut lanes: BTreeMap<u32, Vec<(SimTime, u64, Option<u64>)>> = BTreeMap::new();
        for ev in log.events() {
            if ev.phase != Phase::PowerSample {
                continue;
            }
            if let Lane::Power(w) = ev.lane {
                lanes.entry(w).or_default().push((
                    ev.start,
                    ev.value.unwrap_or(0),
                    ev.ctx.batch_id,
                ));
            }
        }
        if lanes.is_empty() {
            return None;
        }

        let mut workers = Vec::new();
        for (w, samples) in &lanes {
            let mut total_pj = 0u64;
            let mut busy = Vec::new();
            for pair in samples.windows(2) {
                let ((t0, mw, batch), (t1, _, _)) = (pair[0], pair[1]);
                total_pj += mw * (t1.nanos() - t0.nanos());
                if let Some(b) = batch {
                    busy.push(BusySpan {
                        batch: b,
                        start: t0,
                        end: t1,
                        mw,
                        wasted: !successful.contains(&b),
                    });
                }
            }
            workers.push(WorkerLedger {
                worker: *w,
                idle_mw: samples.first().map(|s| s.1).unwrap_or(0),
                total_pj,
                busy,
                from: samples.first().map(|s| s.0).unwrap_or(SimTime::ZERO),
                until: samples.last().map(|s| s.0).unwrap_or(SimTime::ZERO),
            });
        }

        let fleet_pj: u64 = workers.iter().map(|l| l.total_pj).sum();
        let active_pj: u64 = workers.iter().map(WorkerLedger::active_pj).sum();
        let wasted_pj: u64 = workers.iter().map(WorkerLedger::wasted_pj).sum();
        let idle_pj = fleet_pj - active_pj - wasted_pj;

        // Attribute every active span to its batch members.
        let by_id: BTreeMap<u64, &Breakdown> = breakdowns.iter().map(|b| (b.id, b)).collect();
        let mut requests: BTreeMap<u64, RequestEnergy> = BTreeMap::new();
        for ledger in &workers {
            for span in ledger.busy.iter().filter(|s| !s.wasted) {
                let ids = &members[&span.batch];
                let total = span.pj();
                let base = total / ids.len() as u64;
                let rem = total % ids.len() as u64;
                for (i, id) in ids.iter().enumerate() {
                    let share = base + u64::from((i as u64) < rem);
                    let e = requests.entry(*id).or_insert(RequestEnergy {
                        id: *id,
                        pj: 0,
                        segs: [0; 9],
                    });
                    e.pj += share;
                    if let (Some(b), Some(r)) = (by_id.get(id), forest.requests.get(id)) {
                        for (s, pj) in split_segments(b, r.arrive, span, share).iter().enumerate() {
                            e.segs[s] += pj;
                        }
                    } else {
                        // Member without a breakdown (truncated trace):
                        // keep the total exact via Completion.
                        e.segs[Segment::Completion as usize] += share;
                    }
                }
            }
        }
        let requests: Vec<RequestEnergy> = requests.into_values().collect();
        let attributed_pj = requests.iter().map(|r| r.pj).sum();

        Some(EnergyAnalysis {
            workers,
            fleet_pj,
            active_pj,
            wasted_pj,
            idle_pj,
            attributed_pj,
            requests,
        })
    }

    /// Σ attributed picojoules per segment, mirroring the latency
    /// attribution table.
    pub fn segment_pj(&self) -> [u64; 9] {
        let mut out = [0u64; 9];
        for r in &self.requests {
            for (i, pj) in r.segs.iter().enumerate() {
                out[i] += pj;
            }
        }
        out
    }

    /// Human-readable rendering appended to the analysis report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "energy: fleet {:.3} J = active {:.3} + wasted {:.3} + idle {:.3} \
             ({} pJ exact; {:.1}% of device energy attributed to requests)",
            ncsw_obs::joules(self.fleet_pj),
            ncsw_obs::joules(self.active_pj),
            ncsw_obs::joules(self.wasted_pj),
            ncsw_obs::joules(self.idle_pj),
            self.fleet_pj,
            if self.fleet_pj == 0 {
                0.0
            } else {
                self.attributed_pj as f64 / self.fleet_pj as f64 * 100.0
            },
        );
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>10} {:>8}",
            "worker", "energy_j", "active_j", "wasted_j", "spans"
        );
        for l in &self.workers {
            let _ = writeln!(
                out,
                "w{:<7} {:>10.3} {:>10.3} {:>10.3} {:>8}",
                l.worker,
                ncsw_obs::joules(l.total_pj),
                ncsw_obs::joules(l.active_pj()),
                ncsw_obs::joules(l.wasted_pj()),
                l.busy.len()
            );
        }
        let seg = self.segment_pj();
        let _ = writeln!(out, "\n{:<15} {:>12} {:>7}", "segment", "energy_j", "share");
        for s in Segment::ALL {
            let pj = seg[s as usize];
            let _ = writeln!(
                out,
                "{:<15} {:>12.6} {:>6.1}%",
                s.name(),
                ncsw_obs::joules(pj),
                if self.attributed_pj == 0 {
                    0.0
                } else {
                    pj as f64 / self.attributed_pj as f64 * 100.0
                },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::Analysis;
    use ncsw_obs::{Ctx, EnergyMeter, EnergyProfile, Event, Recorder};

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// One VPU worker serving a 3-member batch, plus a wasted
    /// (timed-out) attempt that never completed.
    fn metered_log() -> EventLog {
        let mut log = EventLog::new();
        for id in [0u64, 1, 2] {
            let r = Ctx::request(id);
            log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), r));
            log.record(Event::instant(Phase::BatchClose, Lane::Queue, t(10), r.with_batch(1)));
            log.record(Event::instant(
                Phase::Dispatch,
                Lane::Worker(0),
                t(10),
                r.with_batch(1).with_worker(0),
            ));
            log.record(Event::instant(
                Phase::Complete,
                Lane::Server,
                t(40),
                r.with_batch(1).with_worker(0),
            ));
        }
        let mut m = EnergyMeter::new(vec![EnergyProfile::new("vpu", 900, 172, 2_500)], t(0));
        m.charge(0, t(10), t(40), 1, false);
        m.charge(0, t(50), t(60), 2, true);
        m.record_into(&mut log, t(100));
        log
    }

    #[test]
    fn trace_reintegration_matches_the_meter_exactly() {
        let a = Analysis::of(&metered_log());
        let ea = a.energy.as_ref().expect("power lanes present");
        // 30 ms busy + 10 ms wasted @900 mW, 60 ms idle @172 mW.
        assert_eq!(ea.active_pj, 900 * 30_000_000);
        assert_eq!(ea.wasted_pj, 900 * 10_000_000);
        assert_eq!(ea.idle_pj, 172 * 60_000_000);
        assert_eq!(ea.fleet_pj, ea.active_pj + ea.wasted_pj + ea.idle_pj);
        assert_eq!(ea.attributed_pj, ea.active_pj);
    }

    #[test]
    fn batch_energy_splits_exactly_across_members() {
        let a = Analysis::of(&metered_log());
        let ea = a.energy.as_ref().unwrap();
        assert_eq!(ea.requests.len(), 3);
        let total: u64 = ea.requests.iter().map(|r| r.pj).sum();
        assert_eq!(total, ea.active_pj);
        // 27e9 pJ over 3 members: exact thirds here.
        assert_eq!(ea.requests[0].pj, 9_000_000_000);
        for r in &ea.requests {
            assert_eq!(r.segs.iter().sum::<u64>(), r.pj, "request {}", r.id);
        }
    }

    #[test]
    fn remainders_go_to_the_lowest_request_ids() {
        // 10 pJ over 3 members -> 4, 3, 3.
        let span = BusySpan { batch: 0, start: SimTime(0), end: SimTime(10), mw: 1, wasted: false };
        assert_eq!(span.pj(), 10);
        let base = span.pj() / 3;
        let rem = span.pj() % 3;
        let shares: Vec<u64> = (0..3).map(|i| base + u64::from((i as u64) < rem)).collect();
        assert_eq!(shares, vec![4, 3, 3]);
    }

    #[test]
    fn non_overlapping_share_lands_in_completion() {
        let b = Breakdown {
            id: 0,
            total: desim::Duration::from_millis(10.0),
            segs: [desim::Duration::ZERO; 9],
            critical: Segment::Formation,
            worker: Some(0),
            retries: 0,
        };
        let span = BusySpan { batch: 0, start: t(50), end: t(60), mw: 900, wasted: false };
        let split = split_segments(&b, t(0), &span, 1_000);
        assert_eq!(split[Segment::Completion as usize], 1_000);
        assert_eq!(split.iter().sum::<u64>(), 1_000);
    }

    #[test]
    fn pre_energy_traces_have_no_energy_block() {
        let mut log = EventLog::new();
        log.record(Event::instant(Phase::Arrive, Lane::Server, t(0), Ctx::request(0)));
        assert!(Analysis::of(&log).energy.is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::attribution::Analysis;
    use ncsw_obs::{Ctx, EnergyMeter, EnergyProfile, Event, Recorder};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Conservation on randomized server-shaped streams: the trace
        /// re-integration equals the meter's integral, attribution
        /// equals the active energy, and every request's segment split
        /// telescopes — all as exact u64 equalities.
        #[test]
        fn attribution_conserves_energy(
            batches in prop::collection::vec(
                // (worker, gap ns, len ns, members, wasted)
                (0u32..2, 0u64..40_000, 1u64..60_000, 1usize..4, any::<bool>()),
                1..16),
        ) {
            let profiles = vec![
                EnergyProfile::new("vpu", 900, 172, 2_500),
                EnergyProfile::new("cpu", 80_000, 15_000, 80_000),
            ];
            let mut m = EnergyMeter::new(profiles, SimTime(0));
            let mut log = EventLog::new();
            let mut cursor = [0u64; 2];
            let mut next_id = 0u64;
            for (bid, &(w, gap, len, members, wasted)) in batches.iter().enumerate() {
                let bid = bid as u64;
                let start = SimTime(cursor[w as usize] + gap);
                let end = SimTime(start.nanos() + len);
                cursor[w as usize] = end.nanos();
                m.charge(w, start, end, bid, wasted);
                for _ in 0..members {
                    let r = Ctx::request(next_id);
                    next_id += 1;
                    log.record(Event::instant(Phase::Arrive, Lane::Server, SimTime(0), r));
                    log.record(Event::instant(
                        Phase::Dispatch, Lane::Worker(w), start,
                        r.with_batch(bid).with_worker(w)));
                    if !wasted {
                        log.record(Event::instant(
                            Phase::Complete, Lane::Server, end,
                            r.with_batch(bid).with_worker(w)));
                    }
                }
            }
            let horizon = SimTime(m.busy_horizon().nanos() + 10_000);
            m.record_into(&mut log, horizon);

            let a = Analysis::of(&log);
            let ea = a.energy.as_ref().expect("power lanes recorded");
            let meter_fleet: u64 = (0..2).map(|w| m.worker_pj(w, horizon)).sum();
            prop_assert_eq!(ea.fleet_pj, meter_fleet);
            let t = m.totals(horizon);
            prop_assert_eq!(ea.active_pj, t.active_pj);
            prop_assert_eq!(ea.wasted_pj, t.wasted_pj);
            prop_assert_eq!(ea.idle_pj, t.idle_pj);
            prop_assert_eq!(ea.attributed_pj, ea.active_pj);
            prop_assert_eq!(
                ea.fleet_pj,
                ea.attributed_pj + ea.wasted_pj + ea.idle_pj
            );
            for r in &ea.requests {
                prop_assert_eq!(r.segs.iter().sum::<u64>(), r.pj);
            }
        }
    }
}
