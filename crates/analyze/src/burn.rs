//! Multi-window SLO burn-rate alerting over the sampled time series.
//!
//! The classic SRE pattern: page only when the error budget is burning
//! fast *right now* (short window — catches real incidents quickly) AND
//! has been burning for a while (long window — rejects single-sample
//! blips). Both conditions are evaluated per sample over trailing means
//! of the `slo_burn` column; consecutive alerting samples merge into
//! one [`AlertWindow`], which `repro serve` also exports as `SloAlert`
//! spans on the `alerts` lane of the Chrome trace.

use desim::SimTime;
use ncsw_obs::{Ctx, Event, Lane, Phase, TimeSeries};
use serde::{Deserialize, Serialize};

/// Thresholds for the two-window burn alert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnConfig {
    /// Samples in the fast (short) trailing window.
    pub fast_samples: usize,
    /// Samples in the slow (long) trailing window.
    pub slow_samples: usize,
    /// Minimum mean miss fraction over the fast window.
    pub fast_burn: f64,
    /// Minimum mean miss fraction over the slow window.
    pub slow_burn: f64,
}

impl Default for BurnConfig {
    fn default() -> Self {
        BurnConfig { fast_samples: 3, slow_samples: 12, fast_burn: 0.5, slow_burn: 0.25 }
    }
}

/// One merged alert window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertWindow {
    /// First alerting sample boundary.
    pub from: SimTime,
    /// Last alerting sample boundary.
    pub until: SimTime,
    /// Peak fast-window burn inside the window.
    pub peak_fast: f64,
    /// Peak slow-window burn inside the window.
    pub peak_slow: f64,
}

fn trailing_mean(v: &[f64], i: usize, n: usize) -> f64 {
    let lo = (i + 1).saturating_sub(n);
    let w = &v[lo..=i];
    w.iter().sum::<f64>() / w.len() as f64
}

/// Compute merged burn-rate alert windows from a sampled series.
pub fn burn_alerts(ts: &TimeSeries, cfg: &BurnConfig) -> Vec<AlertWindow> {
    let burns: Vec<f64> = ts.samples.iter().map(|s| s.slo_burn).collect();
    let mut out: Vec<AlertWindow> = Vec::new();
    let mut open = false;
    // No verdict until the slower window has a full history — "has
    // been burning for a while" is meaningless two samples in.
    let need = cfg.fast_samples.max(cfg.slow_samples).max(1);
    for i in 0..burns.len() {
        let fast = trailing_mean(&burns, i, cfg.fast_samples.max(1));
        let slow = trailing_mean(&burns, i, cfg.slow_samples.max(1));
        let firing = i + 1 >= need && fast >= cfg.fast_burn && slow >= cfg.slow_burn;
        let t = ts.samples[i].t;
        if firing {
            if open {
                let w = out.last_mut().unwrap();
                w.until = t;
                w.peak_fast = w.peak_fast.max(fast);
                w.peak_slow = w.peak_slow.max(slow);
            } else {
                out.push(AlertWindow { from: t, until: t, peak_fast: fast, peak_slow: slow });
                open = true;
            }
        } else {
            open = false;
        }
    }
    out
}

/// Render alert windows as `SloAlert` spans on the `alerts` lane, ready
/// to append to an [`ncsw_obs::EventLog`] before export.
pub fn alert_events(alerts: &[AlertWindow]) -> Vec<Event> {
    alerts
        .iter()
        .map(|w| Event::span(Phase::SloAlert, Lane::Alerts, w.from, w.until, Ctx::NONE))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Duration;
    use ncsw_obs::TimeSeriesBuilder;

    fn series(burns: &[f64]) -> TimeSeries {
        // Build a series with the given per-window burn values by
        // feeding one completion per window (miss or hit).
        let iv = Duration::from_millis(10.0);
        let slo = Duration::from_millis(5.0);
        let mut b = TimeSeriesBuilder::new(vec![], SimTime::ZERO, iv, slo);
        let mut t = SimTime::ZERO;
        for &burn in burns {
            let lat = if burn > 0.5 { Duration::from_millis(9.0) } else { Duration::ZERO };
            b.on_complete(lat);
            t += iv;
            b.advance(t, 0);
        }
        b.finish(t, 0)
    }

    #[test]
    fn needs_both_windows_to_fire() {
        let cfg = BurnConfig { fast_samples: 1, slow_samples: 3, fast_burn: 1.0, slow_burn: 0.5 };
        // One hot sample amid cold ones: slow window rejects it.
        let blip = series(&[0.0, 1.0, 0.0, 0.0]);
        assert!(burn_alerts(&blip, &cfg).is_empty());
        // Sustained burn fires once the slow window catches up.
        let sustained = series(&[1.0, 1.0, 1.0, 1.0, 0.0]);
        let alerts = burn_alerts(&sustained, &cfg);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].from, SimTime::ZERO + Duration::from_millis(30.0));
        assert_eq!(alerts[0].until, SimTime::ZERO + Duration::from_millis(40.0));
        assert!((alerts[0].peak_fast - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consecutive_samples_merge_and_gaps_split() {
        let cfg = BurnConfig { fast_samples: 1, slow_samples: 1, fast_burn: 0.9, slow_burn: 0.9 };
        let ts = series(&[1.0, 1.0, 0.0, 1.0]);
        let alerts = burn_alerts(&ts, &cfg);
        assert_eq!(alerts.len(), 2);
        let evs = alert_events(&alerts);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].phase, Phase::SloAlert);
        assert_eq!(evs[0].lane, Lane::Alerts);
        assert_eq!(evs[0].start, alerts[0].from);
    }
}
