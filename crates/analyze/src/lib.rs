//! # ncsw-analyze — answers from the phase-event stream
//!
//! `ncsw-obs` records what happened; this crate answers *why the p99
//! was what it was*. It consumes the flat [`ncsw_obs::EventLog`] (or an
//! exported Chrome trace fed back through [`parse_chrome_trace`]) and
//! produces:
//!
//! - [`span::SpanForest`] — the per-request span tree: each request's
//!   Arrive→Admit→Enqueue→BatchClose→Dispatch→UsbWrite→Exec→UsbRead→
//!   Complete chain reconstructed into typed spans, with Shed, Failover
//!   and retry side-branches attached, plus circuit-breaker outage
//!   windows.
//! - [`attribution::Analysis`] — exact latency attribution: every
//!   completed request's end-to-end latency split into telescoping
//!   [`Segment`]s that sum to the total *exactly* (no lost or
//!   double-counted nanoseconds), the deterministic critical segment
//!   per request, and an aggregated attribution table with exact
//!   p50/p95/p99 per segment.
//! - [`energy::EnergyAnalysis`] — exact energy attribution from the
//!   per-worker power lanes: the trace's `PowerSample` counters are
//!   re-integrated into the same picojoule ledger the server
//!   accounted, active spans are split across batch members and the
//!   nine latency segments with integer-exact remainder handling, and
//!   `attributed + wasted + idle == fleet` holds as a `u64` equality.
//! - [`flame::folded`] — the attribution as folded stacks for
//!   flamegraph tooling (`repro analyze --flame out.folded`);
//!   [`flame::folded_energy`] is the same shape with picojoule values.
//! - [`whatif`] — causal what-if profiling: counterfactual predictions
//!   ("component X at `f`× speed") replayed analytically through the
//!   nine-segment attribution, with per-component bottleneck ranking.
//!   Queue-blind by construction; `vpu-bench`'s E24 experiment
//!   validates each prediction against an actually-rescaled re-run.
//! - [`diff`] — paired A/B trace diffing: join two same-seed runs on
//!   request id, per-request and per-phase deltas, and a
//!   machine-readable improved/regressed/neutral verdict with
//!   configurable thresholds (the CI perf-regression gate).
//! - [`burn`] — multi-window SLO burn-rate alerts derived from the
//!   sampled [`ncsw_obs::TimeSeries`], exportable as `SloAlert` spans
//!   on the `alerts` lane of the Chrome trace.

pub mod attribution;
pub mod burn;
pub mod diff;
pub mod energy;
pub mod explain;
pub mod flame;
pub mod parse;
pub mod span;
pub mod whatif;

pub use attribution::{
    Analysis, AttributionTable, Breakdown, E2e, Segment, SegmentRow, ShedCounts,
};
pub use burn::{alert_events, burn_alerts, AlertWindow, BurnConfig};
pub use diff::{diff, DiffConfig, MetricDelta, TraceDiff, Verdict};
pub use energy::{BusySpan, EnergyAnalysis, RequestEnergy, WorkerLedger};
pub use explain::{explain, explain_chrome, explain_chrome_json, explain_request, Explanation};
pub use flame::{folded, folded_energy};
pub use parse::parse_chrome_trace;
pub use span::{DeviceSpans, OutageWindow, Outcome, RequestSpan, SpanForest};
pub use whatif::{predict, rank, Component, Prediction};
