//! Property tests of the attribution math and the diff verdict laws,
//! over randomized synthetic event streams shaped like what the
//! serving loop emits (per-image device spans, host batch spans,
//! failover retries, sheds, fabric-tap mirrors).

use desim::SimTime;
use ncsw_analyze::{diff, Analysis, DiffConfig, Segment, Verdict};
use ncsw_obs::{Ctx, Event, EventLog, Lane, Phase, Recorder, ShedCause};
use proptest::prelude::*;

/// Randomized timing of one request; all fields are nanosecond deltas.
#[derive(Debug, Clone)]
struct ReqPlan {
    arrive: u64,
    formation: u64,
    /// One failed attempt before the successful one when set: adds a
    /// retry stall and a timed-out attempt's device spans to the log.
    retry_stall: Option<u64>,
    dispatch_gap: u64,
    write: u64,
    exec_wait: u64,
    exec: u64,
    read_wait: u64,
    read: u64,
    completion: u64,
    /// VPU-style per-image spans vs host-style batch exec.
    vpu: bool,
    shed: Option<ShedCause>,
}

/// Raw tuple shape the (shrink-free) strategy machinery can generate;
/// decoded into [`ReqPlan`] by [`plan_of`]. `retry` 0 = no failed
/// attempt; `shed_sel < 15` sheds with cause `shed_sel % 4`.
type RawPlan = ((u64, u64, u64), (u64, u64, u64, u64), (u64, u64, u64), (bool, u8));

fn raw_plan() -> impl Strategy<Value = RawPlan> {
    (
        (0u64..1_000_000, 0u64..500_000, 0u64..300_000),
        (0u64..10_000, 0u64..50_000, 0u64..20_000, 1u64..400_000),
        (0u64..20_000, 0u64..50_000, 0u64..10_000),
        (any::<bool>(), 0u8..100),
    )
}

fn plan_of(raw: &RawPlan) -> ReqPlan {
    let ((arrive, formation, retry), (dispatch_gap, write, exec_wait, exec), rest, flags) = *raw;
    let (read_wait, read, completion) = rest;
    let (vpu, shed_sel) = flags;
    ReqPlan {
        arrive,
        formation,
        retry_stall: if retry == 0 { None } else { Some(retry) },
        dispatch_gap,
        write,
        exec_wait,
        exec,
        read_wait,
        read,
        completion,
        vpu,
        shed: if shed_sel < 15 { Some(ShedCause::ALL[(shed_sel % 4) as usize]) } else { None },
    }
}

/// Emit one request's events the way the serving loop would.
fn emit(log: &mut EventLog, id: u64, p: &ReqPlan, batch_seq: &mut u64) {
    let r = Ctx::request(id);
    let t0 = SimTime(p.arrive);
    log.record(Event::instant(Phase::Arrive, Lane::Server, t0, r));
    if let Some(cause) = p.shed {
        log.record(Event::instant(Phase::Shed, Lane::Server, t0, r).with_cause(cause));
        return;
    }
    log.record(Event::instant(Phase::Admit, Lane::Server, t0, r));
    let close = t0 + desim::Duration(p.formation);
    let w = if p.vpu { 2u32 } else { 0u32 };
    // Optional failed first attempt: full device spans under an old
    // batch id that must NOT be attributed.
    let mut dispatch = close;
    if let Some(stall) = p.retry_stall {
        let bid = *batch_seq;
        *batch_seq += 1;
        let a = r.with_batch(bid).with_worker(w);
        log.record(Event::instant(Phase::BatchClose, Lane::Queue, close, a));
        log.record(Event::instant(Phase::Dispatch, Lane::Worker(w), close, a));
        log.record(Event::span(
            Phase::UsbWrite,
            Lane::Host { worker: w, dev: 0 },
            close,
            close + desim::Duration(p.write + 17),
            a,
        ));
        log.record(Event::instant(Phase::RetryAttempt, Lane::Server, close, a));
        dispatch = close + desim::Duration(stall);
    }
    let bid = *batch_seq;
    *batch_seq += 1;
    let a = r.with_batch(bid).with_worker(w);
    if p.retry_stall.is_none() {
        log.record(Event::instant(Phase::BatchClose, Lane::Queue, close, a));
    }
    log.record(Event::instant(Phase::Dispatch, Lane::Worker(w), dispatch, a));
    let d = desim::Duration;
    let done = if p.vpu {
        let uw0 = dispatch + d(p.dispatch_gap);
        let uw1 = uw0 + d(p.write);
        let ex0 = uw1 + d(p.exec_wait);
        let ex1 = ex0 + d(p.exec);
        let ur0 = ex1 + d(p.read_wait);
        let ur1 = ur0 + d(p.read);
        log.record(Event::span(Phase::UsbWrite, Lane::Host { worker: w, dev: 0 }, uw0, uw1, a));
        // Fabric-tap mirror: same ctx, USB lane — must be ignored.
        log.record(Event::span(Phase::UsbWrite, Lane::UsbRoot { worker: w }, uw0, uw1, a));
        log.record(Event::span(Phase::Exec, Lane::Vpu { worker: w, dev: 0 }, ex0, ex1, a));
        log.record(Event::span(Phase::UsbRead, Lane::Host { worker: w, dev: 0 }, ur0, ur1, a));
        ur1 + d(p.completion)
    } else {
        let ex0 = dispatch + d(p.dispatch_gap);
        let ex1 = ex0 + d(p.exec);
        log.record(Event::span(
            Phase::Exec,
            Lane::Worker(w),
            ex0,
            ex1,
            Ctx { request_id: None, batch_id: Some(bid), worker: Some(w) },
        ));
        ex1 + d(p.completion)
    };
    log.record(Event::instant(Phase::Complete, Lane::Server, done, a));
}

fn build_log(plans: &[ReqPlan]) -> EventLog {
    let mut log = EventLog::new();
    let mut batch_seq = 0u64;
    for (id, p) in plans.iter().enumerate() {
        emit(&mut log, id as u64, p, &mut batch_seq);
    }
    log
}

proptest! {
    /// Per-segment sums equal end-to-end latency EXACTLY for every
    /// completed request — no lost or double-counted time — and every
    /// segment is non-negative with the expected values.
    #[test]
    fn attribution_is_exact(raw in proptest::collection::vec(raw_plan(), 1..40)) {
        let plans: Vec<ReqPlan> = raw.iter().map(plan_of).collect();
        let log = build_log(&plans);
        let analysis = Analysis::of(&log);
        let completed = plans.iter().filter(|p| p.shed.is_none()).count();
        prop_assert_eq!(analysis.breakdowns.len(), completed);
        for b in &analysis.breakdowns {
            prop_assert!(b.exact(), "request {} lost time: {:?}", b.id, b);
            let p = &plans[b.id as usize];
            prop_assert_eq!(b.seg(Segment::Formation).nanos(), p.formation);
            prop_assert_eq!(
                b.seg(Segment::RetryStall).nanos(),
                p.retry_stall.unwrap_or(0)
            );
            prop_assert_eq!(b.seg(Segment::Exec).nanos(), p.exec);
            if p.vpu {
                prop_assert_eq!(b.seg(Segment::UsbWrite).nanos(), p.write);
                prop_assert_eq!(b.seg(Segment::UsbRead).nanos(), p.read);
            } else {
                prop_assert_eq!(b.seg(Segment::UsbWrite).nanos(), 0);
            }
            prop_assert_eq!(b.seg(Segment::Completion).nanos(), p.completion);
        }
        // The shed side holds its causes.
        let shed = plans.iter().filter(|p| p.shed.is_some()).count();
        prop_assert_eq!(analysis.shed.total(), shed);
        prop_assert_eq!(analysis.shed.unknown, 0);
    }

    /// `diff(a, a)` is all-neutral and never a regression.
    #[test]
    fn diff_with_self_is_neutral(raw in proptest::collection::vec(raw_plan(), 1..25)) {
        let plans: Vec<ReqPlan> = raw.iter().map(plan_of).collect();
        let a = Analysis::of(&build_log(&plans));
        let d = diff(&a, &a, &DiffConfig::default());
        prop_assert!(!d.regression);
        prop_assert_eq!(d.only_a, 0);
        prop_assert_eq!(d.only_b, 0);
        for m in d.metrics.iter().chain(&d.segments) {
            prop_assert_eq!(m.verdict, Verdict::Neutral, "{}", m.metric.clone());
            prop_assert_eq!(m.delta, 0.0);
        }
        prop_assert_eq!(d.per_request.regressed, 0);
        prop_assert_eq!(d.per_request.improved, 0);
        prop_assert_eq!(d.per_request.mean_delta_ms, 0.0);
    }

    /// `diff(a, b)` mirrors `diff(b, a)`: deltas negate and the
    /// verdicts swap Improved <-> Regressed.
    #[test]
    fn diff_is_symmetric(
        ra in proptest::collection::vec(raw_plan(), 1..25),
        rb in proptest::collection::vec(raw_plan(), 1..25),
    ) {
        let pa: Vec<ReqPlan> = ra.iter().map(plan_of).collect();
        let pb: Vec<ReqPlan> = rb.iter().map(plan_of).collect();
        let a = Analysis::of(&build_log(&pa));
        let b = Analysis::of(&build_log(&pb));
        let cfg = DiffConfig::default();
        let fwd = diff(&a, &b, &cfg);
        let rev = diff(&b, &a, &cfg);
        prop_assert_eq!(fwd.joined, rev.joined);
        prop_assert_eq!(fwd.only_a, rev.only_b);
        prop_assert_eq!(fwd.only_b, rev.only_a);
        let mirror = |v: Verdict| match v {
            Verdict::Improved => Verdict::Regressed,
            Verdict::Regressed => Verdict::Improved,
            Verdict::Neutral => Verdict::Neutral,
        };
        for (f, r) in fwd.metrics.iter().zip(&rev.metrics) {
            prop_assert_eq!(f.delta, -r.delta, "{}", f.metric.clone());
            prop_assert_eq!(f.verdict, mirror(r.verdict), "{}", f.metric.clone());
        }
        for (f, r) in fwd.segments.iter().zip(&rev.segments) {
            prop_assert_eq!(f.verdict, mirror(r.verdict), "{}", f.metric.clone());
        }
        prop_assert_eq!(fwd.per_request.improved, rev.per_request.regressed);
        prop_assert_eq!(fwd.per_request.regressed, rev.per_request.improved);
        prop_assert_eq!(fwd.per_request.neutral, rev.per_request.neutral);
        prop_assert_eq!(
            fwd.per_request.max_regression_ms,
            rev.per_request.max_improvement_ms
        );
    }

    /// Export → parse → analyze gives byte-identical attribution to
    /// analyzing the in-memory log directly.
    #[test]
    fn chrome_round_trip_preserves_the_analysis(
        raw in proptest::collection::vec(raw_plan(), 1..15),
    ) {
        let plans: Vec<ReqPlan> = raw.iter().map(plan_of).collect();
        let log = build_log(&plans);
        let direct = Analysis::of(&log);
        let parsed = Analysis::from_chrome(&ncsw_obs::chrome_trace(&log)).unwrap();
        prop_assert_eq!(direct.table, parsed.table);
        prop_assert_eq!(direct.e2e, parsed.e2e);
        prop_assert_eq!(direct.shed, parsed.shed);
        prop_assert_eq!(ncsw_analyze::folded(&direct), ncsw_analyze::folded(&parsed));
    }
}
