//! # ncsw-faults — deterministic fault injection for the serving fleet
//!
//! The paper's case for the VPU is that sticks are cheap enough to
//! deploy *redundantly* as co-processors — which only pays off if the
//! serving layer survives a stick disappearing mid-run. This crate
//! provides the failure model: a seeded, virtual-clock-scheduled
//! [`FaultPlan`] of [`FaultEvent`]s (stick unplug, thermal throttle,
//! USB degradation, transient exec errors), applied via the
//! [`FaultyWorker`] wrapper around any [`ServiceHook`] worker, so the
//! CPU/GPU/VPU device models are all injectable without modification.
//!
//! The dispatcher in `ncsw-serve` consumes failures through
//! `ServiceHook::try_serve_obs` and reacts with bounded retries,
//! failover and circuit breaking; this crate only *produces* them.
//! Determinism contract: the same `(plan, fleet, seed)` triple injects
//! the identical fault sequence, and the empty plan is a strict no-op
//! (byte-identical outcomes to an unwrapped fleet).
//!
//! ```
//! use ncsw_faults::FaultPlan;
//! use ncsw_serve::FleetSpec;
//! use ncsw::ModelBundle;
//! use vpu_nn::googlenet::Variant;
//!
//! let model = ModelBundle::googlenet_untrained(Variant::Tiny, 1);
//! let workers = FleetSpec::parse("vpu+vpu+vpu+vpu").unwrap().build(&model);
//! let plan = FaultPlan::parse("unplug@2s:reconnect@4s").unwrap();
//! let workers = plan.apply(workers, 2012); // still Vec<Box<dyn ServiceHook>>
//! assert_eq!(workers.len(), 4);
//! ```

pub mod plan;
pub mod worker;

pub use plan::{FaultEvent, FaultPlan, PlannedFault};
pub use worker::{FaultyWorker, DETECT_LATENCY};

use desim::SimTime;
use ncsw::service::ServiceHook;

impl FaultPlan {
    /// Wrap every worker of `fleet` with its scheduled faults. The
    /// plan's relative instants are anchored to the fleet-ready epoch
    /// (the latest worker boot instant — the same epoch the serving
    /// loop starts the arrival clock from). Faults with no explicit
    /// worker pin target the *last* worker; pins beyond the fleet are
    /// an error.
    pub fn apply(&self, fleet: Vec<Box<dyn ServiceHook>>, seed: u64) -> Vec<Box<dyn ServiceHook>> {
        assert!(!fleet.is_empty(), "cannot apply a fault plan to an empty fleet");
        let epoch = fleet.iter().map(|w| w.busy_until()).max().unwrap_or(SimTime::ZERO);
        let default_target = fleet.len() - 1;
        let mut per_worker: Vec<Vec<FaultEvent>> = vec![Vec::new(); fleet.len()];
        for pf in &self.faults {
            let w = pf.worker.unwrap_or(default_target);
            assert!(
                w < fleet.len(),
                "fault '{}' targets worker {w}, but the fleet has {} workers",
                pf.fault,
                fleet.len()
            );
            per_worker[w].push(pf.fault);
        }
        fleet
            .into_iter()
            .enumerate()
            .map(|(i, inner)| -> Box<dyn ServiceHook> {
                Box::new(FaultyWorker::new(inner, &per_worker[i], epoch, seed, i))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Duration;
    use ncsw::{IntelCpu, ModelBundle};
    use vpu_nn::googlenet::Variant;

    fn fleet(n: usize) -> Vec<Box<dyn ServiceHook>> {
        let model = ModelBundle::googlenet_untrained(Variant::Tiny, 1);
        (0..n).map(|_| -> Box<dyn ServiceHook> { Box::new(IntelCpu::new(model.clone())) }).collect()
    }

    #[test]
    fn apply_preserves_fleet_shape_and_labels() {
        let plan = FaultPlan::parse("unplug@2s").unwrap();
        let wrapped = plan.apply(fleet(3), 2012);
        assert_eq!(wrapped.len(), 3);
        assert!(wrapped.iter().all(|w| w.label() == "cpu"));
    }

    #[test]
    fn unpinned_faults_target_the_last_worker() {
        let plan = FaultPlan::parse("unplug@0s").unwrap();
        let mut ws = plan.apply(fleet(3), 2012);
        let epoch = ws.iter().map(|w| w.busy_until()).max().unwrap();
        let probe = epoch + Duration::from_millis(1.0);
        let mut null = ncsw_obs::NullRecorder;
        use ncsw_obs::BatchObs;
        assert!(ws[0].try_serve_obs(1, probe, &mut BatchObs::disabled(&mut null)).is_ok());
        assert!(ws[1].try_serve_obs(1, probe, &mut BatchObs::disabled(&mut null)).is_ok());
        assert!(ws[2].try_serve_obs(1, probe, &mut BatchObs::disabled(&mut null)).is_err());
    }

    #[test]
    #[should_panic(expected = "targets worker 9")]
    fn out_of_range_pin_panics() {
        let plan = FaultPlan::parse("w9:unplug@1s").unwrap();
        let _ = plan.apply(fleet(2), 2012);
    }
}
