//! Deterministic fault schedules and their textual spec form.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s, each optionally pinned
//! to a fleet worker, with all instants expressed *relative to the
//! fleet-ready epoch* (the instant the arrival clock starts). The same
//! plan applied to the same fleet with the same seed always injects the
//! identical fault sequence — faults are part of the experiment, not
//! noise on top of it.

use desim::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scheduled fault. Times are relative to the fleet-ready epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The stick (or whole worker) disappears at `at`; submissions fail
    /// fast until it reconnects (`None` = never comes back).
    StickUnplug { at: Duration, reconnect_after: Option<Duration> },
    /// Sustained-load thermal throttling: batches dispatched inside the
    /// window take `slowdown`× their nominal service time (`>= 1`).
    ThermalThrottle { at: Duration, duration: Duration, slowdown: f64 },
    /// USB link degradation (renegotiated to a slower rate, hub
    /// contention): service stretches by `factor` inside the window.
    UsbDegrade { at: Duration, duration: Duration, factor: f64 },
    /// Each dispatched batch independently dies mid-execution with this
    /// probability (seeded draw; the failed attempt burns half the
    /// nominal service time before the host notices).
    TransientExecError { per_batch_prob: f64 },
    /// Gray fail-slow: batches dispatched inside the window take
    /// `factor`× their nominal service time *without any error or
    /// fault event* — unlike [`FaultEvent::ThermalThrottle`], the host
    /// gets no signal beyond the latency itself, so error-driven
    /// circuit breakers are blind to it.
    FailSlow { at: Duration, duration: Duration, factor: f64 },
    /// Each returned image result is independently bit-flipped in
    /// transit with this probability (seeded per-image draw at the USB
    /// completion boundary); the transfer itself reports success.
    ResultCorrupt { per_image_prob: f64 },
    /// Each image completion is independently delivered *twice* with
    /// this probability (a retransmitted USB completion the host must
    /// dedup for exactly-once delivery).
    DuplicateCompletion { per_image_prob: f64 },
    /// Each image completion is independently *lost* with this
    /// probability: the batch reports success but the slot's result
    /// never lands (detectable only via sequence tags).
    DroppedCompletion { per_image_prob: f64 },
}

/// A fault pinned to a worker slot (`None` = the plan's default target,
/// the last worker of the fleet — the newest stick of an `Nxvpu` fleet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedFault {
    pub worker: Option<usize>,
    pub fault: FaultEvent,
}

/// A deterministic schedule of faults for one serving run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// The empty plan: wrapping a fleet with it is a strict no-op.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn push(&mut self, worker: Option<usize>, fault: FaultEvent) {
        self.faults.push(PlannedFault { worker, fault });
    }

    /// Parse a `--faults` spec: comma-separated faults, each optionally
    /// prefixed with `wN:` to pin it to worker `N`.
    ///
    /// ```text
    /// unplug@2s:reconnect@4s        stick gone 2s..4s after epoch
    /// w1:unplug@500ms               worker 1 gone forever from 500ms
    /// throttle@1s:for@2s:slow@3     3x slowdown over 1s..3s
    /// usb@1s:for@500ms:factor@2.5   USB stretch over 1s..1.5s
    /// execerr@0.05                  5% of batches die mid-exec
    /// failslow@1s:for@4s:slow@6     silent 6x fail-slow over 1s..5s
    /// corrupt@0.02                  2% of results bit-flip in transit
    /// dup@0.02                      2% of completions delivered twice
    /// drop@0.02                     2% of completions silently lost
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::empty();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (worker, body) = split_worker(part)?;
            plan.push(worker, parse_fault(body)?);
        }
        if plan.is_empty() {
            return Err(format!("empty fault spec '{spec}'"));
        }
        Ok(plan)
    }

    /// Check every worker pin against a fleet of `fleet_size` workers,
    /// returning a one-line error naming the offending fault instead of
    /// the panic [`FaultPlan::apply`] raises. CLI front-ends call this
    /// before applying.
    pub fn validate_pins(&self, fleet_size: usize) -> Result<(), String> {
        for pf in &self.faults {
            if let Some(w) = pf.worker {
                if w >= fleet_size {
                    return Err(format!(
                        "fault '{}' targets worker {w}, but the fleet has only {fleet_size} \
                         workers (w0..w{})",
                        pf.fault,
                        fleet_size - 1
                    ));
                }
            }
        }
        Ok(())
    }

    /// Render the plan back into the `--faults` grammar. The output
    /// parses to an equal plan, so harnesses that synthesize plans
    /// (chaos campaigns, E22) can print a spec the CLI reproduces.
    pub fn to_spec(&self) -> String {
        let ms = |d: Duration| format!("{}ms", d.as_millis());
        self.faults
            .iter()
            .map(|pf| {
                let body = match pf.fault {
                    FaultEvent::StickUnplug { at, reconnect_after } => match reconnect_after {
                        Some(back) => format!("unplug@{}:reconnect@{}", ms(at), ms(at + back)),
                        None => format!("unplug@{}", ms(at)),
                    },
                    FaultEvent::ThermalThrottle { at, duration, slowdown } => {
                        format!("throttle@{}:for@{}:slow@{slowdown}", ms(at), ms(duration))
                    }
                    FaultEvent::UsbDegrade { at, duration, factor } => {
                        format!("usb@{}:for@{}:factor@{factor}", ms(at), ms(duration))
                    }
                    FaultEvent::TransientExecError { per_batch_prob } => {
                        format!("execerr@{per_batch_prob}")
                    }
                    FaultEvent::FailSlow { at, duration, factor } => {
                        format!("failslow@{}:for@{}:slow@{factor}", ms(at), ms(duration))
                    }
                    FaultEvent::ResultCorrupt { per_image_prob } => {
                        format!("corrupt@{per_image_prob}")
                    }
                    FaultEvent::DuplicateCompletion { per_image_prob } => {
                        format!("dup@{per_image_prob}")
                    }
                    FaultEvent::DroppedCompletion { per_image_prob } => {
                        format!("drop@{per_image_prob}")
                    }
                };
                match pf.worker {
                    Some(w) => format!("w{w}:{body}"),
                    None => body,
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn split_worker(part: &str) -> Result<(Option<usize>, &str), String> {
    if let Some(rest) = part.strip_prefix('w') {
        if let Some((idx, body)) = rest.split_once(':') {
            // Anything `w...:` shaped before the first `@` is an
            // intended worker pin: reject a malformed index by name
            // instead of falling through to an opaque kind error.
            if !idx.contains('@') {
                return match idx.parse::<usize>() {
                    Ok(w) => Ok((Some(w), body)),
                    Err(_) => Err(format!(
                        "bad worker pin 'w{idx}' in '{part}' (expected wN: with N a \
                                     worker index)"
                    )),
                };
            }
        }
    }
    Ok((None, part))
}

fn parse_fault(body: &str) -> Result<FaultEvent, String> {
    let mut fields = body.split(':');
    let head = fields.next().unwrap_or_default();
    let (kind, arg) =
        head.split_once('@').ok_or_else(|| format!("fault '{body}': expected kind@value"))?;
    match kind {
        "unplug" => {
            let at = parse_duration(arg)?;
            let mut reconnect_after = None;
            for f in fields {
                let Some(v) = f.strip_prefix("reconnect@") else {
                    return Err(format!("unplug: unknown field '{f}'"));
                };
                let back = parse_duration(v)?;
                if back <= at {
                    return Err(format!("unplug: reconnect@{v} is not after unplug instant"));
                }
                reconnect_after = Some(back - at);
            }
            Ok(FaultEvent::StickUnplug { at, reconnect_after })
        }
        "throttle" | "usb" | "failslow" => {
            let at = parse_duration(arg)?;
            let mut duration = None;
            let mut factor = None;
            let factor_key = if kind == "usb" { "factor@" } else { "slow@" };
            for f in fields {
                if let Some(v) = f.strip_prefix("for@") {
                    duration = Some(parse_duration(v)?);
                } else if let Some(v) = f.strip_prefix(factor_key) {
                    factor = Some(parse_factor(v)?);
                } else {
                    return Err(format!("{kind}: unknown field '{f}'"));
                }
            }
            let duration = duration.ok_or_else(|| format!("{kind}: missing for@DURATION"))?;
            let factor =
                factor.ok_or_else(|| format!("{kind}: missing {factor_key}FACTOR (>= 1)"))?;
            Ok(match kind {
                "throttle" => FaultEvent::ThermalThrottle { at, duration, slowdown: factor },
                "failslow" => FaultEvent::FailSlow { at, duration, factor },
                _ => FaultEvent::UsbDegrade { at, duration, factor },
            })
        }
        "execerr" | "corrupt" | "dup" | "drop" => {
            let p: f64 = arg.parse().map_err(|_| format!("{kind}: bad probability '{arg}'"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{kind}: probability {p} outside [0, 1]"));
            }
            if let Some(f) = fields.next() {
                return Err(format!("{kind}: unknown field '{f}'"));
            }
            Ok(match kind {
                "execerr" => FaultEvent::TransientExecError { per_batch_prob: p },
                "corrupt" => FaultEvent::ResultCorrupt { per_image_prob: p },
                "dup" => FaultEvent::DuplicateCompletion { per_image_prob: p },
                _ => FaultEvent::DroppedCompletion { per_image_prob: p },
            })
        }
        other => Err(format!(
            "unknown fault kind '{other}' (expected unplug, throttle, usb, execerr, failslow, \
             corrupt, dup or drop)"
        )),
    }
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, unit) = match s.strip_suffix("ms") {
        Some(n) => (n, 1e6),
        None => match s.strip_suffix('s') {
            Some(n) => (n, 1e9),
            None => (s, 1e9), // bare number: seconds
        },
    };
    let v: f64 = num.parse().map_err(|_| format!("bad duration '{s}'"))?;
    if v < 0.0 {
        return Err(format!("negative duration '{s}'"));
    }
    Ok(Duration::from_nanos((v * unit).round() as u64))
}

fn parse_factor(s: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("bad factor '{s}'"))?;
    if v < 1.0 {
        return Err(format!("factor {v} must be >= 1 (a slowdown multiplier)"));
    }
    Ok(v)
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::StickUnplug { at, reconnect_after } => match reconnect_after {
                Some(back) => write!(f, "unplug@{at} reconnect after {back}"),
                None => write!(f, "unplug@{at} (permanent)"),
            },
            FaultEvent::ThermalThrottle { at, duration, slowdown } => {
                write!(f, "throttle@{at} for {duration} x{slowdown}")
            }
            FaultEvent::UsbDegrade { at, duration, factor } => {
                write!(f, "usb-degrade@{at} for {duration} x{factor}")
            }
            FaultEvent::TransientExecError { per_batch_prob } => {
                write!(f, "exec-err p={per_batch_prob}")
            }
            FaultEvent::FailSlow { at, duration, factor } => {
                write!(f, "fail-slow@{at} for {duration} x{factor}")
            }
            FaultEvent::ResultCorrupt { per_image_prob } => {
                write!(f, "result-corrupt p={per_image_prob}")
            }
            FaultEvent::DuplicateCompletion { per_image_prob } => {
                write!(f, "duplicate-completion p={per_image_prob}")
            }
            FaultEvent::DroppedCompletion { per_image_prob } => {
                write!(f, "dropped-completion p={per_image_prob}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn parses_the_ci_spec() {
        let plan = FaultPlan::parse("unplug@2s:reconnect@4s").unwrap();
        assert_eq!(plan.faults.len(), 1);
        assert_eq!(plan.faults[0].worker, None);
        assert_eq!(
            plan.faults[0].fault,
            FaultEvent::StickUnplug { at: ms(2_000.0), reconnect_after: Some(ms(2_000.0)) }
        );
    }

    #[test]
    fn parses_worker_pins_and_multiple_faults() {
        let plan =
            FaultPlan::parse("w2:unplug@500ms,throttle@1s:for@2s:slow@3,execerr@0.05").unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.faults[0].worker, Some(2));
        assert_eq!(
            plan.faults[0].fault,
            FaultEvent::StickUnplug { at: ms(500.0), reconnect_after: None }
        );
        assert_eq!(
            plan.faults[1].fault,
            FaultEvent::ThermalThrottle { at: ms(1_000.0), duration: ms(2_000.0), slowdown: 3.0 }
        );
        assert_eq!(plan.faults[2].fault, FaultEvent::TransientExecError { per_batch_prob: 0.05 });
    }

    #[test]
    fn parses_usb_degrade_and_bare_seconds() {
        let plan = FaultPlan::parse("usb@1:for@500ms:factor@2.5").unwrap();
        assert_eq!(
            plan.faults[0].fault,
            FaultEvent::UsbDegrade { at: ms(1_000.0), duration: ms(500.0), factor: 2.5 }
        );
    }

    #[test]
    fn parses_gray_fault_kinds() {
        let plan = FaultPlan::parse("w1:failslow@1s:for@4s:slow@6,corrupt@0.02,dup@0.1,drop@0.01")
            .unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(plan.faults[0].worker, Some(1));
        assert_eq!(
            plan.faults[0].fault,
            FaultEvent::FailSlow { at: ms(1_000.0), duration: ms(4_000.0), factor: 6.0 }
        );
        assert_eq!(plan.faults[1].fault, FaultEvent::ResultCorrupt { per_image_prob: 0.02 });
        assert_eq!(plan.faults[2].fault, FaultEvent::DuplicateCompletion { per_image_prob: 0.1 });
        assert_eq!(plan.faults[3].fault, FaultEvent::DroppedCompletion { per_image_prob: 0.01 });
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "unplug",
            "unplug@2s:reconnect@1s",      // reconnect before unplug
            "throttle@1s:slow@2",          // missing duration
            "throttle@1s:for@1s:slow@0.5", // speedup is not a fault
            "execerr@1.5",
            "unplug@-2s",
            "tornado@2s",
            "failslow@1s:slow@2",          // missing duration
            "failslow@1s:for@1s:slow@0.5", // speedup is not a fault
            "corrupt@2",                   // probability out of range
            "dup@-0.1",
            "drop@zzz",
            "wx:unplug@1s", // malformed worker pin
            "w:drop@0.1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "spec '{bad}' must be rejected");
        }
    }

    #[test]
    fn malformed_specs_name_the_offending_token() {
        let err = FaultPlan::parse("wx:unplug@1s").unwrap_err();
        assert!(err.contains("'wx'"), "pin error must name the token: {err}");
        let err = FaultPlan::parse("unplug@1s,tornado@2s").unwrap_err();
        assert!(err.contains("'tornado'"), "kind error must name the token: {err}");
        let err = FaultPlan::parse("corrupt@oops").unwrap_err();
        assert!(err.contains("'oops'"), "probability error must name the token: {err}");
    }

    #[test]
    fn validate_pins_names_out_of_range_faults() {
        let plan = FaultPlan::parse("w9:unplug@1s").unwrap();
        let err = plan.validate_pins(2).unwrap_err();
        assert!(err.contains("worker 9") && err.contains("2 workers"), "{err}");
        assert!(plan.validate_pins(10).is_ok());
        assert!(FaultPlan::parse("unplug@1s").unwrap().validate_pins(1).is_ok());
    }
    #[test]
    fn to_spec_round_trips_every_fault_kind() {
        let spec = "w0:unplug@100ms:reconnect@350ms,w1:throttle@1s:for@2s:slow@3,\
                    usb@1s:for@500ms:factor@2.5,execerr@0.05,\
                    w2:failslow@1s:for@4s:slow@6,corrupt@0.02,dup@0.03,drop@0.04";
        let plan = FaultPlan::parse(spec).unwrap();
        let rendered = plan.to_spec();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan, "render: {rendered}");
    }
}
