//! Deterministic fault schedules and their textual spec form.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s, each optionally pinned
//! to a fleet worker, with all instants expressed *relative to the
//! fleet-ready epoch* (the instant the arrival clock starts). The same
//! plan applied to the same fleet with the same seed always injects the
//! identical fault sequence — faults are part of the experiment, not
//! noise on top of it.

use desim::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scheduled fault. Times are relative to the fleet-ready epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The stick (or whole worker) disappears at `at`; submissions fail
    /// fast until it reconnects (`None` = never comes back).
    StickUnplug { at: Duration, reconnect_after: Option<Duration> },
    /// Sustained-load thermal throttling: batches dispatched inside the
    /// window take `slowdown`× their nominal service time (`>= 1`).
    ThermalThrottle { at: Duration, duration: Duration, slowdown: f64 },
    /// USB link degradation (renegotiated to a slower rate, hub
    /// contention): service stretches by `factor` inside the window.
    UsbDegrade { at: Duration, duration: Duration, factor: f64 },
    /// Each dispatched batch independently dies mid-execution with this
    /// probability (seeded draw; the failed attempt burns half the
    /// nominal service time before the host notices).
    TransientExecError { per_batch_prob: f64 },
}

/// A fault pinned to a worker slot (`None` = the plan's default target,
/// the last worker of the fleet — the newest stick of an `Nxvpu` fleet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedFault {
    pub worker: Option<usize>,
    pub fault: FaultEvent,
}

/// A deterministic schedule of faults for one serving run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// The empty plan: wrapping a fleet with it is a strict no-op.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn push(&mut self, worker: Option<usize>, fault: FaultEvent) {
        self.faults.push(PlannedFault { worker, fault });
    }

    /// Parse a `--faults` spec: comma-separated faults, each optionally
    /// prefixed with `wN:` to pin it to worker `N`.
    ///
    /// ```text
    /// unplug@2s:reconnect@4s        stick gone 2s..4s after epoch
    /// w1:unplug@500ms               worker 1 gone forever from 500ms
    /// throttle@1s:for@2s:slow@3     3x slowdown over 1s..3s
    /// usb@1s:for@500ms:factor@2.5   USB stretch over 1s..1.5s
    /// execerr@0.05                  5% of batches die mid-exec
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::empty();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (worker, body) = split_worker(part)?;
            plan.push(worker, parse_fault(body)?);
        }
        if plan.is_empty() {
            return Err(format!("empty fault spec '{spec}'"));
        }
        Ok(plan)
    }
}

fn split_worker(part: &str) -> Result<(Option<usize>, &str), String> {
    if let Some(rest) = part.strip_prefix('w') {
        if let Some((idx, body)) = rest.split_once(':') {
            if let Ok(w) = idx.parse::<usize>() {
                return Ok((Some(w), body));
            }
        }
    }
    Ok((None, part))
}

fn parse_fault(body: &str) -> Result<FaultEvent, String> {
    let mut fields = body.split(':');
    let head = fields.next().unwrap_or_default();
    let (kind, arg) =
        head.split_once('@').ok_or_else(|| format!("fault '{body}': expected kind@value"))?;
    match kind {
        "unplug" => {
            let at = parse_duration(arg)?;
            let mut reconnect_after = None;
            for f in fields {
                let Some(v) = f.strip_prefix("reconnect@") else {
                    return Err(format!("unplug: unknown field '{f}'"));
                };
                let back = parse_duration(v)?;
                if back <= at {
                    return Err(format!("unplug: reconnect@{v} is not after unplug instant"));
                }
                reconnect_after = Some(back - at);
            }
            Ok(FaultEvent::StickUnplug { at, reconnect_after })
        }
        "throttle" | "usb" => {
            let at = parse_duration(arg)?;
            let mut duration = None;
            let mut factor = None;
            let factor_key = if kind == "throttle" { "slow@" } else { "factor@" };
            for f in fields {
                if let Some(v) = f.strip_prefix("for@") {
                    duration = Some(parse_duration(v)?);
                } else if let Some(v) = f.strip_prefix(factor_key) {
                    factor = Some(parse_factor(v)?);
                } else {
                    return Err(format!("{kind}: unknown field '{f}'"));
                }
            }
            let duration = duration.ok_or_else(|| format!("{kind}: missing for@DURATION"))?;
            let factor =
                factor.ok_or_else(|| format!("{kind}: missing {factor_key}FACTOR (>= 1)"))?;
            Ok(if kind == "throttle" {
                FaultEvent::ThermalThrottle { at, duration, slowdown: factor }
            } else {
                FaultEvent::UsbDegrade { at, duration, factor }
            })
        }
        "execerr" => {
            let p: f64 = arg.parse().map_err(|_| format!("execerr: bad probability '{arg}'"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("execerr: probability {p} outside [0, 1]"));
            }
            if let Some(f) = fields.next() {
                return Err(format!("execerr: unknown field '{f}'"));
            }
            Ok(FaultEvent::TransientExecError { per_batch_prob: p })
        }
        other => Err(format!("unknown fault kind '{other}'")),
    }
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, unit) = match s.strip_suffix("ms") {
        Some(n) => (n, 1e6),
        None => match s.strip_suffix('s') {
            Some(n) => (n, 1e9),
            None => (s, 1e9), // bare number: seconds
        },
    };
    let v: f64 = num.parse().map_err(|_| format!("bad duration '{s}'"))?;
    if v < 0.0 {
        return Err(format!("negative duration '{s}'"));
    }
    Ok(Duration::from_nanos((v * unit).round() as u64))
}

fn parse_factor(s: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("bad factor '{s}'"))?;
    if v < 1.0 {
        return Err(format!("factor {v} must be >= 1 (a slowdown multiplier)"));
    }
    Ok(v)
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::StickUnplug { at, reconnect_after } => match reconnect_after {
                Some(back) => write!(f, "unplug@{at} reconnect after {back}"),
                None => write!(f, "unplug@{at} (permanent)"),
            },
            FaultEvent::ThermalThrottle { at, duration, slowdown } => {
                write!(f, "throttle@{at} for {duration} x{slowdown}")
            }
            FaultEvent::UsbDegrade { at, duration, factor } => {
                write!(f, "usb-degrade@{at} for {duration} x{factor}")
            }
            FaultEvent::TransientExecError { per_batch_prob } => {
                write!(f, "exec-err p={per_batch_prob}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn parses_the_ci_spec() {
        let plan = FaultPlan::parse("unplug@2s:reconnect@4s").unwrap();
        assert_eq!(plan.faults.len(), 1);
        assert_eq!(plan.faults[0].worker, None);
        assert_eq!(
            plan.faults[0].fault,
            FaultEvent::StickUnplug { at: ms(2_000.0), reconnect_after: Some(ms(2_000.0)) }
        );
    }

    #[test]
    fn parses_worker_pins_and_multiple_faults() {
        let plan =
            FaultPlan::parse("w2:unplug@500ms,throttle@1s:for@2s:slow@3,execerr@0.05").unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.faults[0].worker, Some(2));
        assert_eq!(
            plan.faults[0].fault,
            FaultEvent::StickUnplug { at: ms(500.0), reconnect_after: None }
        );
        assert_eq!(
            plan.faults[1].fault,
            FaultEvent::ThermalThrottle { at: ms(1_000.0), duration: ms(2_000.0), slowdown: 3.0 }
        );
        assert_eq!(plan.faults[2].fault, FaultEvent::TransientExecError { per_batch_prob: 0.05 });
    }

    #[test]
    fn parses_usb_degrade_and_bare_seconds() {
        let plan = FaultPlan::parse("usb@1:for@500ms:factor@2.5").unwrap();
        assert_eq!(
            plan.faults[0].fault,
            FaultEvent::UsbDegrade { at: ms(1_000.0), duration: ms(500.0), factor: 2.5 }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "unplug",
            "unplug@2s:reconnect@1s",      // reconnect before unplug
            "throttle@1s:slow@2",          // missing duration
            "throttle@1s:for@1s:slow@0.5", // speedup is not a fault
            "execerr@1.5",
            "unplug@-2s",
            "tornado@2s",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "spec '{bad}' must be rejected");
        }
    }
}
