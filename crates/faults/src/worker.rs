//! [`FaultyWorker`] — a [`ServiceHook`] wrapper that injects the
//! scheduled faults of a [`FaultPlan`](crate::FaultPlan) into any
//! worker, so CPU/GPU/VPU device models are all injectable without
//! modification.
//!
//! The wrapper owns the *reported* timeline: a throttled batch is
//! stretched around its true start instant, and the wrapper's
//! `busy_until` horizon tracks the stretched end, so consecutive
//! reported spans never overlap even though the inner device's own
//! (unstretched) timeline runs ahead. With no scheduled faults every
//! call passes straight through — a fleet wrapped with the empty plan
//! is byte-identical to an unwrapped one.

use crate::plan::FaultEvent;
use desim::{Duration, SimTime};
use ncsw::service::{BatchRun, FailureKind, ServeError, ServiceHook, WireReport};
use ncsw_obs::{BatchObs, Ctx, Event, Lane, Phase};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use vpu_num::rng;

/// Host-side latency of noticing a dead stick (the NCAPI call errors
/// out after the USB layer gives up — fast, but never free).
pub const DETECT_LATENCY: Duration = Duration(1_000_000); // 1 ms

/// An unavailability window: `[from, until)` (`None` = forever).
#[derive(Debug, Clone, Copy)]
struct Outage {
    from: SimTime,
    until: Option<SimTime>,
}

/// A service-time stretch window: batches starting in `[from, until)`
/// take `factor`× their nominal time. `silent` stretches (gray
/// fail-slow) emit no `FaultInject` event — the latency itself is the
/// only signal the host gets.
#[derive(Debug, Clone, Copy)]
struct Stretch {
    from: SimTime,
    until: SimTime,
    factor: f64,
    silent: bool,
}

/// Per-image wire-fault probabilities at the USB completion boundary.
#[derive(Debug, Clone, Copy, Default)]
struct WireProbs {
    corrupt: f64,
    duplicate: f64,
    drop: f64,
}

impl WireProbs {
    fn any(&self) -> bool {
        self.corrupt > 0.0 || self.duplicate > 0.0 || self.drop > 0.0
    }
}

/// A fault-injectable wrapper around any fleet worker.
pub struct FaultyWorker {
    inner: Box<dyn ServiceHook>,
    outages: Vec<Outage>,
    stretches: Vec<Stretch>,
    exec_err_prob: f64,
    wire: WireProbs,
    rng: ChaCha8Rng,
    /// Independent stream for wire-fault draws, so adding a corruption
    /// plan never perturbs the exec-error sequence (and vice versa).
    wire_rng: ChaCha8Rng,
    /// Reported busy horizon (>= the inner device's own horizon once
    /// any batch has been stretched or burned by a failed attempt).
    busy: SimTime,
}

impl FaultyWorker {
    /// Wrap `inner` with the faults scheduled for it. `epoch` anchors
    /// the plan's relative instants; `seed`+`worker_index` derive the
    /// independent stream for transient-error draws.
    pub fn new(
        inner: Box<dyn ServiceHook>,
        faults: &[FaultEvent],
        epoch: SimTime,
        seed: u64,
        worker_index: usize,
    ) -> FaultyWorker {
        let mut outages = Vec::new();
        let mut stretches = Vec::new();
        let mut exec_err_prob: f64 = 0.0;
        let mut wire = WireProbs::default();
        for f in faults {
            match *f {
                FaultEvent::StickUnplug { at, reconnect_after } => outages.push(Outage {
                    from: epoch + at,
                    until: reconnect_after.map(|d| epoch + at + d),
                }),
                FaultEvent::ThermalThrottle { at, duration, slowdown } => stretches.push(Stretch {
                    from: epoch + at,
                    until: epoch + at + duration,
                    factor: slowdown,
                    silent: false,
                }),
                FaultEvent::UsbDegrade { at, duration, factor } => stretches.push(Stretch {
                    from: epoch + at,
                    until: epoch + at + duration,
                    factor,
                    silent: false,
                }),
                FaultEvent::FailSlow { at, duration, factor } => stretches.push(Stretch {
                    from: epoch + at,
                    until: epoch + at + duration,
                    factor,
                    silent: true,
                }),
                FaultEvent::TransientExecError { per_batch_prob } => {
                    exec_err_prob = exec_err_prob.max(per_batch_prob)
                }
                FaultEvent::ResultCorrupt { per_image_prob } => {
                    wire.corrupt = wire.corrupt.max(per_image_prob)
                }
                FaultEvent::DuplicateCompletion { per_image_prob } => {
                    wire.duplicate = wire.duplicate.max(per_image_prob)
                }
                FaultEvent::DroppedCompletion { per_image_prob } => {
                    wire.drop = wire.drop.max(per_image_prob)
                }
            }
        }
        let busy = inner.busy_until();
        FaultyWorker {
            inner,
            outages,
            stretches,
            exec_err_prob,
            wire,
            rng: rng::indexed_stream(seed, "fault-exec", worker_index as u64),
            wire_rng: rng::indexed_stream(seed, "fault-wire", worker_index as u64),
            busy,
        }
    }

    /// Whether the device is unplugged at `t` (reconnect pending or
    /// permanent).
    pub fn unplugged(&self, t: SimTime) -> bool {
        self.outages.iter().any(|o| o.from <= t && o.until.is_none_or(|u| t < u))
    }

    /// Combined service-time multiplier for a batch starting at `t`
    /// (overlapping throttle and USB windows compound).
    fn stretch_factor(&self, t: SimTime) -> f64 {
        self.stretches
            .iter()
            .filter(|s| s.from <= t && t < s.until)
            .map(|s| s.factor)
            .product::<f64>()
    }

    /// Whether any *visible* (non-gray) stretch window covers `t`: only
    /// those emit a `FaultInject` event; fail-slow stays silent.
    fn stretch_visible(&self, t: SimTime) -> bool {
        self.stretches.iter().any(|s| s.from <= t && t < s.until && !s.silent)
    }

    /// Seeded per-image wire-fault draws at the completion boundary, in
    /// a fixed (corrupt, duplicate, drop) order per slot. A dropped
    /// completion can't also be delivered corrupted or twice — the drop
    /// wins.
    fn inject_wire(&mut self, run: &mut BatchRun) {
        if !self.wire.any() {
            return;
        }
        let mut rep = WireReport::default();
        for slot in 0..run.done.len() {
            if self.wire.corrupt > 0.0 && self.wire_rng.gen::<f64>() < self.wire.corrupt {
                rep.corrupted.push(slot);
            }
            if self.wire.duplicate > 0.0 && self.wire_rng.gen::<f64>() < self.wire.duplicate {
                rep.duplicated.push(slot);
            }
            if self.wire.drop > 0.0 && self.wire_rng.gen::<f64>() < self.wire.drop {
                rep.dropped.push(slot);
            }
        }
        rep.corrupted.retain(|s| !rep.dropped.contains(s));
        rep.duplicated.retain(|s| !rep.dropped.contains(s));
        if !rep.is_clean() {
            run.wire = Some(rep);
        }
    }

    fn fault_ctx(&self, obs: &BatchObs<'_>) -> Ctx {
        Ctx { request_id: None, batch_id: Some(obs.batch_id), worker: Some(obs.worker) }
    }
}

impl ServiceHook for FaultyWorker {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn serve(&mut self, batch: usize, ready: SimTime) -> BatchRun {
        let mut null = ncsw_obs::NullRecorder;
        self.try_serve_obs(batch, ready, &mut BatchObs::disabled(&mut null))
            .unwrap_or_else(|e| panic!("fault fired on the infallible serve path: {:?}", e.kind))
    }

    fn serve_obs(&mut self, batch: usize, ready: SimTime, obs: &mut BatchObs<'_>) -> BatchRun {
        self.try_serve_obs(batch, ready, obs)
            .unwrap_or_else(|e| panic!("fault fired on the infallible serve path: {:?}", e.kind))
    }

    fn try_serve_obs(
        &mut self,
        batch: usize,
        ready: SimTime,
        obs: &mut BatchObs<'_>,
    ) -> Result<BatchRun, ServeError> {
        let t0 = SimTime::max_of(ready, self.busy_until());

        if self.unplugged(t0) {
            // Fail fast: the attempt burns only the detection latency,
            // and the dead device accrues no work.
            let at = t0 + DETECT_LATENCY;
            if obs.enabled() {
                let ctx = self.fault_ctx(obs);
                obs.rec.record(Event::span(
                    Phase::FaultInject,
                    Lane::Worker(obs.worker),
                    t0,
                    at,
                    ctx,
                ));
            }
            return Err(ServeError { at, kind: FailureKind::Unplugged });
        }

        if self.exec_err_prob > 0.0 && self.rng.gen::<f64>() < self.exec_err_prob {
            // Died mid-execution: the device burned half the nominal
            // service time before the host noticed, and stays busy for
            // it (the work is wasted, not free).
            let at = t0 + self.inner.estimate(batch) * 0.5 + DETECT_LATENCY;
            self.busy = SimTime::max_of(self.busy, at);
            if obs.enabled() {
                let ctx = self.fault_ctx(obs);
                obs.rec.record(Event::span(
                    Phase::FaultInject,
                    Lane::Worker(obs.worker),
                    t0,
                    at,
                    ctx,
                ));
            }
            return Err(ServeError { at, kind: FailureKind::TransientExec });
        }

        let factor = self.stretch_factor(t0);
        let mut run = self.inner.serve_obs(batch, t0, obs);
        if factor > 1.0 {
            // Stretch the host-visible completion instants around the
            // true start. The inner device's sub-spans (USB legs, SHAVE
            // exec) keep their nominal shape — the throttle shows up as
            // the gap between the last device span and the stretched
            // completions.
            let start = run.start;
            let stretch = |t: SimTime| start + (t - start) * factor;
            run.end = stretch(run.end);
            for t in &mut run.done {
                *t = stretch(*t);
            }
            // Gray fail-slow windows inflate latency with no fault
            // event; throttle/USB windows announce themselves.
            if self.stretch_visible(t0) && obs.enabled() {
                let ctx = self.fault_ctx(obs);
                obs.rec.record(Event::instant(
                    Phase::FaultInject,
                    Lane::Worker(obs.worker),
                    t0,
                    ctx,
                ));
            }
        }
        self.busy = SimTime::max_of(self.busy, run.end);
        self.inject_wire(&mut run);
        Ok(run)
    }

    fn estimate(&self, batch: usize) -> Duration {
        self.inner.estimate(batch)
    }

    fn busy_until(&self) -> SimTime {
        SimTime::max_of(self.inner.busy_until(), self.busy)
    }

    fn preferred_batch(&self) -> usize {
        self.inner.preferred_batch()
    }

    fn max_batch(&self) -> Option<usize> {
        self.inner.max_batch()
    }

    fn energy_profile(&self) -> ncsw_obs::EnergyProfile {
        self.inner.energy_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncsw::ModelBundle;
    use ncsw::{IntelCpu, IntelVpu};
    use vpu_nn::googlenet::Variant;

    fn model() -> ModelBundle {
        ModelBundle::googlenet_untrained(Variant::Tiny, 1)
    }

    fn cpu() -> Box<dyn ServiceHook> {
        Box::new(IntelCpu::new(model()))
    }

    fn ms(v: f64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn no_faults_is_a_passthrough() {
        let mut plain = cpu();
        let epoch = plain.busy_until();
        let mut wrapped = FaultyWorker::new(cpu(), &[], epoch, 7, 0);
        let a = plain.serve(4, epoch);
        let b = wrapped.serve(4, epoch);
        assert_eq!(a.done, b.done, "empty plan changed timing");
        assert_eq!(plain.busy_until(), wrapped.busy_until());
        assert_eq!(plain.label(), wrapped.label());
        assert_eq!(plain.energy_profile(), wrapped.energy_profile(), "profile must pass through");
    }

    #[test]
    fn unplug_fails_fast_until_reconnect() {
        let inner = cpu();
        let epoch = inner.busy_until();
        let faults = [FaultEvent::StickUnplug { at: ms(10.0), reconnect_after: Some(ms(20.0)) }];
        let mut w = FaultyWorker::new(inner, &faults, epoch, 7, 0);
        let mut null = ncsw_obs::NullRecorder;
        // Dispatch inside the outage window: fails at t + detect.
        let t = epoch + ms(15.0);
        let err = w
            .try_serve_obs(1, t, &mut BatchObs::disabled(&mut null))
            .expect_err("unplugged worker must fail");
        assert_eq!(err.kind, FailureKind::Unplugged);
        assert_eq!(err.at, t + DETECT_LATENCY);
        // After reconnect the worker serves again.
        let run = w
            .try_serve_obs(1, epoch + ms(30.0), &mut BatchObs::disabled(&mut null))
            .expect("reconnected worker must serve");
        assert!(run.start >= epoch + ms(30.0));
    }

    #[test]
    fn throttle_stretches_the_reported_span_without_overlap() {
        let mut plain = cpu();
        let epoch = plain.busy_until();
        let baseline = plain.serve(1, epoch);
        let nominal = baseline.end - baseline.start;
        let inner = cpu();
        let faults =
            [FaultEvent::ThermalThrottle { at: ms(0.0), duration: ms(60_000.0), slowdown: 2.0 }];
        let mut w = FaultyWorker::new(inner, &faults, epoch, 7, 0);
        let mut null = ncsw_obs::NullRecorder;
        let a = w.try_serve_obs(1, epoch, &mut BatchObs::disabled(&mut null)).unwrap();
        let got = a.end - a.start;
        assert!(
            got.nanos().abs_diff(nominal.nanos() * 2) <= 2,
            "throttled span {got} vs nominal {nominal}"
        );
        // The next batch queues behind the *stretched* horizon.
        let b = w.try_serve_obs(1, epoch, &mut BatchObs::disabled(&mut null)).unwrap();
        assert!(b.start >= a.end, "stretched spans must not overlap");
    }

    #[test]
    fn transient_errors_are_seeded_and_deterministic() {
        let fire = |seed: u64| -> Vec<bool> {
            let inner = cpu();
            let epoch = inner.busy_until();
            let faults = [FaultEvent::TransientExecError { per_batch_prob: 0.5 }];
            let mut w = FaultyWorker::new(inner, &faults, epoch, seed, 3);
            let mut null = ncsw_obs::NullRecorder;
            (0..16)
                .map(|_| w.try_serve_obs(1, epoch, &mut BatchObs::disabled(&mut null)).is_err())
                .collect()
        };
        assert_eq!(fire(7), fire(7), "same seed must replay");
        assert!(fire(7).iter().any(|&e| e), "p=0.5 over 16 draws should fire");
        assert!(fire(7).iter().any(|&e| !e), "p=0.5 over 16 draws should also pass");
    }

    #[test]
    fn fail_slow_stretches_silently() {
        let mut plain = cpu();
        let epoch = plain.busy_until();
        let baseline = plain.serve(1, epoch);
        let nominal = baseline.end - baseline.start;
        let faults = [FaultEvent::FailSlow { at: ms(0.0), duration: ms(60_000.0), factor: 4.0 }];
        let mut w = FaultyWorker::new(cpu(), &faults, epoch, 7, 0);
        let mut log = ncsw_obs::EventLog::new();
        let run = w
            .try_serve_obs(
                1,
                epoch,
                &mut BatchObs { rec: &mut log, batch_id: 0, worker: 0, ids: &[5] },
            )
            .unwrap();
        let got = run.end - run.start;
        assert!(
            got.nanos().abs_diff(nominal.nanos() * 4) <= 4,
            "fail-slow span {got} vs nominal {nominal}"
        );
        // The whole point of the gray fault: no FaultInject announces it.
        assert!(
            log.events().iter().all(|e| e.phase != Phase::FaultInject),
            "fail-slow must not emit FaultInject"
        );
        assert!(run.wire.is_none(), "fail-slow is a latency fault, not a wire fault");
    }

    #[test]
    fn wire_faults_are_seeded_and_drop_wins() {
        let run_with = |seed: u64| -> Vec<ncsw::service::WireReport> {
            let faults = [
                FaultEvent::ResultCorrupt { per_image_prob: 0.3 },
                FaultEvent::DuplicateCompletion { per_image_prob: 0.3 },
                FaultEvent::DroppedCompletion { per_image_prob: 0.3 },
            ];
            let inner = cpu();
            let epoch = inner.busy_until();
            let mut w = FaultyWorker::new(inner, &faults, epoch, seed, 0);
            let mut null = ncsw_obs::NullRecorder;
            (0..8)
                .map(|_| {
                    w.try_serve_obs(4, epoch, &mut BatchObs::disabled(&mut null))
                        .unwrap()
                        .wire
                        .unwrap_or_default()
                })
                .collect()
        };
        let a = run_with(7);
        assert_eq!(a, run_with(7), "same seed must replay the same wire faults");
        assert!(a.iter().any(|r| !r.is_clean()), "p=0.3 over 32 slots must fire");
        for rep in &a {
            for s in &rep.dropped {
                assert!(!rep.corrupted.contains(s) && !rep.duplicated.contains(s), "drop wins");
            }
        }
        // Wire draws come from their own stream: the exec-error pattern
        // of a run without wire faults is unchanged when they're added.
        let exec_only = |wire: bool| -> Vec<bool> {
            let mut faults = vec![FaultEvent::TransientExecError { per_batch_prob: 0.5 }];
            if wire {
                faults.push(FaultEvent::ResultCorrupt { per_image_prob: 0.5 });
            }
            let inner = cpu();
            let epoch = inner.busy_until();
            let mut w = FaultyWorker::new(inner, &faults, epoch, 7, 0);
            let mut null = ncsw_obs::NullRecorder;
            (0..16)
                .map(|_| w.try_serve_obs(1, epoch, &mut BatchObs::disabled(&mut null)).is_err())
                .collect()
        };
        assert_eq!(exec_only(false), exec_only(true), "wire stream must not perturb exec stream");
    }

    #[test]
    fn vpu_wrapper_keeps_per_image_completions() {
        let inner: Box<dyn ServiceHook> = Box::new(IntelVpu::new(model(), 4));
        let epoch = inner.busy_until();
        let mut w = FaultyWorker::new(inner, &[], epoch, 7, 0);
        let run = w.serve(8, epoch);
        assert_eq!(run.done.len(), 8);
        assert!(run.done.iter().any(|&t| t < run.end), "waves must stagger");
    }
}
