//! Property tests of serving under injected faults: for any fault plan
//! — unplugs with or without reconnect, throttles, USB degradation,
//! transient exec errors — every admitted request either completes
//! exactly once or is shed with a recorded cause, and the run's
//! causal structure survives failover.

use desim::Duration;
use ncsw::ModelBundle;
use ncsw_faults::{FaultEvent, FaultPlan};
use ncsw_serve::{serve, ArrivalProcess, FleetSpec, ServeConfig, ShedPolicy};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::OnceLock;
use vpu_nn::googlenet::Variant;

fn model() -> &'static ModelBundle {
    static MODEL: OnceLock<ModelBundle> = OnceLock::new();
    MODEL.get_or_init(|| ModelBundle::googlenet_untrained(Variant::Tiny, 1))
}

const FLEETS: [&str; 3] = ["cpu+gpu", "vpu+vpu", "cpu+vpu+vpu+vpu"];

/// Raw sample for one fault: (kind, worker, at_s, dur_s, factor, prob).
type FaultSample = (usize, usize, f64, f64, f64, f64);

fn build_fault((kind, _, at, dur, factor, prob): FaultSample) -> FaultEvent {
    match kind {
        0 => FaultEvent::StickUnplug {
            at: Duration::from_secs(at),
            // Reuse `prob` as the coin for permanent-vs-healing unplugs.
            reconnect_after: (prob < 0.75).then(|| Duration::from_secs(dur)),
        },
        1 => FaultEvent::ThermalThrottle {
            at: Duration::from_secs(at),
            duration: Duration::from_secs(dur),
            slowdown: factor,
        },
        2 => FaultEvent::UsbDegrade {
            at: Duration::from_secs(at),
            duration: Duration::from_secs(dur),
            factor,
        },
        _ => FaultEvent::TransientExecError { per_batch_prob: 0.01 + prob * 0.29 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exactly-once under faults: admitted requests complete once or
    /// shed with a cause; nothing is lost, duplicated, or invented.
    #[test]
    fn faulted_serving_conserves_requests(
        fleet_idx in 0usize..3,
        faults in prop::collection::vec(
            (0usize..4, 0usize..4, 0.0f64..8.0, 0.1f64..4.0, 1.1f64..4.0, 0.0f64..1.0),
            0..4,
        ),
        rate in 20.0f64..400.0,
        n in 50usize..200,
        seed in 0u64..1_000,
    ) {
        let spec = FleetSpec::parse(FLEETS[fleet_idx]).unwrap();
        let mut workers = spec.build(model());
        let fleet_len = workers.len();
        let mut plan = FaultPlan::empty();
        for sample in &faults {
            plan.push(Some(sample.1 % fleet_len), build_fault(*sample));
        }
        workers = plan.apply(workers, seed);

        let cfg = ServeConfig {
            queue_capacity: 8 + (seed % 32) as usize,
            shed: match seed % 3 {
                0 => ShedPolicy::Reject,
                1 => ShedPolicy::DropOldest,
                _ => ShedPolicy::DeadlineAware,
            },
            seed,
            ..ServeConfig::default()
        };
        let load = ArrivalProcess::Poisson { rate_per_sec: rate };
        let outcome = serve(&mut workers, &cfg, &load, n);

        prop_assert_eq!(outcome.completed.len() + outcome.shed.len(), n);
        let mut ids = HashSet::new();
        for id in outcome
            .completed
            .iter()
            .map(|r| r.id)
            .chain(outcome.shed.iter().map(|s| s.id))
        {
            prop_assert!(ids.insert(id), "request {} accounted twice", id);
            prop_assert!((id as usize) < n, "unknown request id {}", id);
        }

        // Causality survives failover: the successful dispatch instant
        // still sits between arrival and service start.
        for r in &outcome.completed {
            prop_assert!(r.arrival <= r.dispatched, "{:?}", r);
            prop_assert!(r.dispatched <= r.service_start, "{:?}", r);
            prop_assert!(r.service_start < r.completed, "{:?}", r);
            prop_assert!(r.attempts >= 1 && r.attempts <= cfg.robust.max_attempts, "{:?}", r);
        }
        for s in &outcome.shed {
            prop_assert!(s.shed_at >= s.arrival, "{:?}", s);
        }

        // Retry accounting is consistent with what completed.
        let retried = outcome.completed.iter().filter(|r| r.attempts > 1).count() as u64;
        prop_assert!(outcome.faults.retries >= retried, "retries under-counted");
        if plan.is_empty() {
            prop_assert_eq!(outcome.faults.injected, 0);
        }
    }
}
