//! Deterministic random-number streams.
//!
//! Every stochastic component of the reproduction — synthetic image noise,
//! pseudo-trained weights, simulated timing jitter — draws from a stream
//! derived from a global experiment seed plus a textual label. Re-running
//! any experiment therefore produces bit-identical results, independent of
//! thread scheduling or crate iteration order.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Default experiment seed (ILSVRC year, as good as any).
pub const DEFAULT_SEED: u64 = 2012;

/// FNV-1a 64-bit hash, used to fold stream labels into seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A ChaCha8 RNG seeded directly from a 64-bit seed.
pub fn seeded(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// An independent named stream: the same `(seed, label)` pair always yields
/// the same sequence, and distinct labels yield decorrelated sequences.
pub fn stream(seed: u64, label: &str) -> ChaCha8Rng {
    let mixed = seed ^ fnv1a(label.as_bytes()).rotate_left(17);
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Sub-stream indexed by an integer (e.g. one per image or per device).
pub fn indexed_stream(seed: u64, label: &str, index: u64) -> ChaCha8Rng {
    let mixed = seed
        ^ fnv1a(label.as_bytes()).rotate_left(17)
        ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Standard-normal sample via Box–Muller (keeps us independent of
/// rand_distr; two uniforms in, one normal out).
pub fn normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Fill a slice with N(0, sigma^2) samples.
pub fn fill_normal<R: Rng>(rng: &mut R, sigma: f64, out: &mut [f32]) {
    for v in out {
        *v = (normal(rng) * sigma) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream(1, "weights");
        let mut b = stream(1, "weights");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_labels_decorrelate() {
        let mut a = stream(1, "weights");
        let mut b = stream(1, "noise");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn distinct_indices_decorrelate() {
        let mut a = indexed_stream(7, "img", 0);
        let mut b = indexed_stream(7, "img", 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a published test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fill_normal_scales() {
        let mut rng = seeded(5);
        let mut buf = vec![0.0f32; 10_000];
        fill_normal(&mut rng, 3.0, &mut buf);
        let var = buf.iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / buf.len() as f64;
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sigma {}", var.sqrt());
    }
}
