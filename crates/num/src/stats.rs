//! Descriptive statistics for experiment reporting.
//!
//! Every figure in the paper shows the standard deviation of the samples as
//! error bars; [`OnlineStats`] provides numerically stable (Welford) running
//! moments, and [`Summary`] is the frozen result attached to each reported
//! series point.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance accumulator (Welford's method).
///
/// ```
/// use vpu_num::OnlineStats;
/// let s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.variance(), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n-1 denominator); zero for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Freeze into a reportable summary.
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            stddev: self.stddev(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Frozen sample statistics: one point (with its error bar) in a figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: u64,
    pub mean: f64,
    pub stddev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Half-width of the 95% normal-approximation confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (stddev / |mean|); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

/// Relative difference |a-b| / max(|a|,|b|), safe at zero.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// Arithmetic mean of a slice; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of a slice; 0 for fewer than two elements.
pub fn stddev(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<OnlineStats>().stddev()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.summary().min, 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_variance() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1 denominator: 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: OnlineStats = data.iter().copied().collect();
        let mut left: OnlineStats = data[..37].iter().copied().collect();
        let right: OnlineStats = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_ci() {
        let s: OnlineStats = (0..100).map(|i| i as f64).collect();
        let sum = s.summary();
        assert!(sum.ci95_half_width() > 0.0);
        assert!((sum.cv() - sum.stddev / sum.mean).abs() < 1e-12);
    }

    #[test]
    fn rel_diff_cases() {
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
        assert!((rel_diff(1.0, 2.0) - 0.5).abs() < 1e-12);
        assert!((rel_diff(-1.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Welford mean matches the naive mean.
        #[test]
        fn mean_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: OnlineStats = xs.iter().copied().collect();
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        }

        /// Variance is non-negative and min <= mean <= max.
        #[test]
        fn invariants(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let s: OnlineStats = xs.iter().copied().collect();
            prop_assert!(s.variance() >= 0.0);
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        /// Merging in any split position agrees with sequential accumulation.
        #[test]
        fn merge_any_split(xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
                           split_frac in 0.0f64..1.0) {
            let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
            let whole: OnlineStats = xs.iter().copied().collect();
            let mut l: OnlineStats = xs[..split].iter().copied().collect();
            let r: OnlineStats = xs[split..].iter().copied().collect();
            l.merge(&r);
            prop_assert_eq!(l.count(), whole.count());
            prop_assert!((l.mean() - whole.mean()).abs() < 1e-7);
            prop_assert!((l.variance() - whole.variance()).abs() < 1e-5);
        }
    }
}
