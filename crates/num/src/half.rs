//! Software IEEE-754 binary16 ("half precision").
//!
//! The Myriad 2 SHAVE processors operate on 128-bit vectors of eight FP16
//! lanes. This module reproduces that arithmetic on the host: every binary
//! operation converts to f32, computes exactly (f32 is wide enough to hold
//! any product/sum of two binary16 values exactly up to rounding), and
//! rounds the result back to binary16 with round-to-nearest-even — the
//! same behaviour as a hardware FP16 FMA-free ALU performing one rounding
//! per operation.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

/// IEEE-754 binary16 floating point number.
///
/// Stored as its raw bit pattern. Conversions implement round-to-nearest,
/// ties-to-even, matching both x86 `vcvtps2ph` and the Myriad 2 VAU.
///
/// ```
/// use vpu_num::f16;
/// let a = f16::from_f32(1.5);
/// let b = f16::from_f32(0.25);
/// assert_eq!((a + b).to_f32(), 1.75);
/// // Per-operation rounding: 2048 + 1 stagnates in binary16.
/// assert_eq!((f16::from_f32(2048.0) + f16::ONE).to_f32(), 2048.0);
/// ```
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct f16(pub u16);

/// Exponent bias of binary16.
const EXP_BIAS: i32 = 15;
/// All exponent bits set (Inf/NaN marker).
const EXP_MASK: u16 = 0x7C00;
/// Mantissa bits.
const MAN_MASK: u16 = 0x03FF;
/// Sign bit.
const SIGN_MASK: u16 = 0x8000;

impl f16 {
    pub const ZERO: f16 = f16(0x0000);
    pub const NEG_ZERO: f16 = f16(0x8000);
    pub const ONE: f16 = f16(0x3C00);
    pub const NEG_ONE: f16 = f16(0xBC00);
    pub const TWO: f16 = f16(0x4000);
    pub const INFINITY: f16 = f16(0x7C00);
    pub const NEG_INFINITY: f16 = f16(0xFC00);
    pub const NAN: f16 = f16(0x7E00);
    /// Largest finite value: 65504.
    pub const MAX: f16 = f16(0x7BFF);
    /// Most negative finite value: -65504.
    pub const MIN: f16 = f16(0xFBFF);
    /// Smallest positive normal value: 2^-14.
    pub const MIN_POSITIVE: f16 = f16(0x0400);
    /// Smallest positive subnormal value: 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: f16 = f16(0x0001);
    /// Machine epsilon: 2^-10.
    pub const EPSILON: f16 = f16(0x1400);
    /// Number of significand digits (including the implicit bit).
    pub const MANTISSA_DIGITS: u32 = 11;

    /// Reinterpret raw bits as an `f16`.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let x = value.to_bits();
        let sign = (x >> 16) & 0x8000;
        let exp = x & 0x7F80_0000;
        let man = x & 0x007F_FFFF;

        // Inf or NaN: all f32 exponent bits set.
        if exp == 0x7F80_0000 {
            let nan_bit = if man == 0 { 0 } else { 0x0200 };
            // Preserve the top mantissa bits of a NaN payload; force the
            // quiet bit so a signalling payload that shifts to zero does
            // not collapse into an infinity.
            return f16((sign | 0x7C00 | nan_bit | (man >> 13)) as u16);
        }

        let unbiased = ((exp >> 23) as i32) - 127;
        let half_exp = unbiased + EXP_BIAS;

        // Overflow to infinity.
        if half_exp >= 0x1F {
            return f16((sign | 0x7C00) as u16);
        }

        // Underflow: subnormal or zero.
        if half_exp <= 0 {
            // Values below 2^-25 round to zero (2^-25 itself ties to even
            // = zero as well; the guard below handles it).
            if 14 - half_exp > 24 {
                return f16(sign as u16);
            }
            let man = man | 0x0080_0000; // restore the implicit bit
            let shift = (14 - half_exp) as u32;
            let mut half_man = man >> shift;
            // Round to nearest even on the bits shifted out.
            let round_bit = 1u32 << (shift - 1);
            if (man & round_bit) != 0 && (man & (3 * round_bit - 1)) != 0 {
                half_man += 1;
            }
            return f16((sign | half_man) as u16);
        }

        let half_exp = (half_exp as u32) << 10;
        let half_man = man >> 13;
        let round_bit = 0x0000_1000u32;
        let mut bits = sign | half_exp | half_man;
        if (man & round_bit) != 0 && (man & (3 * round_bit - 1)) != 0 {
            // A mantissa carry propagates into the exponent correctly,
            // including the 65504 -> Inf transition.
            bits += 1;
        }
        f16(bits as u16)
    }

    /// Convert from `f64` (rounds via `f32`; double rounding is harmless
    /// here because f32 keeps 13 extra mantissa bits beyond binary16,
    /// exceeding the 2p+2 safety margin).
    #[inline]
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Exact widening conversion to `f32` (every binary16 value is
    /// representable in binary32).
    pub fn to_f32(self) -> f32 {
        let i = self.0;
        // Signed zero.
        if i & 0x7FFF == 0 {
            return f32::from_bits((i as u32) << 16);
        }
        let half_sign = (i & SIGN_MASK) as u32;
        let half_exp = (i & EXP_MASK) as u32;
        let half_man = (i & MAN_MASK) as u32;

        if half_exp == 0x7C00 {
            if half_man == 0 {
                return f32::from_bits((half_sign << 16) | 0x7F80_0000);
            }
            // NaN: keep payload, force quiet bit.
            return f32::from_bits((half_sign << 16) | 0x7FC0_0000 | (half_man << 13));
        }

        let sign = half_sign << 16;
        if half_exp == 0 {
            // Subnormal: normalize by shifting the mantissa up.
            let e = half_man.leading_zeros() - 22; // payload MSB (bit 9) has 22 leading zeros in a u32
            let exp = (127 - 15 - e) << 23;
            let man = (half_man << (14 + e)) & 0x007F_FFFF;
            return f32::from_bits(sign | exp | man);
        }

        let unbiased = ((half_exp >> 10) as i32) - EXP_BIAS;
        let exp = ((unbiased + 127) as u32) << 23;
        let man = half_man << 13;
        f32::from_bits(sign | exp | man)
    }

    /// Exact widening conversion to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True for subnormal values (non-zero, exponent field zero).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    #[inline]
    pub fn is_sign_positive(self) -> bool {
        !self.is_sign_negative()
    }

    #[inline]
    pub fn abs(self) -> Self {
        f16(self.0 & !SIGN_MASK)
    }

    #[inline]
    pub fn max(self, other: Self) -> Self {
        // IEEE maxNum: ignore a NaN operand if the other is a number.
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.to_f32() >= other.to_f32() {
            self
        } else {
            other
        }
    }

    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.to_f32() <= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// Square root, rounded once (correct because sqrt in f32 followed by
    /// a binary16 rounding is exactly rounded for binary16 inputs).
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_f32(self.to_f32().sqrt())
    }

    /// e^self with one final rounding (transcendental, faithfully rounded).
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_f32(self.to_f32().exp())
    }

    /// Natural logarithm with one final rounding.
    #[inline]
    pub fn ln(self) -> Self {
        Self::from_f32(self.to_f32().ln())
    }

    /// self^p with one final rounding.
    #[inline]
    pub fn powf(self, p: f32) -> Self {
        Self::from_f32(self.to_f32().powf(p))
    }

    /// Reciprocal with one rounding.
    #[inline]
    pub fn recip(self) -> Self {
        Self::from_f32(1.0 / self.to_f32())
    }

    /// Units-in-the-last-place distance to another value of the same sign;
    /// used by tests to assert rounding quality.
    pub fn ulp_distance(self, other: Self) -> u32 {
        fn key(h: f16) -> i32 {
            let b = h.0;
            if b & SIGN_MASK == 0 {
                b as i32
            } else {
                -((b & !SIGN_MASK) as i32)
            }
        }
        (key(self) - key(other)).unsigned_abs()
    }
}

impl From<f32> for f16 {
    #[inline]
    fn from(v: f32) -> Self {
        f16::from_f32(v)
    }
}

impl From<f16> for f32 {
    #[inline]
    fn from(v: f16) -> Self {
        v.to_f32()
    }
}

impl From<f16> for f64 {
    #[inline]
    fn from(v: f16) -> Self {
        v.to_f64()
    }
}

impl From<i8> for f16 {
    #[inline]
    fn from(v: i8) -> Self {
        f16::from_f32(v as f32)
    }
}

impl From<u8> for f16 {
    #[inline]
    fn from(v: u8) -> Self {
        f16::from_f32(v as f32)
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for f16 {
            type Output = f16;
            #[inline]
            fn $method(self, rhs: f16) -> f16 {
                f16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

binop!(Add, add, +);
binop!(Sub, sub, -);
binop!(Mul, mul, *);
binop!(Div, div, /);
binop!(Rem, rem, %);

impl AddAssign for f16 {
    #[inline]
    fn add_assign(&mut self, rhs: f16) {
        *self = *self + rhs;
    }
}

impl SubAssign for f16 {
    #[inline]
    fn sub_assign(&mut self, rhs: f16) {
        *self = *self - rhs;
    }
}

impl MulAssign for f16 {
    #[inline]
    fn mul_assign(&mut self, rhs: f16) {
        *self = *self * rhs;
    }
}

impl DivAssign for f16 {
    #[inline]
    fn div_assign(&mut self, rhs: f16) {
        *self = *self / rhs;
    }
}

impl Neg for f16 {
    type Output = f16;
    #[inline]
    fn neg(self) -> f16 {
        f16(self.0 ^ SIGN_MASK)
    }
}

impl Sum for f16 {
    fn sum<I: Iterator<Item = f16>>(iter: I) -> f16 {
        iter.fold(f16::ZERO, |a, b| a + b)
    }
}

impl Product for f16 {
    fn product<I: Iterator<Item = f16>>(iter: I) -> f16 {
        iter.fold(f16::ONE, |a, b| a * b)
    }
}

impl PartialEq for f16 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        // +0 == -0
        if (self.0 | other.0) & !SIGN_MASK == 0 {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for f16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip() {
        assert_eq!(f16::ONE.to_f32(), 1.0);
        assert_eq!(f16::TWO.to_f32(), 2.0);
        assert_eq!(f16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(f16::MAX.to_f32(), 65504.0);
        assert_eq!(f16::MIN.to_f32(), -65504.0);
        assert_eq!(f16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(f16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(f16::EPSILON.to_f32(), 2.0f32.powi(-10));
    }

    #[test]
    fn zero_signs() {
        assert_eq!(f16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(f16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(f16::ZERO, f16::NEG_ZERO);
        assert!(f16::NEG_ZERO.is_sign_negative());
    }

    #[test]
    fn infinity_and_nan() {
        assert_eq!(f16::from_f32(f32::INFINITY), f16::INFINITY);
        assert_eq!(f16::from_f32(f32::NEG_INFINITY), f16::NEG_INFINITY);
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(f16::NAN.to_f32().is_nan());
        assert!(f16::INFINITY.is_infinite());
        assert!(!f16::INFINITY.is_nan());
        // Overflow saturates to infinity.
        assert_eq!(f16::from_f32(1e9), f16::INFINITY);
        assert_eq!(f16::from_f32(-1e9), f16::NEG_INFINITY);
        // 65520 is the rounding boundary: ties to even = infinity.
        assert_eq!(f16::from_f32(65520.0), f16::INFINITY);
        assert_eq!(f16::from_f32(65519.0), f16::MAX);
    }

    #[test]
    fn subnormal_conversion() {
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16::from_f32(tiny).to_bits(), 0x0001);
        assert_eq!(f16::from_f32(tiny * 3.0).to_bits(), 0x0003);
        // Below half the smallest subnormal rounds to zero.
        assert_eq!(f16::from_f32(2.0f32.powi(-26)).to_bits(), 0x0000);
        // Exactly half the smallest subnormal ties to even = zero.
        assert_eq!(f16::from_f32(2.0f32.powi(-25)).to_bits(), 0x0000);
        // Just above half rounds up.
        assert_eq!(f16::from_f32(2.0f32.powi(-25) * 1.0001).to_bits(), 0x0001);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10; ties to even = 1.0.
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(tie), f16::ONE);
        // 1 + 3*2^-11 ties between 1+2^-10 and 1+2^-9; even mantissa wins.
        let tie2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(tie2).to_bits(), 0x3C02);
        // Slightly above the tie rounds up.
        assert_eq!(f16::from_f32(tie + 1e-6).to_bits(), 0x3C01);
    }

    #[test]
    fn exhaustive_round_trip_through_f32() {
        // Every finite f16 must survive f16 -> f32 -> f16 exactly.
        for bits in 0..=u16::MAX {
            let h = f16::from_bits(bits);
            if h.is_nan() {
                assert!(f16::from_f32(h.to_f32()).is_nan(), "bits {bits:#06x}");
                continue;
            }
            let rt = f16::from_f32(h.to_f32());
            assert_eq!(rt.to_bits(), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn arithmetic_basics() {
        let a = f16::from_f32(1.5);
        let b = f16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b / f16::from_f32(0.75)).to_f32(), 3.0);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn arithmetic_rounds_per_operation() {
        // 2048 + 1 is not representable in binary16 (ulp at 2048 is 2),
        // so FP16 accumulation silently drops the increment — the classic
        // "stagnation" effect the paper's FP16 experiments probe.
        let big = f16::from_f32(2048.0);
        let one = f16::ONE;
        assert_eq!((big + one).to_f32(), 2048.0);
        // But 2048 + 2 works.
        assert_eq!((big + f16::TWO).to_f32(), 2050.0);
    }

    #[test]
    fn nan_propagates_through_ops() {
        assert!((f16::NAN + f16::ONE).is_nan());
        assert!((f16::NAN * f16::ZERO).is_nan());
        assert!((f16::INFINITY - f16::INFINITY).is_nan());
        assert!((f16::ZERO / f16::ZERO).is_nan());
    }

    #[test]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN incomparability is what's under test
    fn comparisons() {
        assert!(f16::ONE < f16::TWO);
        assert!(f16::NEG_ONE < f16::ZERO);
        assert!(f16::NEG_INFINITY < f16::MIN);
        assert!(!(f16::NAN < f16::ONE));
        assert!(!(f16::NAN == f16::NAN));
        assert_eq!(f16::ONE.max(f16::TWO), f16::TWO);
        assert_eq!(f16::ONE.min(f16::NEG_ONE), f16::NEG_ONE);
        assert_eq!(f16::NAN.max(f16::ONE), f16::ONE);
        assert_eq!(f16::ONE.max(f16::NAN), f16::ONE);
    }

    #[test]
    fn sum_and_product() {
        let v = [1.0f32, 2.0, 3.0, 4.0].map(f16::from_f32);
        let s: f16 = v.iter().copied().sum();
        let p: f16 = v.iter().copied().product();
        assert_eq!(s.to_f32(), 10.0);
        assert_eq!(p.to_f32(), 24.0);
    }

    #[test]
    fn ulp_distance_is_metric_like() {
        assert_eq!(f16::ONE.ulp_distance(f16::ONE), 0);
        assert_eq!(f16::ONE.ulp_distance(f16::from_bits(0x3C01)), 1);
        assert_eq!(f16::from_f32(1.0).ulp_distance(f16::from_f32(-1.0)), 2 * 0x3C00);
    }

    #[test]
    fn abs_and_signs() {
        assert_eq!(f16::NEG_ONE.abs(), f16::ONE);
        assert_eq!(f16::NEG_ZERO.abs().to_bits(), 0);
        assert!(f16::from_f32(-3.5).is_sign_negative());
        assert!(f16::from_f32(3.5).is_sign_positive());
    }

    #[test]
    fn sqrt_exp_ln() {
        assert_eq!(f16::from_f32(4.0).sqrt().to_f32(), 2.0);
        assert_eq!(f16::ZERO.exp(), f16::ONE);
        assert!((f16::ONE.exp().to_f32() - std::f32::consts::E).abs() < 2e-3);
        assert!((f16::from_f32(std::f32::consts::E).ln().to_f32() - 1.0).abs() < 1e-3);
        assert!(f16::NEG_ONE.sqrt().is_nan());
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", f16::from_f32(1.5)), "1.5");
        assert_eq!(format!("{:?}", f16::from_f32(1.5)), "1.5f16");
    }

    #[test]
    fn from_small_ints() {
        assert_eq!(f16::from(3u8).to_f32(), 3.0);
        assert_eq!(f16::from(-7i8).to_f32(), -7.0);
    }

    #[test]
    fn serde_round_trip() {
        let h = f16::from_f32(0.333);
        let json = serde_json::to_string(&h).unwrap();
        let back: f16 = serde_json::from_str(&json).unwrap();
        assert_eq!(h.to_bits(), back.to_bits());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// f32 -> f16 must be monotone on finite inputs.
        #[test]
        fn conversion_is_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let hlo = f16::from_f32(lo);
            let hhi = f16::from_f32(hi);
            prop_assert!(hlo.to_f32() <= hhi.to_f32());
        }

        /// Rounding error is bounded by half a ulp of the result.
        #[test]
        fn rounding_error_within_half_ulp(x in -60000.0f32..60000.0) {
            let h = f16::from_f32(x);
            let back = h.to_f32();
            // ulp at the magnitude of x (normal range only)
            let mag = x.abs().max(2.0f32.powi(-14));
            let ulp = 2.0f32.powi(mag.log2().floor() as i32 - 10);
            prop_assert!((back - x).abs() <= ulp / 2.0 + f32::EPSILON,
                "x={x} back={back} ulp={ulp}");
        }

        /// Addition is commutative in FP16 (it rounds the same f32 result).
        #[test]
        fn addition_commutes(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
            let (x, y) = (f16::from_f32(a), f16::from_f32(b));
            prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
        }

        /// Multiplication is commutative in FP16.
        #[test]
        fn multiplication_commutes(a in -100.0f32..100.0, b in -100.0f32..100.0) {
            let (x, y) = (f16::from_f32(a), f16::from_f32(b));
            prop_assert_eq!((x * y).to_bits(), (y * x).to_bits());
        }

        /// Negation is an exact involution on every bit pattern.
        #[test]
        fn negation_involution(bits in any::<u16>()) {
            let h = f16::from_bits(bits);
            prop_assert_eq!((-(-h)).to_bits(), bits);
        }

        /// x - x is exactly +0 for finite x (basic cancellation sanity).
        #[test]
        fn self_subtraction_is_zero(a in -60000.0f32..60000.0) {
            let x = f16::from_f32(a);
            prop_assert_eq!((x - x).to_f32(), 0.0);
        }

        /// abs strips the sign on all finite patterns.
        #[test]
        fn abs_is_nonnegative(bits in any::<u16>()) {
            let h = f16::from_bits(bits);
            if !h.is_nan() {
                prop_assert!(h.abs().is_sign_positive());
            }
        }

        /// ulp distance of adjacent bit patterns of the same sign is 1.
        #[test]
        fn adjacent_ulp(bits in 0u16..0x7BFF) {
            let a = f16::from_bits(bits);
            let b = f16::from_bits(bits + 1);
            prop_assert_eq!(a.ulp_distance(b), 1);
        }
    }
}
