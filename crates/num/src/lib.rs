//! Numeric foundations for the VPU co-processor reproduction.
//!
//! The Myriad 2 VPU computes natively in IEEE-754 binary16 ("FP16", the
//! `half` type in the NCSDK headers). No FP16 hardware is assumed on the
//! host, so [`half::f16`] provides a bit-exact software implementation with
//! round-to-nearest-even semantics, including subnormals, infinities and
//! NaN propagation. All VPU-side arithmetic in the simulator goes through
//! this type, which is what makes the FP32-vs-FP16 accuracy experiments
//! (paper Fig. 7) meaningful rather than cosmetic.
//!
//! The crate also hosts the descriptive statistics used for the error bars
//! in every figure ([`stats`]) and the deterministic seeded RNG streams
//! ([`rng`]) that keep every experiment reproducible bit-for-bit.

pub mod half;
pub mod rng;
pub mod stats;

pub use half::f16;
pub use stats::{OnlineStats, Summary};
