//! FP32 master weights, keyed by layer name.
//!
//! Mirrors a `.caffemodel`: the trained parameters live at full precision
//! and are quantized per-target at compile time (f32 for the CPU/GPU
//! devices, binary16 when the NCS graph file is produced).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters of one weighted layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerParams {
    pub w: Vec<f32>,
    pub b: Vec<f32>,
}

/// The full parameter set of a network.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    layers: BTreeMap<String, LayerParams>,
}

impl Weights {
    pub fn new() -> Self {
        Weights::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, w: Vec<f32>, b: Vec<f32>) {
        self.layers.insert(name.into(), LayerParams { w, b });
    }

    pub fn get(&self, name: &str) -> Option<&LayerParams> {
        self.layers.get(name)
    }

    pub fn get_mut(&mut self, name: &str) -> Option<&mut LayerParams> {
        self.layers.get_mut(name)
    }

    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    pub fn layer_names(&self) -> impl Iterator<Item = &str> {
        self.layers.keys().map(String::as_str)
    }

    /// Total parameter count across layers.
    pub fn param_count(&self) -> u64 {
        self.layers.values().map(|p| (p.w.len() + p.b.len()) as u64).sum()
    }

    /// Serialize to JSON (the repo's portable caffemodel substitute).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("weights serialize")
    }

    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut w = Weights::new();
        assert!(w.is_empty());
        w.insert("conv1", vec![1.0, 2.0], vec![0.5]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.get("conv1").unwrap().w, vec![1.0, 2.0]);
        assert!(w.get("missing").is_none());
        assert_eq!(w.param_count(), 3);
    }

    #[test]
    fn mutation() {
        let mut w = Weights::new();
        w.insert("fc", vec![0.0; 4], vec![0.0; 2]);
        w.get_mut("fc").unwrap().b[1] = 9.0;
        assert_eq!(w.get("fc").unwrap().b, vec![0.0, 9.0]);
    }

    #[test]
    fn json_round_trip() {
        let mut w = Weights::new();
        w.insert("a", vec![1.5, -2.5], vec![0.0]);
        w.insert("b", vec![], vec![3.0]);
        let json = w.to_json();
        let back = Weights::from_json(&json).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn names_sorted() {
        let mut w = Weights::new();
        w.insert("z", vec![], vec![]);
        w.insert("a", vec![], vec![]);
        let names: Vec<&str> = w.layer_names().collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
