//! Fluent construction of network DAGs, including the inception module.

use crate::graph::NetworkSpec;
use crate::layer::{LayerKind, Node};
use vpu_tensor::kernels::conv::ConvParams;
use vpu_tensor::kernels::lrn::LrnParams;
use vpu_tensor::kernels::pool::{PoolKind, PoolParams};
use vpu_tensor::Shape;

/// Incrementally builds a [`NetworkSpec`]; every method returns the index
/// of the node it added so branches can fan out and join (concat).
///
/// ```
/// use vpu_nn::NetBuilder;
/// use vpu_tensor::Shape;
/// let mut b = NetBuilder::new("demo", Shape::chw(3, 32, 32));
/// let x = b.input();
/// let c = b.conv("conv1", x, 8, 3, 1, 1, true);
/// let out = b.inception("mix", c, 8, 8, 12, 2, 4, 4);
/// b.softmax("prob", out);
/// let spec = b.build();
/// assert_eq!(spec.infer_shapes()[out].c, 8 + 12 + 4 + 4);
/// ```
pub struct NetBuilder {
    name: String,
    input_shape: Shape,
    nodes: Vec<Node>,
}

impl NetBuilder {
    pub fn new(name: impl Into<String>, input_shape: Shape) -> Self {
        NetBuilder {
            name: name.into(),
            input_shape,
            nodes: vec![Node { name: "input".into(), kind: LayerKind::Input, inputs: vec![] }],
        }
    }

    /// Index of the input node (always 0).
    pub fn input(&self) -> usize {
        0
    }

    fn push(&mut self, name: impl Into<String>, kind: LayerKind, inputs: Vec<usize>) -> usize {
        self.nodes.push(Node { name: name.into(), kind, inputs });
        self.nodes.len() - 1
    }

    /// Convolution with optional fused ReLU.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        input: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        relu: bool,
    ) -> usize {
        self.push(
            name,
            LayerKind::Conv {
                params: ConvParams::new(out_channels, kernel, stride, pad),
                fused_relu: relu,
            },
            vec![input],
        )
    }

    pub fn relu(&mut self, name: impl Into<String>, input: usize) -> usize {
        self.push(name, LayerKind::Relu, vec![input])
    }

    pub fn max_pool(
        &mut self,
        name: impl Into<String>,
        input: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> usize {
        self.push(
            name,
            LayerKind::Pool(PoolParams::new(PoolKind::Max, kernel, stride, pad)),
            vec![input],
        )
    }

    pub fn avg_pool(
        &mut self,
        name: impl Into<String>,
        input: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> usize {
        self.push(
            name,
            LayerKind::Pool(PoolParams::new(PoolKind::Avg, kernel, stride, pad)),
            vec![input],
        )
    }

    pub fn lrn(&mut self, name: impl Into<String>, input: usize, params: LrnParams) -> usize {
        self.push(name, LayerKind::Lrn(params), vec![input])
    }

    pub fn concat(&mut self, name: impl Into<String>, inputs: Vec<usize>) -> usize {
        self.push(name, LayerKind::Concat, inputs)
    }

    pub fn dropout(&mut self, name: impl Into<String>, input: usize, ratio: f32) -> usize {
        self.push(name, LayerKind::Dropout { ratio }, vec![input])
    }

    pub fn dense(&mut self, name: impl Into<String>, input: usize, out_features: usize) -> usize {
        self.push(name, LayerKind::Dense { out_features }, vec![input])
    }

    pub fn softmax(&mut self, name: impl Into<String>, input: usize) -> usize {
        self.push(name, LayerKind::Softmax, vec![input])
    }

    /// GoogLeNet inception module (Szegedy et al., Fig. 2b): four parallel
    /// branches — 1×1, 1×1→3×3, 1×1→5×5, 3×3 maxpool→1×1 — concatenated
    /// along channels. All convolutions carry fused ReLU.
    #[allow(clippy::too_many_arguments)]
    pub fn inception(
        &mut self,
        name: &str,
        input: usize,
        c1: usize,
        c3_reduce: usize,
        c3: usize,
        c5_reduce: usize,
        c5: usize,
        pool_proj: usize,
    ) -> usize {
        let b1 = self.conv(format!("{name}/1x1"), input, c1, 1, 1, 0, true);
        let r3 = self.conv(format!("{name}/3x3_reduce"), input, c3_reduce, 1, 1, 0, true);
        let b3 = self.conv(format!("{name}/3x3"), r3, c3, 3, 1, 1, true);
        let r5 = self.conv(format!("{name}/5x5_reduce"), input, c5_reduce, 1, 1, 0, true);
        let b5 = self.conv(format!("{name}/5x5"), r5, c5, 5, 1, 2, true);
        let pp = self.max_pool(format!("{name}/pool"), input, 3, 1, 1);
        let bp = self.conv(format!("{name}/pool_proj"), pp, pool_proj, 1, 1, 0, true);
        self.concat(format!("{name}/output"), vec![b1, b3, b5, bp])
    }

    /// Finalize; validates the graph by running shape inference.
    pub fn build(self) -> NetworkSpec {
        let spec =
            NetworkSpec { name: self.name, input_shape: self.input_shape, nodes: self.nodes };
        spec.infer_shapes();
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain() {
        let mut b = NetBuilder::new("chain", Shape::chw(3, 16, 16));
        let x = b.input();
        let c = b.conv("c1", x, 8, 3, 1, 1, true);
        let p = b.max_pool("p1", c, 2, 2, 0);
        let d = b.dense("fc", p, 10);
        b.softmax("prob", d);
        let spec = b.build();
        assert_eq!(spec.nodes.len(), 5);
        assert_eq!(spec.output_shape(), Shape::vector(1, 10));
    }

    #[test]
    fn inception_module_structure() {
        let mut b = NetBuilder::new("inc", Shape::chw(192, 28, 28));
        let x = b.input();
        let out = b.inception("inception_3a", x, 64, 96, 128, 16, 32, 32);
        let spec = NetworkSpec {
            name: "inc".into(),
            input_shape: Shape::chw(192, 28, 28),
            nodes: b.nodes.clone(),
        };
        let shapes = spec.infer_shapes();
        // 64 + 128 + 32 + 32 = 256 channels out, spatial preserved.
        assert_eq!(shapes[out], Shape::new(1, 256, 28, 28));
        // 8 nodes added: 6 convs + 1 pool + 1 concat.
        assert_eq!(spec.nodes.len(), 9);
    }

    #[test]
    fn branch_names_are_cafe_style() {
        let mut b = NetBuilder::new("inc", Shape::chw(192, 28, 28));
        let x = b.input();
        b.inception("inception_3a", x, 64, 96, 128, 16, 32, 32);
        let spec = b.build();
        assert!(spec.node_index("inception_3a/5x5_reduce").is_some());
        assert!(spec.node_index("inception_3a/pool_proj").is_some());
        assert!(spec.node_index("inception_3a/output").is_some());
    }

    #[test]
    fn dropout_and_lrn() {
        let mut b = NetBuilder::new("x", Shape::chw(4, 4, 4));
        let x = b.input();
        let l = b.lrn("norm1", x, LrnParams::googlenet());
        let d = b.dropout("drop", l, 0.4);
        b.relu("r", d);
        let spec = b.build();
        assert_eq!(spec.output_shape(), Shape::chw(4, 4, 4).with_batch(1));
    }
}
