//! Additional CNN topologies beyond GoogLeNet.
//!
//! The paper's reference \[37\] (Pena et al., "Benchmarking of CNNs for
//! low-cost, low-power robotics applications") measures several networks
//! on the same NCS platform; these builders let the reproduction run that
//! comparison too. Both use only operators the framework already
//! supports:
//!
//! * [`squeezenet_v10`] — SqueezeNet v1.0 (Iandola et al. 2016): fire
//!   modules (1×1 squeeze → parallel 1×1/3×3 expand → concat), ~1.25 M
//!   parameters, a favourite on the NCS because the graph file is tiny.
//! * [`alexnet_one_tower`] — AlexNet in its single-tower formulation
//!   (no grouped convolutions), ~61 M parameters: the classic FC-heavy
//!   contrast to the all-conv networks.

use crate::builder::NetBuilder;
use crate::graph::NetworkSpec;
use vpu_tensor::kernels::lrn::LrnParams;
use vpu_tensor::Shape;

/// SqueezeNet v1.0 fire module: squeeze 1×1 → expand 1×1 ∥ 3×3 → concat.
fn fire(b: &mut NetBuilder, name: &str, input: usize, squeeze: usize, expand: usize) -> usize {
    let s = b.conv(format!("{name}/squeeze1x1"), input, squeeze, 1, 1, 0, true);
    let e1 = b.conv(format!("{name}/expand1x1"), s, expand, 1, 1, 0, true);
    let e3 = b.conv(format!("{name}/expand3x3"), s, expand, 3, 1, 1, true);
    b.concat(format!("{name}/concat"), vec![e1, e3])
}

/// SqueezeNet v1.0 (224×224×3 → 1000 classes).
pub fn squeezenet_v10() -> NetworkSpec {
    squeezenet_v10_with_classes(1000)
}

/// SqueezeNet v1.0 with a custom classifier width.
pub fn squeezenet_v10_with_classes(classes: usize) -> NetworkSpec {
    let mut b = NetBuilder::new("squeezenet_v1.0", Shape::chw(3, 224, 224));
    let x = b.input();
    let c1 = b.conv("conv1", x, 96, 7, 2, 3, true); // 112 (pad 3: v1.0 uses valid 111; keep extent stable)
    let p1 = b.max_pool("pool1", c1, 3, 2, 0); // 56
    let f2 = fire(&mut b, "fire2", p1, 16, 64); // 128ch
    let f3 = fire(&mut b, "fire3", f2, 16, 64);
    let f4 = fire(&mut b, "fire4", f3, 32, 128); // 256ch
    let p4 = b.max_pool("pool4", f4, 3, 2, 0); // 28
    let f5 = fire(&mut b, "fire5", p4, 32, 128);
    let f6 = fire(&mut b, "fire6", f5, 48, 192); // 384ch
    let f7 = fire(&mut b, "fire7", f6, 48, 192);
    let f8 = fire(&mut b, "fire8", f7, 64, 256); // 512ch
    let p8 = b.max_pool("pool8", f8, 3, 2, 0); // 14
    let f9 = fire(&mut b, "fire9", p8, 64, 256);
    let dr = b.dropout("drop9", f9, 0.5);
    // Classifier is a 1x1 conv followed by global average pooling.
    let c10 = b.conv("conv10", dr, classes, 1, 1, 0, true);
    let gap = b.avg_pool("pool10", c10, 14, 1, 0);
    b.softmax("prob", gap);
    b.build()
}

/// AlexNet, single-tower variant (224×224×3 → 1000 classes).
pub fn alexnet_one_tower() -> NetworkSpec {
    alexnet_one_tower_with_classes(1000)
}

/// AlexNet (one tower) with a custom classifier width.
pub fn alexnet_one_tower_with_classes(classes: usize) -> NetworkSpec {
    let mut b = NetBuilder::new("alexnet_one_tower", Shape::chw(3, 224, 224));
    let x = b.input();
    let c1 = b.conv("conv1", x, 96, 11, 4, 2, true); // 54ish
    let n1 = b.lrn("norm1", c1, LrnParams { local_size: 5, alpha: 1e-4, beta: 0.75, k: 2.0 });
    let p1 = b.max_pool("pool1", n1, 3, 2, 0);
    let c2 = b.conv("conv2", p1, 256, 5, 1, 2, true);
    let n2 = b.lrn("norm2", c2, LrnParams { local_size: 5, alpha: 1e-4, beta: 0.75, k: 2.0 });
    let p2 = b.max_pool("pool2", n2, 3, 2, 0);
    let c3 = b.conv("conv3", p2, 384, 3, 1, 1, true);
    let c4 = b.conv("conv4", c3, 384, 3, 1, 1, true);
    let c5 = b.conv("conv5", c4, 256, 3, 1, 1, true);
    let p5 = b.max_pool("pool5", c5, 3, 2, 0); // 6x6
    let f6 = b.dense("fc6", p5, 4096);
    let r6 = b.relu("relu6", f6);
    let d6 = b.dropout("drop6", r6, 0.5);
    let f7 = b.dense("fc7", d6, 4096);
    let r7 = b.relu("relu7", f7);
    let d7 = b.dropout("drop7", r7, 0.5);
    let f8 = b.dense("fc8", d7, classes);
    b.softmax("prob", f8);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::NetworkCost;

    #[test]
    fn squeezenet_parameter_count_matches_published() {
        // Iandola et al.: ~1.25 M parameters.
        let cost = NetworkCost::of::<f32>(&squeezenet_v10());
        assert!(
            (1_100_000..1_500_000).contains(&cost.total_params),
            "SqueezeNet params {}",
            cost.total_params
        );
    }

    #[test]
    fn squeezenet_macs_in_published_band() {
        // ~0.7–0.9 GMAC per 224x224 inference for v1.0.
        let cost = NetworkCost::of::<f32>(&squeezenet_v10());
        let g = cost.total_macs as f64 / 1e9;
        assert!((0.55..1.1).contains(&g), "SqueezeNet GMACs {g}");
    }

    #[test]
    fn alexnet_parameter_count_matches_published() {
        // ~61 M parameters, dominated by fc6.
        let cost = NetworkCost::of::<f32>(&alexnet_one_tower());
        assert!(
            (55_000_000..68_000_000).contains(&cost.total_params),
            "AlexNet params {}",
            cost.total_params
        );
    }

    #[test]
    fn alexnet_macs_in_published_band() {
        // Single-tower AlexNet: ~1.1–1.4 GMAC (two-tower is ~0.72).
        let cost = NetworkCost::of::<f32>(&alexnet_one_tower());
        let g = cost.total_macs as f64 / 1e9;
        assert!((0.8..1.6).contains(&g), "AlexNet GMACs {g}");
    }

    #[test]
    fn both_networks_run_inference() {
        use crate::graph::CompiledNetwork;
        use std::sync::Arc;
        use vpu_tensor::kernels::gemm::AccumMode;
        use vpu_tensor::{Shape, Tensor};
        // Reduced-class variants keep the test fast but execute the
        // real topologies end to end.
        {
            let spec = Arc::new(squeezenet_v10_with_classes(10));
            let w = crate::init::xavier(&spec, 1);
            let net = CompiledNetwork::<f32>::compile(spec.clone(), &w, AccumMode::Widened);
            let out = net.forward(&Tensor::full(Shape::chw(3, 224, 224), 0.1));
            assert_eq!(out.shape().item_len(), 10);
            assert!(!out.has_nan());
            let sum: f32 = out.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn graph_file_sizes_tell_the_ncs_story() {
        // SqueezeNet's fp16 graph is ~2.5 MB; AlexNet's is ~122 MB —
        // which is why SqueezeNet was the NCS demo darling.
        let sq = NetworkCost::of::<vpu_num::f16>(&squeezenet_v10()).total_weight_bytes();
        let ax = NetworkCost::of::<vpu_num::f16>(&alexnet_one_tower()).total_weight_bytes();
        assert!(sq < 4 << 20, "SqueezeNet graph {sq} B");
        assert!(ax > 100 << 20, "AlexNet graph {ax} B");
    }
}
