//! Static work/traffic accounting per layer.
//!
//! Device timing models consume these numbers: multiply-accumulates drive
//! the compute term, activation/weight bytes drive the memory and
//! host-transfer terms. Counts are per batch item; devices scale by their
//! own batching behaviour.

use crate::graph::NetworkSpec;
use serde::{Deserialize, Serialize};
use vpu_tensor::{Element, Shape};

/// Work profile of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    pub name: String,
    pub mnemonic: String,
    /// Multiply-accumulates per batch item.
    pub macs: u64,
    /// Non-MAC arithmetic per batch item.
    pub aux_ops: u64,
    /// Learnable parameters.
    pub params: u64,
    /// Bytes read from input activations (at element width).
    pub in_bytes: u64,
    /// Bytes written to the output activation.
    pub out_bytes: u64,
    /// Bytes of weights streamed in.
    pub weight_bytes: u64,
    pub out_shape: Shape,
}

/// Whole-network cost profile at a given element width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkCost {
    pub network: String,
    pub element_width: usize,
    pub layers: Vec<LayerCost>,
    pub total_macs: u64,
    pub total_aux_ops: u64,
    pub total_params: u64,
    /// Peak single-layer output activation, in bytes (scratch sizing).
    pub peak_activation_bytes: u64,
}

impl NetworkCost {
    /// Profile `spec` for element type `E` (f32 host / f16 device).
    pub fn of<E: Element>(spec: &NetworkSpec) -> NetworkCost {
        let shapes = spec.infer_shapes();
        let width = E::width() as u64;
        let mut layers = Vec::with_capacity(spec.nodes.len());
        for (i, node) in spec.nodes.iter().enumerate() {
            let out_shape = shapes[i];
            let in_elems: u64 = node.inputs.iter().map(|&j| shapes[j].len() as u64).sum();
            let input_shape = node.inputs.first().map(|&j| shapes[j]).unwrap_or(out_shape);
            let macs = node.kind.macs(input_shape);
            let aux = node.kind.aux_ops(input_shape);
            let params = node.kind.param_count(input_shape);
            layers.push(LayerCost {
                name: node.name.clone(),
                mnemonic: node.kind.mnemonic().to_string(),
                macs,
                aux_ops: aux,
                params,
                in_bytes: in_elems * width,
                out_bytes: out_shape.len() as u64 * width,
                weight_bytes: params * width,
                out_shape,
            });
        }
        let total_macs = layers.iter().map(|l| l.macs).sum();
        let total_aux_ops = layers.iter().map(|l| l.aux_ops).sum();
        let total_params = layers.iter().map(|l| l.params).sum();
        let peak_activation_bytes = layers.iter().map(|l| l.out_bytes).max().unwrap_or(0);
        NetworkCost {
            network: spec.name.clone(),
            element_width: E::width(),
            layers,
            total_macs,
            total_aux_ops,
            total_params,
            peak_activation_bytes,
        }
    }

    /// Total weight bytes (graph-file payload size).
    pub fn total_weight_bytes(&self) -> u64 {
        self.total_params * self.element_width as u64
    }

    /// Sum of all activation output bytes (DDR traffic proxy).
    pub fn total_activation_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.out_bytes).sum()
    }

    /// Input tensor bytes (the host→device transfer payload).
    pub fn input_bytes(&self) -> u64 {
        self.layers.first().map(|l| l.out_bytes).unwrap_or(0)
    }

    /// Output tensor bytes (the device→host result payload).
    pub fn output_bytes(&self) -> u64 {
        self.layers.last().map(|l| l.out_bytes).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use vpu_num::f16;

    fn small() -> NetworkSpec {
        let mut b = NetBuilder::new("small", Shape::chw(3, 8, 8));
        let x = b.input();
        let c = b.conv("c1", x, 4, 3, 1, 1, true);
        let p = b.max_pool("p1", c, 2, 2, 0);
        let f = b.dense("fc", p, 5);
        b.softmax("prob", f);
        b.build()
    }

    #[test]
    fn per_layer_numbers() {
        let cost = NetworkCost::of::<f32>(&small());
        assert_eq!(cost.layers.len(), 5);
        let conv = &cost.layers[1];
        assert_eq!(conv.macs, (4 * 8 * 8 * 3 * 9) as u64);
        assert_eq!(conv.params, (4 * 3 * 9 + 4) as u64);
        assert_eq!(conv.out_bytes, (4 * 8 * 8 * 4) as u64);
        assert_eq!(conv.weight_bytes, conv.params * 4);
        let fc = &cost.layers[3];
        assert_eq!(fc.macs, (4 * 4 * 4 * 5) as u64);
    }

    #[test]
    fn totals_are_sums() {
        let cost = NetworkCost::of::<f32>(&small());
        assert_eq!(cost.total_macs, cost.layers.iter().map(|l| l.macs).sum::<u64>());
        assert_eq!(cost.total_params, cost.layers.iter().map(|l| l.params).sum::<u64>());
        assert!(cost.peak_activation_bytes >= cost.layers[1].out_bytes);
    }

    #[test]
    fn fp16_halves_bytes_not_ops() {
        let c32 = NetworkCost::of::<f32>(&small());
        let c16 = NetworkCost::of::<f16>(&small());
        assert_eq!(c32.total_macs, c16.total_macs);
        assert_eq!(c32.total_params, c16.total_params);
        assert_eq!(c32.total_weight_bytes(), 2 * c16.total_weight_bytes());
        assert_eq!(c32.input_bytes(), 2 * c16.input_bytes());
    }

    #[test]
    fn io_payloads() {
        let cost = NetworkCost::of::<f16>(&small());
        // Input: 3*8*8 fp16.
        assert_eq!(cost.input_bytes(), 3 * 8 * 8 * 2);
        // Output: 5 probabilities fp16.
        assert_eq!(cost.output_bytes(), 10);
    }
}
