//! Network DAG specification and the precision-generic executor.

use crate::layer::{LayerKind, Node};
use crate::weights::Weights;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vpu_tensor::kernels::activation::{relu, softmax};
use vpu_tensor::kernels::conv::conv2d;
use vpu_tensor::kernels::dense::dense;
use vpu_tensor::kernels::gemm::AccumMode;
use vpu_tensor::kernels::lrn::lrn;
use vpu_tensor::kernels::pool::pool2d;
use vpu_tensor::{Element, Shape, Tensor};

/// A validated, topologically-ordered network description.
///
/// Node 0 is always the input; the last node is the output. The spec is
/// precision-free — weights live in [`Weights`] (FP32 master copies) and
/// are cast at [`CompiledNetwork::compile`] time, exactly like the NCSDK
/// compiler quantizing a Caffe model to FP16 when producing a graph file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    pub name: String,
    /// Shape of one input item (batch dimension 1).
    pub input_shape: Shape,
    pub nodes: Vec<Node>,
}

impl NetworkSpec {
    /// Validate structural invariants; returns per-node batch-1 shapes.
    ///
    /// Panics with a descriptive message on: missing/misplaced input node,
    /// duplicate names, forward references, or shape inference failures.
    pub fn infer_shapes(&self) -> Vec<Shape> {
        assert!(!self.nodes.is_empty(), "network has no nodes");
        assert!(matches!(self.nodes[0].kind, LayerKind::Input), "node 0 must be the input layer");
        assert_eq!(self.input_shape.n, 1, "input_shape describes one item");
        let mut seen = std::collections::HashSet::new();
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            assert!(seen.insert(node.name.clone()), "duplicate node name {}", node.name);
            for &j in &node.inputs {
                assert!(j < i, "node {} references later node {j}", node.name);
            }
            let shape = if i == 0 {
                self.input_shape
            } else {
                let ins: Vec<Shape> = node.inputs.iter().map(|&j| shapes[j]).collect();
                node.kind.infer_shape(&ins)
            };
            shapes.push(shape);
        }
        shapes
    }

    /// Output node index (by construction the last node).
    pub fn output(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Batch-1 output shape.
    pub fn output_shape(&self) -> Shape {
        *self.infer_shapes().last().expect("non-empty network")
    }

    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// How many later nodes consume each node's activation.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &j in &node.inputs {
                counts[j] += 1;
            }
        }
        counts
    }

    /// Number of weighted layers.
    pub fn weighted_layers(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.has_weights()).count()
    }
}

/// Evaluate one layer given its input activations and (optional) weights.
///
/// Exposed so device simulators can execute the graph layer-at-a-time,
/// interleaving compute with their timing models, while sharing the exact
/// numerics of [`CompiledNetwork::forward`].
pub fn eval_node<E: Element>(
    kind: &LayerKind,
    inputs: &[&Tensor<E>],
    params: Option<(&[E], &[E])>,
    accum: AccumMode,
) -> Tensor<E> {
    match kind {
        LayerKind::Input => panic!("input nodes are not evaluated"),
        LayerKind::Conv { params: cp, fused_relu } => {
            let (w, b) = params.expect("conv needs weights");
            conv2d(inputs[0], w, b, cp, accum, *fused_relu)
        }
        LayerKind::Relu => relu(inputs[0]),
        LayerKind::Pool(p) => pool2d(inputs[0], p),
        LayerKind::Lrn(p) => lrn(inputs[0], p),
        LayerKind::Concat => {
            let batch = inputs[0].shape().n;
            let mut per_item: Vec<Tensor<E>> = Vec::with_capacity(batch);
            for n in 0..batch {
                let mut data = Vec::new();
                let mut c = 0;
                let (h, w) = (inputs[0].shape().h, inputs[0].shape().w);
                for t in inputs {
                    data.extend_from_slice(t.item(n));
                    c += t.shape().c;
                }
                per_item.push(Tensor::from_vec(Shape::new(1, c, h, w), data));
            }
            Tensor::stack_items(&per_item)
        }
        LayerKind::Dropout { .. } => inputs[0].clone(),
        LayerKind::Dense { out_features } => {
            let (w, b) = params.expect("dense needs weights");
            dense(inputs[0], w, b, *out_features, accum)
        }
        LayerKind::Softmax => softmax(inputs[0]),
    }
}

/// A network bound to one element precision, ready to run.
#[derive(Debug, Clone)]
pub struct CompiledNetwork<E: Element> {
    spec: Arc<NetworkSpec>,
    shapes: Vec<Shape>,
    params: Vec<Option<(Vec<E>, Vec<E>)>>,
    consumers: Vec<usize>,
    accum: AccumMode,
}

impl<E: Element> CompiledNetwork<E> {
    /// Cast the FP32 master weights to `E` and bind them to the spec.
    ///
    /// Panics if a weighted layer is missing from `weights` or has the
    /// wrong parameter count — the same validation the NCSDK compiler
    /// performs when converting a caffemodel.
    pub fn compile(spec: Arc<NetworkSpec>, weights: &Weights, accum: AccumMode) -> Self {
        let shapes = spec.infer_shapes();
        let mut params = Vec::with_capacity(spec.nodes.len());
        for (i, node) in spec.nodes.iter().enumerate() {
            if !node.kind.has_weights() {
                params.push(None);
                continue;
            }
            let in_shape = shapes[node.inputs[0]];
            let (wlen, blen) = match &node.kind {
                LayerKind::Conv { params: cp, .. } => (cp.weight_len(in_shape.c), cp.out_channels),
                LayerKind::Dense { out_features } => {
                    (in_shape.item_len() * out_features, *out_features)
                }
                _ => unreachable!(),
            };
            let lp = weights
                .get(&node.name)
                .unwrap_or_else(|| panic!("missing weights for layer {}", node.name));
            assert_eq!(lp.w.len(), wlen, "layer {} weight length", node.name);
            assert_eq!(lp.b.len(), blen, "layer {} bias length", node.name);
            let w: Vec<E> = lp.w.iter().map(|&x| E::from_f32(x)).collect();
            let b: Vec<E> = lp.b.iter().map(|&x| E::from_f32(x)).collect();
            params.push(Some((w, b)));
            let _ = i;
        }
        let consumers = spec.consumer_counts();
        CompiledNetwork { spec, shapes, params, consumers, accum }
    }

    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    pub fn accum_mode(&self) -> AccumMode {
        self.accum
    }

    /// Batch-1 shape of every node.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Per-layer weights, if any (used by the device simulators).
    pub fn layer_params(&self, idx: usize) -> Option<(&[E], &[E])> {
        self.params[idx].as_ref().map(|(w, b)| (w.as_slice(), b.as_slice()))
    }

    /// Total bytes of weights at this precision (graph-file size proxy).
    pub fn weight_bytes(&self) -> usize {
        self.params.iter().flatten().map(|(w, b)| (w.len() + b.len()) * E::width()).sum()
    }

    /// Run inference on a batch; returns the output node's activation.
    pub fn forward(&self, input: &Tensor<E>) -> Tensor<E> {
        self.forward_observed(input, |_, _, _| {})
    }

    /// Run inference, invoking `observe(node_index, node, output)` after
    /// every layer — the hook the profiling and simulation layers use.
    pub fn forward_observed(
        &self,
        input: &Tensor<E>,
        mut observe: impl FnMut(usize, &Node, &Tensor<E>),
    ) -> Tensor<E> {
        let item = self.spec.input_shape;
        assert_eq!(
            (input.shape().c, input.shape().h, input.shape().w),
            (item.c, item.h, item.w),
            "input shape {} does not match network input {}",
            input.shape(),
            item
        );
        let n = self.spec.nodes.len();
        let mut acts: Vec<Option<Tensor<E>>> = vec![None; n];
        let mut remaining = self.consumers.clone();
        for (i, node) in self.spec.nodes.iter().enumerate() {
            let out = if i == 0 {
                input.clone()
            } else {
                let ins: Vec<&Tensor<E>> = node
                    .inputs
                    .iter()
                    .map(|&j| acts[j].as_ref().expect("activation dropped too early"))
                    .collect();
                let p = self.params[i].as_ref().map(|(w, b)| (w.as_slice(), b.as_slice()));
                eval_node(&node.kind, &ins, p, self.accum)
            };
            observe(i, node, &out);
            acts[i] = Some(out);
            // Free activations whose consumers have all run.
            for &j in &node.inputs {
                remaining[j] -= 1;
                if remaining[j] == 0 && j != n - 1 {
                    acts[j] = None;
                }
            }
        }
        acts[n - 1].take().expect("output activation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::init;

    fn tiny_net() -> NetworkSpec {
        let mut b = NetBuilder::new("tiny", Shape::chw(3, 8, 8));
        let x = b.input();
        let c1 = b.conv("conv1", x, 4, 3, 1, 1, true);
        let p1 = b.max_pool("pool1", c1, 2, 2, 0);
        let f = b.dense("fc", p1, 5);
        b.softmax("prob", f);
        b.build()
    }

    #[test]
    fn shape_inference_end_to_end() {
        let spec = tiny_net();
        let shapes = spec.infer_shapes();
        assert_eq!(shapes[1], Shape::new(1, 4, 8, 8));
        assert_eq!(shapes[2], Shape::new(1, 4, 4, 4));
        assert_eq!(spec.output_shape(), Shape::vector(1, 5));
        assert_eq!(spec.weighted_layers(), 2);
    }

    #[test]
    fn consumer_counts() {
        let spec = tiny_net();
        let counts = spec.consumer_counts();
        assert_eq!(counts[0], 1);
        // Output node consumed by nobody.
        assert_eq!(*counts.last().unwrap(), 0);
    }

    #[test]
    fn forward_produces_probabilities() {
        let spec = Arc::new(tiny_net());
        let weights = init::xavier(&spec, 42);
        let net = CompiledNetwork::<f32>::compile(spec, &weights, AccumMode::Widened);
        let input = Tensor::<f32>::full(Shape::chw(3, 8, 8), 0.5);
        let out = net.forward(&input);
        assert_eq!(out.shape(), Shape::vector(1, 5));
        let sum: f32 = out.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(!out.has_nan());
    }

    #[test]
    fn forward_batched_matches_individual() {
        let spec = Arc::new(tiny_net());
        let weights = init::xavier(&spec, 42);
        let net = CompiledNetwork::<f32>::compile(spec, &weights, AccumMode::Widened);
        let a = Tensor::<f32>::full(Shape::chw(3, 8, 8), 0.25);
        let b = Tensor::<f32>::full(Shape::chw(3, 8, 8), -0.75);
        let batch = Tensor::stack_items(&[a.clone(), b.clone()]);
        let ob = net.forward(&batch);
        let oa = net.forward(&a);
        let obb = net.forward(&b);
        assert_eq!(ob.item(0), oa.item(0));
        assert_eq!(ob.item(1), obb.item(0));
    }

    #[test]
    fn observer_sees_every_layer() {
        let spec = Arc::new(tiny_net());
        let weights = init::xavier(&spec, 1);
        let net = CompiledNetwork::<f32>::compile(spec.clone(), &weights, AccumMode::Widened);
        let input = Tensor::<f32>::zeros(Shape::chw(3, 8, 8));
        let mut names = Vec::new();
        net.forward_observed(&input, |_, node, out| {
            names.push((node.name.clone(), out.shape()));
        });
        assert_eq!(names.len(), spec.nodes.len());
        assert_eq!(names[0].0, "input");
        assert_eq!(names.last().unwrap().0, "prob");
    }

    #[test]
    fn fp16_compilation_quantizes_weights() {
        use vpu_num::f16;
        let spec = Arc::new(tiny_net());
        let weights = init::xavier(&spec, 7);
        let n32 = CompiledNetwork::<f32>::compile(spec.clone(), &weights, AccumMode::Widened);
        let n16 = CompiledNetwork::<f16>::compile(spec, &weights, AccumMode::Native);
        assert_eq!(n16.weight_bytes() * 2, n32.weight_bytes());
        let input32 = Tensor::<f32>::full(Shape::chw(3, 8, 8), 0.3);
        let input16 = input32.quantize_fp16();
        let o32 = n32.forward(&input32);
        let o16 = n16.forward(&input16);
        // Same argmax (tiny net, mild values), slightly different mass.
        assert_eq!(o32.argmax_item(0).0, o16.argmax_item(0).0);
        let diff: f32 =
            o32.as_slice().iter().zip(o16.as_slice()).map(|(a, b)| (a - b.to_f32()).abs()).sum();
        assert!(diff > 0.0, "fp16 must differ from fp32 somewhere");
        assert!(diff < 0.05, "fp16 drift too large: {diff}");
    }

    #[test]
    #[should_panic(expected = "missing weights")]
    fn compile_rejects_missing_weights() {
        let spec = Arc::new(tiny_net());
        let weights = Weights::new();
        CompiledNetwork::<f32>::compile(spec, &weights, AccumMode::Widened);
    }

    #[test]
    #[should_panic(expected = "does not match network input")]
    fn forward_rejects_wrong_input_shape() {
        let spec = Arc::new(tiny_net());
        let weights = init::xavier(&spec, 1);
        let net = CompiledNetwork::<f32>::compile(spec, &weights, AccumMode::Widened);
        net.forward(&Tensor::<f32>::zeros(Shape::chw(3, 9, 9)));
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut b = NetBuilder::new("dup", Shape::chw(1, 4, 4));
        let x = b.input();
        let c = b.conv("same", x, 1, 1, 1, 0, false);
        b.relu("same", c);
        b.build().infer_shapes();
    }

    #[test]
    fn eval_node_concat_batched() {
        let a = Tensor::<f32>::from_fn(Shape::new(2, 1, 2, 2), |n, _, h, w| {
            (n * 100 + h * 2 + w) as f32
        });
        let b =
            Tensor::<f32>::from_fn(Shape::new(2, 2, 2, 2), |n, c, _, _| (n * 100 + 10 + c) as f32);
        let out = eval_node(&LayerKind::Concat, &[&a, &b], None, AccumMode::Widened);
        assert_eq!(out.shape(), Shape::new(2, 3, 2, 2));
        assert_eq!(out.at(0, 0, 1, 1), 3.0);
        assert_eq!(out.at(1, 1, 0, 0), 110.0);
        assert_eq!(out.at(1, 2, 0, 0), 111.0);
    }
}
