//! Layer kinds and graph nodes.

use serde::{Deserialize, Serialize};
use vpu_tensor::kernels::conv::ConvParams;
use vpu_tensor::kernels::lrn::LrnParams;
use vpu_tensor::kernels::pool::PoolParams;
use vpu_tensor::Shape;

/// Operator executed by a graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Graph entry point; carries no computation.
    Input,
    /// Convolution; `fused_relu` folds the activation into the kernel the
    /// way Caffe and the NCSDK compiler both do.
    Conv { params: ConvParams, fused_relu: bool },
    /// Stand-alone ReLU (used when the activation cannot be fused).
    Relu,
    /// Max/avg spatial pooling.
    Pool(PoolParams),
    /// Across-channel local response normalization.
    Lrn(LrnParams),
    /// Channel-wise concatenation of all inputs (inception join).
    Concat,
    /// Dropout: a no-op at inference, kept so the topology matches the
    /// deploy prototxt and so per-layer listings line up with Caffe's.
    Dropout { ratio: f32 },
    /// Fully connected layer.
    Dense { out_features: usize },
    /// Softmax over flattened features.
    Softmax,
}

impl LayerKind {
    /// Does this node carry learnable weights?
    pub fn has_weights(&self) -> bool {
        matches!(self, LayerKind::Conv { .. } | LayerKind::Dense { .. })
    }

    /// Short operator mnemonic used in profiles and traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerKind::Input => "input",
            LayerKind::Conv { .. } => "conv",
            LayerKind::Relu => "relu",
            LayerKind::Pool(p) => match p.kind {
                vpu_tensor::kernels::pool::PoolKind::Max => "maxpool",
                vpu_tensor::kernels::pool::PoolKind::Avg => "avgpool",
            },
            LayerKind::Lrn(_) => "lrn",
            LayerKind::Concat => "concat",
            LayerKind::Dropout { .. } => "dropout",
            LayerKind::Dense { .. } => "fc",
            LayerKind::Softmax => "softmax",
        }
    }

    /// Output shape given the input shapes (batch preserved).
    ///
    /// Panics on malformed graphs: wrong input arity or mismatched concat
    /// extents — the same conditions the NCSDK graph compiler rejects.
    pub fn infer_shape(&self, inputs: &[Shape]) -> Shape {
        match self {
            LayerKind::Input => {
                assert_eq!(inputs.len(), 0, "input node takes no inputs");
                unreachable!("input shape comes from the spec");
            }
            LayerKind::Concat => {
                assert!(!inputs.is_empty(), "concat needs at least one input");
                let first = inputs[0];
                let mut c = 0;
                for s in inputs {
                    assert_eq!(
                        (s.n, s.h, s.w),
                        (first.n, first.h, first.w),
                        "concat inputs must agree on batch and spatial extents"
                    );
                    c += s.c;
                }
                Shape::new(first.n, c, first.h, first.w)
            }
            kind => {
                assert_eq!(inputs.len(), 1, "{} takes exactly one input", kind.mnemonic());
                let s = inputs[0];
                match kind {
                    LayerKind::Conv { params, .. } => params.out_shape(s),
                    LayerKind::Relu | LayerKind::Dropout { .. } => s,
                    LayerKind::Pool(p) => p.out_shape(s),
                    LayerKind::Lrn(_) => s,
                    LayerKind::Dense { out_features } => Shape::vector(s.n, *out_features),
                    LayerKind::Softmax => s,
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Multiply-accumulate count per batch item (0 for non-MAC layers).
    pub fn macs(&self, input: Shape) -> u64 {
        match self {
            LayerKind::Conv { params, .. } => params.macs(input.with_batch(1)),
            LayerKind::Dense { out_features } => (input.item_len() * out_features) as u64,
            _ => 0,
        }
    }

    /// Non-MAC arithmetic/compare operations per batch item.
    pub fn aux_ops(&self, input: Shape) -> u64 {
        let item = input.with_batch(1);
        match self {
            LayerKind::Relu => item.len() as u64,
            LayerKind::Pool(p) => p.ops(item),
            LayerKind::Lrn(p) => p.ops(item),
            LayerKind::Softmax => 3 * item.len() as u64,
            LayerKind::Conv { fused_relu: true, params } => params.out_shape(item).len() as u64,
            _ => 0,
        }
    }

    /// Learnable parameter count.
    pub fn param_count(&self, input: Shape) -> u64 {
        match self {
            LayerKind::Conv { params, .. } => {
                (params.weight_len(input.c) + params.out_channels) as u64
            }
            LayerKind::Dense { out_features } => {
                (input.item_len() * out_features + out_features) as u64
            }
            _ => 0,
        }
    }
}

/// One node in the network DAG. Nodes are stored in topological order;
/// `inputs` are indices of earlier nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub name: String,
    pub kind: LayerKind,
    pub inputs: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpu_tensor::kernels::pool::PoolKind;

    #[test]
    fn shape_inference_conv() {
        let k = LayerKind::Conv { params: ConvParams::new(64, 7, 2, 3), fused_relu: true };
        let out = k.infer_shape(&[Shape::new(8, 3, 224, 224)]);
        assert_eq!(out, Shape::new(8, 64, 112, 112));
    }

    #[test]
    fn shape_inference_concat() {
        let k = LayerKind::Concat;
        let out = k.infer_shape(&[
            Shape::new(1, 64, 28, 28),
            Shape::new(1, 128, 28, 28),
            Shape::new(1, 32, 28, 28),
            Shape::new(1, 32, 28, 28),
        ]);
        assert_eq!(out, Shape::new(1, 256, 28, 28));
    }

    #[test]
    #[should_panic(expected = "concat inputs must agree")]
    fn concat_rejects_mismatched_extents() {
        LayerKind::Concat.infer_shape(&[Shape::new(1, 64, 28, 28), Shape::new(1, 64, 14, 14)]);
    }

    #[test]
    fn shape_inference_passthrough_kinds() {
        let s = Shape::new(2, 16, 10, 10);
        assert_eq!(LayerKind::Relu.infer_shape(&[s]), s);
        assert_eq!(LayerKind::Dropout { ratio: 0.4 }.infer_shape(&[s]), s);
        assert_eq!(LayerKind::Lrn(LrnParams::googlenet()).infer_shape(&[s]), s);
        assert_eq!(LayerKind::Softmax.infer_shape(&[s]), s);
    }

    #[test]
    fn shape_inference_dense_flattens() {
        let k = LayerKind::Dense { out_features: 1000 };
        assert_eq!(k.infer_shape(&[Shape::new(4, 1024, 1, 1)]), Shape::vector(4, 1000));
        assert_eq!(k.infer_shape(&[Shape::new(1, 2, 3, 3)]), Shape::vector(1, 1000));
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn unary_arity_enforced() {
        LayerKind::Relu.infer_shape(&[Shape::new(1, 1, 1, 1), Shape::new(1, 1, 1, 1)]);
    }

    #[test]
    fn macs_and_params() {
        let conv = LayerKind::Conv { params: ConvParams::new(64, 7, 2, 3), fused_relu: false };
        let s = Shape::new(1, 3, 224, 224);
        assert_eq!(conv.macs(s), 64 * 112 * 112 * 3 * 49);
        assert_eq!(conv.param_count(s), (64 * 3 * 49 + 64) as u64);
        let fc = LayerKind::Dense { out_features: 1000 };
        let fs = Shape::new(1, 1024, 1, 1);
        assert_eq!(fc.macs(fs), 1_024_000);
        assert_eq!(fc.param_count(fs), 1_025_000);
        assert_eq!(LayerKind::Relu.macs(s), 0);
    }

    #[test]
    fn aux_ops_nonzero_for_activations() {
        let s = Shape::new(1, 8, 4, 4);
        assert_eq!(LayerKind::Relu.aux_ops(s), 128);
        assert!(LayerKind::Pool(PoolParams::new(PoolKind::Max, 2, 2, 0)).aux_ops(s) > 0);
        assert!(LayerKind::Lrn(LrnParams::googlenet()).aux_ops(s) > 0);
        assert_eq!(LayerKind::Dropout { ratio: 0.4 }.aux_ops(s), 0);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(LayerKind::Input.mnemonic(), "input");
        assert_eq!(LayerKind::Pool(PoolParams::new(PoolKind::Avg, 7, 1, 0)).mnemonic(), "avgpool");
        assert_eq!(LayerKind::Concat.mnemonic(), "concat");
    }

    #[test]
    fn weights_flag() {
        assert!(LayerKind::Conv { params: ConvParams::new(1, 1, 1, 0), fused_relu: false }
            .has_weights());
        assert!(LayerKind::Dense { out_features: 10 }.has_weights());
        assert!(!LayerKind::Relu.has_weights());
        assert!(!LayerKind::Concat.has_weights());
    }
}
