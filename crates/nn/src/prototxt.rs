//! Caffe-flavoured prototxt (de)serialization of network specs.
//!
//! NCSw consumes Caffe deploy descriptions; the NCSDK compiler does the
//! same before emitting a graph file. This module emits and parses a
//! faithful subset of the prototxt grammar — enough to round-trip every
//! topology in this repository and to read hand-written deploy files of
//! the same operator set (conv, relu, pool, lrn, concat, dropout,
//! inner_product, softmax).

use crate::graph::NetworkSpec;
use crate::layer::{LayerKind, Node};
use std::collections::HashMap;
use std::fmt::Write as _;
use vpu_tensor::kernels::conv::ConvParams;
use vpu_tensor::kernels::lrn::LrnParams;
use vpu_tensor::kernels::pool::{PoolKind, PoolParams};
use vpu_tensor::Shape;

/// Parse failure, with a line-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prototxt parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Emit a deploy-style prototxt for a spec.
///
/// ```
/// let spec = vpu_nn::googlenet::tiny();
/// let text = vpu_nn::prototxt::emit(&spec);
/// let back = vpu_nn::prototxt::parse(&text).unwrap();
/// assert_eq!(back, spec);
/// ```
pub fn emit(spec: &NetworkSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name: \"{}\"", spec.name);
    let s = spec.input_shape;
    let _ = writeln!(out, "input: \"input\"");
    let _ =
        writeln!(out, "input_dim: 1\ninput_dim: {}\ninput_dim: {}\ninput_dim: {}", s.c, s.h, s.w);
    for node in spec.nodes.iter().skip(1) {
        let _ = writeln!(out, "layer {{");
        let _ = writeln!(out, "  name: \"{}\"", node.name);
        let type_name = match &node.kind {
            LayerKind::Conv { .. } => "Convolution",
            LayerKind::Relu => "ReLU",
            LayerKind::Pool(_) => "Pooling",
            LayerKind::Lrn(_) => "LRN",
            LayerKind::Concat => "Concat",
            LayerKind::Dropout { .. } => "Dropout",
            LayerKind::Dense { .. } => "InnerProduct",
            LayerKind::Softmax => "Softmax",
            LayerKind::Input => unreachable!("input emitted via input_dim"),
        };
        let _ = writeln!(out, "  type: \"{type_name}\"");
        for &j in &node.inputs {
            let _ = writeln!(out, "  bottom: \"{}\"", spec.nodes[j].name);
        }
        let _ = writeln!(out, "  top: \"{}\"", node.name);
        match &node.kind {
            LayerKind::Conv { params, fused_relu } => {
                let _ = writeln!(out, "  convolution_param {{");
                let _ = writeln!(out, "    num_output: {}", params.out_channels);
                let _ = writeln!(out, "    kernel_size: {}", params.kernel);
                let _ = writeln!(out, "    stride: {}", params.stride);
                let _ = writeln!(out, "    pad: {}", params.pad);
                let _ = writeln!(out, "  }}");
                if *fused_relu {
                    // Caffe expresses fusion as a separate in-place ReLU;
                    // we keep an extension key so the round trip is exact.
                    let _ = writeln!(out, "  fused_relu: true");
                }
            }
            LayerKind::Pool(p) => {
                let _ = writeln!(out, "  pooling_param {{");
                let _ = writeln!(
                    out,
                    "    pool: {}",
                    match p.kind {
                        PoolKind::Max => "MAX",
                        PoolKind::Avg => "AVE",
                    }
                );
                let _ = writeln!(out, "    kernel_size: {}", p.kernel);
                let _ = writeln!(out, "    stride: {}", p.stride);
                let _ = writeln!(out, "    pad: {}", p.pad);
                let _ = writeln!(out, "  }}");
            }
            LayerKind::Lrn(p) => {
                let _ = writeln!(out, "  lrn_param {{");
                let _ = writeln!(out, "    local_size: {}", p.local_size);
                let _ = writeln!(out, "    alpha: {}", p.alpha);
                let _ = writeln!(out, "    beta: {}", p.beta);
                let _ = writeln!(out, "    k: {}", p.k);
                let _ = writeln!(out, "  }}");
            }
            LayerKind::Dropout { ratio } => {
                let _ = writeln!(out, "  dropout_param {{");
                let _ = writeln!(out, "    dropout_ratio: {ratio}");
                let _ = writeln!(out, "  }}");
            }
            LayerKind::Dense { out_features } => {
                let _ = writeln!(out, "  inner_product_param {{");
                let _ = writeln!(out, "    num_output: {out_features}");
                let _ = writeln!(out, "  }}");
            }
            _ => {}
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Tokenized key/value or block events from the prototxt grammar.
enum Event {
    Scalar(String, String),
    Open(String),
    Close,
}

/// Character-level lexer: protobuf text format allows blocks and
/// key/value pairs to share lines (`layer { name: "x" type: "ReLU" }`),
/// so the tokenizer scans characters, honouring quotes and `#` comments.
fn tokenize(text: &str) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();
    let skip_ws = |i: &mut usize, line: &mut usize| {
        while *i < n {
            match bytes[*i] {
                '\n' => {
                    *line += 1;
                    *i += 1;
                }
                c if c.is_whitespace() => *i += 1,
                '#' => {
                    while *i < n && bytes[*i] != '\n' {
                        *i += 1;
                    }
                }
                _ => break,
            }
        }
    };
    loop {
        skip_ws(&mut i, &mut line);
        if i >= n {
            break;
        }
        match bytes[i] {
            '}' => {
                events.push(Event::Close);
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let ident: String = bytes[start..i].iter().collect();
                skip_ws(&mut i, &mut line);
                match bytes.get(i) {
                    Some('{') => {
                        events.push(Event::Open(ident));
                        i += 1;
                    }
                    Some(':') => {
                        i += 1;
                        skip_ws(&mut i, &mut line);
                        let value = if bytes.get(i) == Some(&'"') {
                            i += 1;
                            let vstart = i;
                            while i < n && bytes[i] != '"' {
                                i += 1;
                            }
                            if i >= n {
                                return Err(ParseError(format!(
                                    "line {line}: unterminated string"
                                )));
                            }
                            let v: String = bytes[vstart..i].iter().collect();
                            i += 1;
                            v
                        } else {
                            let vstart = i;
                            while i < n
                                && !bytes[i].is_whitespace()
                                && bytes[i] != '}'
                                && bytes[i] != '#'
                            {
                                i += 1;
                            }
                            if i == vstart {
                                return Err(ParseError(format!(
                                    "line {line}: missing value for '{ident}'"
                                )));
                            }
                            bytes[vstart..i].iter().collect()
                        };
                        events.push(Event::Scalar(ident, value));
                    }
                    other => {
                        return Err(ParseError(format!(
                            "line {line}: expected ':' or '{{' after '{ident}', found {other:?}"
                        )));
                    }
                }
            }
            other => {
                return Err(ParseError(format!("line {line}: unexpected character '{other}'")));
            }
        }
    }
    Ok(events)
}

/// Parse a deploy prototxt (the emitted subset) back into a spec.
pub fn parse(text: &str) -> Result<NetworkSpec, ParseError> {
    let events = tokenize(text)?;
    let mut name = String::from("network");
    let mut input_dims: Vec<usize> = Vec::new();
    let mut nodes: Vec<Node> =
        vec![Node { name: "input".into(), kind: LayerKind::Input, inputs: vec![] }];
    let mut by_name: HashMap<String, usize> = HashMap::new();
    by_name.insert("input".into(), 0);

    let mut i = 0;
    while i < events.len() {
        match &events[i] {
            Event::Scalar(k, v) if k == "name" => name = v.clone(),
            Event::Scalar(k, v) if k == "input_dim" => {
                input_dims.push(v.parse().map_err(|_| ParseError(format!("bad input_dim '{v}'")))?);
            }
            Event::Scalar(k, v) if k == "input" && v != "input" => {
                by_name.insert(v.clone(), 0);
            }
            Event::Open(k) if k == "layer" => {
                let (node, consumed) = parse_layer(&events[i + 1..], &by_name)?;
                i += consumed;
                by_name.insert(node.name.clone(), nodes.len());
                nodes.push(node);
            }
            Event::Scalar(..) => {}
            Event::Open(k) => {
                return Err(ParseError(format!("unexpected block '{k}' at top level")));
            }
            Event::Close => return Err(ParseError("unbalanced '}'".into())),
        }
        i += 1;
    }
    if input_dims.len() != 4 {
        return Err(ParseError(format!("expected 4 input_dim entries, got {}", input_dims.len())));
    }
    let spec = NetworkSpec {
        name,
        input_shape: Shape::new(1, input_dims[1], input_dims[2], input_dims[3]),
        nodes,
    };
    spec.infer_shapes(); // validates; panics are acceptable for malformed DAGs? convert:
    Ok(spec)
}

/// Parse one `layer { ... }` body; returns the node and the number of
/// events consumed (including the final Close).
fn parse_layer(
    events: &[Event],
    by_name: &HashMap<String, usize>,
) -> Result<(Node, usize), ParseError> {
    let mut lname = String::new();
    let mut ltype = String::new();
    let mut bottoms: Vec<usize> = Vec::new();
    let mut params: HashMap<String, String> = HashMap::new();
    let mut fused_relu = false;
    let mut i = 0;
    let mut depth = 1;
    while i < events.len() {
        match &events[i] {
            Event::Open(_) => depth += 1,
            Event::Close => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Event::Scalar(k, v) => match k.as_str() {
                "name" => lname = v.clone(),
                "type" => ltype = v.clone(),
                "bottom" => {
                    let idx = *by_name
                        .get(v)
                        .ok_or_else(|| ParseError(format!("unknown bottom '{v}'")))?;
                    bottoms.push(idx);
                }
                "top" => {}
                other => {
                    if other == "fused_relu" && v == "true" {
                        fused_relu = true;
                    }
                    params.insert(other.to_string(), v.clone());
                }
            },
        }
        i += 1;
    }
    if depth != 0 {
        return Err(ParseError(format!("layer '{lname}' not closed")));
    }
    let get = |key: &str| -> Result<usize, ParseError> {
        params
            .get(key)
            .ok_or_else(|| ParseError(format!("layer '{lname}' missing {key}")))?
            .parse()
            .map_err(|_| ParseError(format!("layer '{lname}': bad {key}")))
    };
    let get_or = |key: &str, default: usize| -> usize {
        params.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let get_f = |key: &str, default: f32| -> f32 {
        params.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let kind = match ltype.as_str() {
        "Convolution" => LayerKind::Conv {
            params: ConvParams::new(
                get("num_output")?,
                get("kernel_size")?,
                get_or("stride", 1),
                get_or("pad", 0),
            ),
            fused_relu,
        },
        "ReLU" => LayerKind::Relu,
        "Pooling" => {
            let kind = match params.get("pool").map(String::as_str) {
                Some("MAX") | None => PoolKind::Max,
                Some("AVE") => PoolKind::Avg,
                Some(other) => return Err(ParseError(format!("unknown pool kind '{other}'"))),
            };
            LayerKind::Pool(PoolParams::new(
                kind,
                get("kernel_size")?,
                get_or("stride", 1),
                get_or("pad", 0),
            ))
        }
        "LRN" => LayerKind::Lrn(LrnParams {
            local_size: get_or("local_size", 5),
            alpha: get_f("alpha", 1e-4),
            beta: get_f("beta", 0.75),
            k: get_f("k", 1.0),
        }),
        "Concat" => LayerKind::Concat,
        "Dropout" => LayerKind::Dropout { ratio: get_f("dropout_ratio", 0.5) },
        "InnerProduct" => LayerKind::Dense { out_features: get("num_output")? },
        "Softmax" => LayerKind::Softmax,
        other => return Err(ParseError(format!("unsupported layer type '{other}'"))),
    };
    if lname.is_empty() {
        return Err(ParseError("layer without a name".into()));
    }
    Ok((Node { name: lname, kind, inputs: bottoms }, i + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::googlenet;

    #[test]
    fn round_trip_tiny() {
        let spec = googlenet::tiny();
        let text = emit(&spec);
        let back = parse(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn round_trip_full_googlenet() {
        let spec = googlenet::full();
        let text = emit(&spec);
        assert!(text.contains("inception_4e/5x5_reduce"));
        assert!(text.contains("num_output: 1000"));
        let back = parse(&text).unwrap();
        assert_eq!(back, spec);
        // The round-tripped spec must produce identical shapes.
        assert_eq!(back.infer_shapes(), spec.infer_shapes());
    }

    #[test]
    fn emitted_text_is_caffe_shaped() {
        let text = emit(&googlenet::tiny());
        assert!(text.starts_with("name: \"tiny_googlenet\""));
        assert!(text.contains("layer {"));
        assert!(text.contains("type: \"Convolution\""));
        assert!(text.contains("pooling_param {"));
        assert!(text.contains("pool: AVE"));
        assert!(text.contains("bottom: \"input\""));
    }

    #[test]
    fn parses_hand_written_deploy() {
        let text = r#"
name: "lenet-ish"
input: "data"
input_dim: 1
input_dim: 1
input_dim: 28
input_dim: 28
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param {
    num_output: 6
    kernel_size: 5
    pad: 2
  }
}
layer {
  name: "relu1"
  type: "ReLU"
  bottom: "conv1"
  top: "conv1"
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "relu1"
  top: "pool1"
  pooling_param {
    pool: MAX
    kernel_size: 2
    stride: 2
  }
}
layer {
  name: "fc"
  type: "InnerProduct"
  bottom: "pool1"
  top: "fc"
  inner_product_param {
    num_output: 10
  }
}
layer {
  name: "prob"
  type: "Softmax"
  bottom: "fc"
  top: "prob"
}
"#;
        let spec = parse(text).unwrap();
        assert_eq!(spec.name, "lenet-ish");
        assert_eq!(spec.input_shape, Shape::chw(1, 28, 28));
        assert_eq!(spec.output_shape(), Shape::vector(1, 10));
        assert_eq!(spec.nodes.len(), 6);
    }

    #[test]
    fn rejects_unknown_bottom() {
        let text = "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 1\ninput_dim: 4\ninput_dim: 4\nlayer {\n  name: \"r\"\n  type: \"ReLU\"\n  bottom: \"ghost\"\n  top: \"r\"\n}\n";
        let err = parse(text).unwrap_err();
        assert!(err.0.contains("unknown bottom"), "{err}");
    }

    #[test]
    fn rejects_unsupported_type() {
        let text = "input_dim: 1\ninput_dim: 1\ninput_dim: 4\ninput_dim: 4\nlayer {\n  name: \"b\"\n  type: \"BatchNorm\"\n  bottom: \"input\"\n  top: \"b\"\n}\n";
        let err = parse(text).unwrap_err();
        assert!(err.0.contains("unsupported layer type"), "{err}");
    }

    #[test]
    fn rejects_missing_dims() {
        let err = parse("name: \"x\"\n").unwrap_err();
        assert!(err.0.contains("input_dim"), "{err}");
    }

    #[test]
    fn rejects_unbalanced_braces() {
        let text = "input_dim: 1\ninput_dim: 1\ninput_dim: 4\ninput_dim: 4\nlayer {\n  name: \"r\"\n  type: \"ReLU\"\n  bottom: \"input\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.0.contains("not closed"), "{err}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a comment\nname: \"c\"   # trailing\n\ninput_dim: 1\ninput_dim: 3\ninput_dim: 8\ninput_dim: 8\n";
        let spec = parse(text).unwrap();
        assert_eq!(spec.name, "c");
        assert_eq!(spec.nodes.len(), 1);
    }
}
