//! Convolutional-network graphs and inference execution.
//!
//! This crate is the Caffe stand-in of the reproduction: it describes a
//! network as a DAG of layers ([`graph::NetworkSpec`]), infers shapes,
//! counts work ([`cost`]), owns the master FP32 weights ([`weights::Weights`]),
//! and executes inference at any precision through [`graph::CompiledNetwork`].
//! The [`googlenet`] module builds the exact BVLC GoogLeNet topology the
//! paper evaluates (plus reduced-geometry variants used where running the
//! full 224×224 network for tens of thousands of images would be
//! prohibitive on a laptop-scale reproduction).

pub mod builder;
pub mod cost;
pub mod googlenet;
pub mod graph;
pub mod init;
pub mod layer;
pub mod optimize;
pub mod prototxt;
pub mod weights;
pub mod zoo;

pub use builder::NetBuilder;
pub use graph::{CompiledNetwork, NetworkSpec};
pub use layer::{LayerKind, Node};
pub use weights::Weights;
