//! Deterministic weight initialization.
//!
//! Xavier/Glorot-uniform weights from a named RNG stream per layer: the
//! same `(spec, seed)` pair always produces identical weights, regardless
//! of build flags or thread count. The pseudo-training step that turns
//! these into a usable classifier lives in the `ilsvrc-sim` crate (it
//! needs the dataset's class prototypes).

use crate::graph::NetworkSpec;
use crate::layer::LayerKind;
use crate::weights::Weights;
use rand::Rng;
use vpu_num::rng;

/// Xavier-uniform initialization for every weighted layer; biases zero.
pub fn xavier(spec: &NetworkSpec, seed: u64) -> Weights {
    let shapes = spec.infer_shapes();
    let mut weights = Weights::new();
    for node in spec.nodes.iter().filter(|n| n.kind.has_weights()) {
        let idx = spec.node_index(&node.name).expect("node exists");
        let in_shape = shapes[spec.nodes[idx].inputs[0]];
        let (wlen, blen, fan_in, fan_out) = match &node.kind {
            LayerKind::Conv { params, .. } => {
                let fan_in = in_shape.c * params.kernel * params.kernel;
                let fan_out = params.out_channels * params.kernel * params.kernel;
                (params.weight_len(in_shape.c), params.out_channels, fan_in, fan_out)
            }
            LayerKind::Dense { out_features } => {
                let fan_in = in_shape.item_len();
                (fan_in * out_features, *out_features, fan_in, *out_features)
            }
            _ => unreachable!(),
        };
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
        let mut stream = rng::stream(seed, &format!("xavier/{}", node.name));
        let w: Vec<f32> = (0..wlen).map(|_| stream.gen_range(-limit..limit)).collect();
        weights.insert(&node.name, w, vec![0.0; blen]);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::googlenet;

    #[test]
    fn deterministic() {
        let spec = googlenet::tiny();
        let a = xavier(&spec, 5);
        let b = xavier(&spec, 5);
        assert_eq!(a, b);
        let c = xavier(&spec, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn covers_every_weighted_layer() {
        let spec = googlenet::tiny();
        let w = xavier(&spec, 1);
        assert_eq!(w.len(), spec.weighted_layers());
        for node in spec.nodes.iter().filter(|n| n.kind.has_weights()) {
            assert!(w.get(&node.name).is_some(), "missing {}", node.name);
        }
    }

    #[test]
    fn scale_respects_fan_in() {
        let spec = googlenet::tiny();
        let w = xavier(&spec, 2);
        // A 3x3 conv over 3 channels has fan_in 27: limit ~ sqrt(6/(27+72)).
        let conv1 = w.get("conv1/3x3_s2").unwrap();
        let max = conv1.w.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let limit = (6.0f32 / (27.0 + 72.0)).sqrt();
        assert!(max <= limit, "{max} > {limit}");
        assert!(max > limit * 0.8, "suspiciously small weights");
        assert!(conv1.b.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn compiles_and_runs() {
        use crate::graph::CompiledNetwork;
        use std::sync::Arc;
        use vpu_tensor::kernels::gemm::AccumMode;
        use vpu_tensor::{Shape, Tensor};
        let spec = Arc::new(googlenet::tiny());
        let w = xavier(&spec, 3);
        let net = CompiledNetwork::<f32>::compile(spec, &w, AccumMode::Widened);
        let out = net.forward(&Tensor::full(Shape::chw(3, 32, 32), 0.1));
        assert!(!out.has_nan());
        let sum: f32 = out.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }
}
