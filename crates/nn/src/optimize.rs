//! Graph-compiler optimization passes.
//!
//! The NCSDK compiler rewrites the Caffe graph before emitting a device
//! graph file: activation layers are folded into their producers, and
//! inference no-ops are dropped. The same passes run here so a deploy
//! prototxt written with explicit `ReLU` layers compiles to the same
//! device schedule as the fused topologies built by [`crate::builder`].
//!
//! Passes (applied in order by [`optimize`]):
//! 1. **fuse-relu** — a `ReLU` whose only producer is a `Conv` with an
//!    unfused activation folds into the convolution.
//! 2. **drop-noop** — `Dropout` nodes (inference no-ops) are removed and
//!    their consumers rewired.
//!
//! All passes preserve numerics exactly (ReLU-after-conv equals
//! fused-ReLU conv by construction; dropout is the identity at
//! inference), which the tests verify by comparing forward outputs.

use crate::graph::NetworkSpec;
use crate::layer::{LayerKind, Node};

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    pub relus_fused: usize,
    pub dropouts_dropped: usize,
}

/// Apply all passes; returns the rewritten spec and what changed.
pub fn optimize(spec: &NetworkSpec) -> (NetworkSpec, OptimizeStats) {
    let mut stats = OptimizeStats::default();
    let spec = fuse_relu(spec, &mut stats);
    let spec = drop_noops(&spec, &mut stats);
    spec.infer_shapes(); // validate the rewrite
    (spec, stats)
}

/// How many consumers each node has.
fn consumer_counts(spec: &NetworkSpec) -> Vec<usize> {
    spec.consumer_counts()
}

/// Pass 1: fold eligible stand-alone ReLU nodes into their convolutions.
fn fuse_relu(spec: &NetworkSpec, stats: &mut OptimizeStats) -> NetworkSpec {
    let consumers = consumer_counts(spec);
    // Identify fusable ReLUs: input is a Conv{fused_relu: false} whose
    // only consumer is this ReLU (otherwise someone sees pre-activation
    // values and fusing would change them).
    let mut fused_into: Vec<Option<usize>> = vec![None; spec.nodes.len()];
    for (i, node) in spec.nodes.iter().enumerate() {
        if !matches!(node.kind, LayerKind::Relu) {
            continue;
        }
        let src = node.inputs[0];
        if consumers[src] != 1 {
            continue;
        }
        if let LayerKind::Conv { fused_relu: false, .. } = spec.nodes[src].kind {
            fused_into[i] = Some(src);
        }
    }

    // Rebuild, skipping fused ReLUs and flipping their convs.
    let mut remap: Vec<usize> = vec![usize::MAX; spec.nodes.len()];
    let mut nodes: Vec<Node> = Vec::with_capacity(spec.nodes.len());
    for (i, node) in spec.nodes.iter().enumerate() {
        if let Some(src) = fused_into[i] {
            // The ReLU disappears; its consumers read the conv instead.
            remap[i] = remap[src];
            stats.relus_fused += 1;
            continue;
        }
        let mut n = node.clone();
        if fused_into.contains(&Some(i)) {
            if let LayerKind::Conv { params, .. } = n.kind {
                n.kind = LayerKind::Conv { params, fused_relu: true };
            }
        }
        n.inputs = n.inputs.iter().map(|&j| remap[j]).collect();
        remap[i] = nodes.len();
        nodes.push(n);
    }
    NetworkSpec { name: spec.name.clone(), input_shape: spec.input_shape, nodes }
}

/// Pass 2: remove inference no-ops (Dropout), rewiring consumers.
fn drop_noops(spec: &NetworkSpec, stats: &mut OptimizeStats) -> NetworkSpec {
    let last = spec.nodes.len() - 1;
    let mut remap: Vec<usize> = vec![usize::MAX; spec.nodes.len()];
    let mut nodes: Vec<Node> = Vec::with_capacity(spec.nodes.len());
    for (i, node) in spec.nodes.iter().enumerate() {
        // Keep a trailing dropout (something must produce the output).
        if matches!(node.kind, LayerKind::Dropout { .. }) && i != last {
            remap[i] = remap[node.inputs[0]];
            stats.dropouts_dropped += 1;
            continue;
        }
        let mut n = node.clone();
        n.inputs = n.inputs.iter().map(|&j| remap[j]).collect();
        remap[i] = nodes.len();
        nodes.push(n);
    }
    NetworkSpec { name: spec.name.clone(), input_shape: spec.input_shape, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::graph::CompiledNetwork;
    use crate::init;
    use std::sync::Arc;
    use vpu_tensor::kernels::gemm::AccumMode;
    use vpu_tensor::{Shape, Tensor};

    /// A graph written the explicit-Caffe way: conv, then ReLU, then
    /// dropout, then classifier.
    fn unfused_net() -> NetworkSpec {
        let mut b = NetBuilder::new("unfused", Shape::chw(3, 8, 8));
        let x = b.input();
        let c1 = b.conv("conv1", x, 4, 3, 1, 1, false);
        let r1 = b.relu("relu1", c1);
        let c2 = b.conv("conv2", r1, 4, 3, 1, 1, false);
        let r2 = b.relu("relu2", c2);
        let d = b.dropout("drop", r2, 0.4);
        let fc = b.dense("fc", d, 5);
        b.softmax("prob", fc);
        b.build()
    }

    #[test]
    fn passes_fuse_and_drop() {
        let spec = unfused_net();
        let (opt, stats) = optimize(&spec);
        assert_eq!(stats.relus_fused, 2);
        assert_eq!(stats.dropouts_dropped, 1);
        // 8 nodes -> 5 (input, conv1+relu, conv2+relu, fc, prob).
        assert_eq!(opt.nodes.len(), spec.nodes.len() - 3);
        // Convs are now fused.
        for node in &opt.nodes {
            if let LayerKind::Conv { fused_relu, .. } = node.kind {
                assert!(fused_relu, "{} not fused", node.name);
            }
            assert!(!matches!(node.kind, LayerKind::Relu | LayerKind::Dropout { .. }));
        }
    }

    #[test]
    fn optimization_preserves_numerics_exactly() {
        let spec = Arc::new(unfused_net());
        let weights = init::xavier(&spec, 3);
        let (opt, _) = optimize(&spec);
        let opt = Arc::new(opt);
        let n_ref = CompiledNetwork::<f32>::compile(spec, &weights, AccumMode::Widened);
        let n_opt = CompiledNetwork::<f32>::compile(opt, &weights, AccumMode::Widened);
        let input = Tensor::<f32>::from_fn(Shape::chw(3, 8, 8), |_, c, h, w| {
            ((c + 2 * h) as f32 - w as f32) * 0.1
        });
        let a = n_ref.forward(&input);
        let b = n_opt.forward(&input);
        assert_eq!(a, b, "optimization must be bit-exact");
    }

    #[test]
    fn shared_preactivation_blocks_fusion() {
        // A second consumer of the conv output (before ReLU) must keep
        // the ReLU separate.
        let mut b = NetBuilder::new("shared", Shape::chw(1, 4, 4));
        let x = b.input();
        let c = b.conv("c", x, 2, 3, 1, 1, false);
        let r = b.relu("r", c);
        // The concat also reads the *pre-activation* tensor.
        let cat = b.concat("cat", vec![c, r]);
        let fc = b.dense("fc", cat, 3);
        b.softmax("p", fc);
        let spec = b.build();
        let (opt, stats) = optimize(&spec);
        assert_eq!(stats.relus_fused, 0, "must not fuse a shared conv");
        assert_eq!(opt.nodes.len(), spec.nodes.len());
    }

    #[test]
    fn already_fused_graphs_are_untouched() {
        let spec = crate::googlenet::tiny();
        let (opt, stats) = optimize(&spec);
        assert_eq!(stats.relus_fused, 0);
        assert_eq!(stats.dropouts_dropped, 0); // tiny has no dropout
        assert_eq!(opt, spec);
    }

    #[test]
    fn googlenet_full_drops_only_its_dropout() {
        let spec = crate::googlenet::full();
        let (opt, stats) = optimize(&spec);
        assert_eq!(stats.relus_fused, 0);
        assert_eq!(stats.dropouts_dropped, 1);
        assert_eq!(opt.nodes.len(), spec.nodes.len() - 1);
        assert_eq!(opt.output_shape(), spec.output_shape());
    }

    #[test]
    fn optimized_prototxt_round_trip() {
        // An explicit deploy file parses, optimizes, and still runs.
        let spec = unfused_net();
        let text = crate::prototxt::emit(&spec);
        let parsed = crate::prototxt::parse(&text).unwrap();
        let (opt, stats) = optimize(&parsed);
        assert_eq!(stats.relus_fused, 2);
        opt.infer_shapes();
    }
}
