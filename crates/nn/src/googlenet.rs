//! GoogLeNet topologies.
//!
//! [`full`] is the BVLC GoogLeNet deploy network of Szegedy et al. (the
//! model the paper runs): 224×224×3 input, 9 inception modules, ~6.8 M
//! parameters, ~1.58 G multiply-accumulates per inference. The two
//! auxiliary classifiers of the training graph are omitted — the deploy
//! prototxt the paper uses omits them too.
//!
//! [`mini`] and [`tiny`] are geometry-reduced variants with the identical
//! operator mix (conv/LRN/inception/avg-pool/FC/softmax). They exist
//! because this reproduction executes real arithmetic on a laptop-scale
//! machine: the accuracy experiments (paper Fig. 7) run tens of thousands
//! of inferences twice (FP32 + FP16), which is tractable at mini scale and
//! preserves the phenomenon under study (FP16 rounding across a deep
//! inception network). The *timing* experiments always use the full
//! network's operation counts.

use crate::builder::NetBuilder;
use crate::graph::NetworkSpec;
use serde::{Deserialize, Serialize};
use vpu_tensor::kernels::lrn::LrnParams;
use vpu_tensor::Shape;

/// Which GoogLeNet geometry to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// 224×224 BVLC GoogLeNet, 1000 classes (paper configuration).
    Full,
    /// 64×64 input, channels ÷4, 4 inception modules, 200 classes.
    Mini,
    /// 32×32 input, minimal channels, 2 inception modules, 10 classes.
    Tiny,
}

impl Variant {
    pub fn input_shape(self) -> Shape {
        match self {
            Variant::Full => Shape::chw(3, 224, 224),
            Variant::Mini => Shape::chw(3, 64, 64),
            Variant::Tiny => Shape::chw(3, 32, 32),
        }
    }

    pub fn classes(self) -> usize {
        match self {
            Variant::Full => 1000,
            Variant::Mini => 200,
            Variant::Tiny => 10,
        }
    }

    pub fn build(self) -> NetworkSpec {
        self.build_with_classes(self.classes())
    }

    /// Build with a custom classifier width (the synthetic accuracy
    /// datasets scale class count with experiment scale).
    pub fn build_with_classes(self, classes: usize) -> NetworkSpec {
        match self {
            Variant::Full => full_with_classes(classes),
            Variant::Mini => mini_with_classes(classes),
            Variant::Tiny => tiny_with_classes(classes),
        }
    }
}

/// BVLC GoogLeNet (deploy topology, inference path only).
pub fn full() -> NetworkSpec {
    full_with_classes(1000)
}

/// BVLC GoogLeNet with a custom classifier width.
pub fn full_with_classes(classes: usize) -> NetworkSpec {
    let mut b = NetBuilder::new("bvlc_googlenet", Shape::chw(3, 224, 224));
    let x = b.input();
    let c1 = b.conv("conv1/7x7_s2", x, 64, 7, 2, 3, true); // 112
    let p1 = b.max_pool("pool1/3x3_s2", c1, 3, 2, 0); // 56
    let n1 = b.lrn("pool1/norm1", p1, LrnParams::googlenet());
    let c2r = b.conv("conv2/3x3_reduce", n1, 64, 1, 1, 0, true);
    let c2 = b.conv("conv2/3x3", c2r, 192, 3, 1, 1, true);
    let n2 = b.lrn("conv2/norm2", c2, LrnParams::googlenet());
    let p2 = b.max_pool("pool2/3x3_s2", n2, 3, 2, 0); // 28

    let i3a = b.inception("inception_3a", p2, 64, 96, 128, 16, 32, 32); // 256
    let i3b = b.inception("inception_3b", i3a, 128, 128, 192, 32, 96, 64); // 480
    let p3 = b.max_pool("pool3/3x3_s2", i3b, 3, 2, 0); // 14

    let i4a = b.inception("inception_4a", p3, 192, 96, 208, 16, 48, 64); // 512
    let i4b = b.inception("inception_4b", i4a, 160, 112, 224, 24, 64, 64); // 512
    let i4c = b.inception("inception_4c", i4b, 128, 128, 256, 24, 64, 64); // 512
    let i4d = b.inception("inception_4d", i4c, 112, 144, 288, 32, 64, 64); // 528
    let i4e = b.inception("inception_4e", i4d, 256, 160, 320, 32, 128, 128); // 832
    let p4 = b.max_pool("pool4/3x3_s2", i4e, 3, 2, 0); // 7

    let i5a = b.inception("inception_5a", p4, 256, 160, 320, 32, 128, 128); // 832
    let i5b = b.inception("inception_5b", i5a, 384, 192, 384, 48, 128, 128); // 1024

    let p5 = b.avg_pool("pool5/7x7_s1", i5b, 7, 1, 0); // 1x1
    let dr = b.dropout("pool5/drop_7x7_s1", p5, 0.4);
    let fc = b.dense("loss3/classifier", dr, classes);
    b.softmax("prob", fc);
    b.build()
}

/// Reduced GoogLeNet: 64×64 input, quarter channels, stages 3 and 4 with
/// two inception modules each. Used for paper-scale accuracy sweeps.
pub fn mini() -> NetworkSpec {
    mini_with_classes(200)
}

/// Mini GoogLeNet with a custom classifier width.
pub fn mini_with_classes(classes: usize) -> NetworkSpec {
    let mut b = NetBuilder::new("mini_googlenet", Shape::chw(3, 64, 64));
    let x = b.input();
    let c1 = b.conv("conv1/3x3_s2", x, 16, 3, 2, 1, true); // 32
    let p1 = b.max_pool("pool1/3x3_s2", c1, 3, 2, 0); // 16
    let n1 = b.lrn("pool1/norm1", p1, LrnParams::googlenet());
    let c2r = b.conv("conv2/3x3_reduce", n1, 16, 1, 1, 0, true);
    let c2 = b.conv("conv2/3x3", c2r, 48, 3, 1, 1, true);
    let n2 = b.lrn("conv2/norm2", c2, LrnParams::googlenet());
    let p2 = b.max_pool("pool2/3x3_s2", n2, 3, 2, 0); // 8

    let i3a = b.inception("inception_3a", p2, 16, 24, 32, 4, 8, 8); // 64
    let i3b = b.inception("inception_3b", i3a, 32, 32, 48, 8, 24, 16); // 120
    let p3 = b.max_pool("pool3/3x3_s2", i3b, 3, 2, 0); // 4

    let i4a = b.inception("inception_4a", p3, 48, 24, 52, 4, 12, 16); // 128
    let i4b = b.inception("inception_4b", i4a, 64, 48, 96, 12, 32, 32); // 224

    let p5 = b.avg_pool("pool5/4x4_s1", i4b, 4, 1, 0); // 1x1
    let dr = b.dropout("pool5/drop", p5, 0.4);
    let fc = b.dense("loss3/classifier", dr, classes);
    b.softmax("prob", fc);
    b.build()
}

/// Smallest faithful topology for unit tests: still conv → LRN →
/// inception ×2 → global pool → FC → softmax.
pub fn tiny() -> NetworkSpec {
    tiny_with_classes(10)
}

/// Tiny GoogLeNet with a custom classifier width.
pub fn tiny_with_classes(classes: usize) -> NetworkSpec {
    let mut b = NetBuilder::new("tiny_googlenet", Shape::chw(3, 32, 32));
    let x = b.input();
    let c1 = b.conv("conv1/3x3_s2", x, 8, 3, 2, 1, true); // 16
    let n1 = b.lrn("norm1", c1, LrnParams::googlenet());
    let p1 = b.max_pool("pool1/3x3_s2", n1, 3, 2, 0); // 8
    let i2a = b.inception("inception_2a", p1, 8, 8, 12, 2, 4, 4); // 28
    let i2b = b.inception("inception_2b", i2a, 12, 8, 16, 4, 8, 8); // 44
    let p5 = b.avg_pool("pool5/8x8_s1", i2b, 8, 1, 0);
    let fc = b.dense("classifier", p5, classes);
    b.softmax("prob", fc);
    b.build()
}

/// The *training* topology: the deploy graph plus the two auxiliary
/// classifier heads Szegedy et al. attach to inception 4a and 4d
/// (5×5/s3 avg-pool → 1×1×128 conv → fc-1024 → fc-1000 → softmax).
/// Inference never uses them — the paper runs the deploy graph — but the
/// builder documents the difference and lets the cost model quantify
/// what the NCSDK compiler strips.
pub fn full_with_aux_classifiers() -> NetworkSpec {
    let mut b = NetBuilder::new("bvlc_googlenet_train", Shape::chw(3, 224, 224));
    let x = b.input();
    let c1 = b.conv("conv1/7x7_s2", x, 64, 7, 2, 3, true);
    let p1 = b.max_pool("pool1/3x3_s2", c1, 3, 2, 0);
    let n1 = b.lrn("pool1/norm1", p1, LrnParams::googlenet());
    let c2r = b.conv("conv2/3x3_reduce", n1, 64, 1, 1, 0, true);
    let c2 = b.conv("conv2/3x3", c2r, 192, 3, 1, 1, true);
    let n2 = b.lrn("conv2/norm2", c2, LrnParams::googlenet());
    let p2 = b.max_pool("pool2/3x3_s2", n2, 3, 2, 0);

    let i3a = b.inception("inception_3a", p2, 64, 96, 128, 16, 32, 32);
    let i3b = b.inception("inception_3b", i3a, 128, 128, 192, 32, 96, 64);
    let p3 = b.max_pool("pool3/3x3_s2", i3b, 3, 2, 0);

    let i4a = b.inception("inception_4a", p3, 192, 96, 208, 16, 48, 64);
    // First auxiliary head, fed by inception_4a (14x14x512).
    let a1p = b.avg_pool("loss1/ave_pool", i4a, 5, 3, 0); // 4x4
    let a1c = b.conv("loss1/conv", a1p, 128, 1, 1, 0, true);
    let a1f = b.dense("loss1/fc", a1c, 1024);
    let a1r = b.relu("loss1/relu_fc", a1f);
    let a1d = b.dropout("loss1/drop_fc", a1r, 0.7);
    let a1o = b.dense("loss1/classifier", a1d, 1000);
    b.softmax("loss1/prob", a1o);

    let i4b = b.inception("inception_4b", i4a, 160, 112, 224, 24, 64, 64);
    let i4c = b.inception("inception_4c", i4b, 128, 128, 256, 24, 64, 64);
    let i4d = b.inception("inception_4d", i4c, 112, 144, 288, 32, 64, 64);
    // Second auxiliary head, fed by inception_4d (14x14x528).
    let a2p = b.avg_pool("loss2/ave_pool", i4d, 5, 3, 0);
    let a2c = b.conv("loss2/conv", a2p, 128, 1, 1, 0, true);
    let a2f = b.dense("loss2/fc", a2c, 1024);
    let a2r = b.relu("loss2/relu_fc", a2f);
    let a2d = b.dropout("loss2/drop_fc", a2r, 0.7);
    let a2o = b.dense("loss2/classifier", a2d, 1000);
    b.softmax("loss2/prob", a2o);

    let i4e = b.inception("inception_4e", i4d, 256, 160, 320, 32, 128, 128);
    let p4 = b.max_pool("pool4/3x3_s2", i4e, 3, 2, 0);

    let i5a = b.inception("inception_5a", p4, 256, 160, 320, 32, 128, 128);
    let i5b = b.inception("inception_5b", i5a, 384, 192, 384, 48, 128, 128);

    let p5 = b.avg_pool("pool5/7x7_s1", i5b, 7, 1, 0);
    let dr = b.dropout("pool5/drop_7x7_s1", p5, 0.4);
    let fc = b.dense("loss3/classifier", dr, 1000);
    b.softmax("prob", fc);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::NetworkCost;

    #[test]
    fn full_shapes_match_szegedy_table1() {
        let spec = full();
        let shapes = spec.infer_shapes();
        let at = |name: &str| shapes[spec.node_index(name).unwrap()];
        assert_eq!(at("conv1/7x7_s2"), Shape::new(1, 64, 112, 112));
        assert_eq!(at("pool1/3x3_s2"), Shape::new(1, 64, 56, 56));
        assert_eq!(at("conv2/3x3"), Shape::new(1, 192, 56, 56));
        assert_eq!(at("pool2/3x3_s2"), Shape::new(1, 192, 28, 28));
        assert_eq!(at("inception_3a/output"), Shape::new(1, 256, 28, 28));
        assert_eq!(at("inception_3b/output"), Shape::new(1, 480, 28, 28));
        assert_eq!(at("pool3/3x3_s2"), Shape::new(1, 480, 14, 14));
        assert_eq!(at("inception_4a/output"), Shape::new(1, 512, 14, 14));
        assert_eq!(at("inception_4e/output"), Shape::new(1, 832, 14, 14));
        assert_eq!(at("pool4/3x3_s2"), Shape::new(1, 832, 7, 7));
        assert_eq!(at("inception_5b/output"), Shape::new(1, 1024, 7, 7));
        assert_eq!(at("pool5/7x7_s1"), Shape::new(1, 1024, 1, 1));
        assert_eq!(spec.output_shape(), Shape::vector(1, 1000));
    }

    #[test]
    fn full_parameter_count_matches_published() {
        // BVLC GoogLeNet has ~6.99 M parameters (13.4 MB caffemodel @fp16).
        let spec = full();
        let cost = NetworkCost::of::<f32>(&spec);
        let params = cost.total_params;
        assert!(
            (6_500_000..7_200_000).contains(&params),
            "parameter count {params} out of expected range"
        );
    }

    #[test]
    fn full_mac_count_matches_published() {
        // Szegedy et al. report ~1.5 G multiply-adds for one inference.
        let spec = full();
        let cost = NetworkCost::of::<f32>(&spec);
        let gmacs = cost.total_macs as f64 / 1e9;
        assert!((1.3..1.8).contains(&gmacs), "GMACs {gmacs} out of expected range");
    }

    #[test]
    fn variants_build_and_classify() {
        for v in [Variant::Full, Variant::Mini, Variant::Tiny] {
            let spec = v.build();
            assert_eq!(spec.input_shape, v.input_shape());
            assert_eq!(spec.output_shape().item_len(), v.classes());
        }
    }

    #[test]
    fn custom_classifier_width() {
        for v in [Variant::Full, Variant::Mini, Variant::Tiny] {
            let spec = v.build_with_classes(37);
            assert_eq!(spec.output_shape().item_len(), 37);
        }
    }

    #[test]
    fn mini_is_much_cheaper_than_full() {
        let full_cost = NetworkCost::of::<f32>(&full()).total_macs;
        let mini_cost = NetworkCost::of::<f32>(&mini()).total_macs;
        assert!(mini_cost * 20 < full_cost, "mini {mini_cost} vs full {full_cost}");
    }

    #[test]
    fn training_graph_adds_the_two_aux_heads() {
        let deploy = full();
        let train = full_with_aux_classifiers();
        // 14 extra nodes: 2 heads x (pool, conv, fc, relu, dropout, fc, softmax).
        assert_eq!(train.nodes.len(), deploy.nodes.len() + 14);
        assert!(train.node_index("loss1/classifier").is_some());
        assert!(train.node_index("loss2/classifier").is_some());
        // Main output path is unchanged.
        assert_eq!(train.output_shape(), deploy.output_shape());
        // Aux heads carry the bulk of the extra parameters: published
        // GoogLeNet-with-aux has ~13.4 M vs ~7.0 M deploy.
        use crate::cost::NetworkCost;
        let pd = NetworkCost::of::<f32>(&deploy).total_params;
        let pt = NetworkCost::of::<f32>(&train).total_params;
        assert!((12_500_000..14_500_000).contains(&pt), "training-graph params {pt}");
        assert!(pt > pd + 5_000_000);
    }

    #[test]
    fn aux_heads_produce_valid_distributions_too() {
        use crate::graph::CompiledNetwork;
        use std::sync::Arc;
        use vpu_tensor::kernels::gemm::AccumMode;
        use vpu_tensor::Tensor;
        // Forward the training graph and observe each softmax output.
        let spec = Arc::new(full_with_aux_classifiers());
        let w = crate::init::xavier(&spec, 1);
        let net = CompiledNetwork::<f32>::compile(spec.clone(), &w, AccumMode::Widened);
        let input = Tensor::<f32>::full(Shape::chw(3, 224, 224), 0.05);
        let mut softmax_sums = Vec::new();
        net.forward_observed(&input, |_, node, out| {
            if matches!(node.kind, crate::layer::LayerKind::Softmax) {
                softmax_sums.push(out.as_slice().iter().sum::<f32>());
            }
        });
        assert_eq!(softmax_sums.len(), 3, "two aux heads + main head");
        for s in softmax_sums {
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn nine_inception_modules_in_full() {
        let spec = full();
        let concats = spec.nodes.iter().filter(|n| n.name.ends_with("/output")).count();
        assert_eq!(concats, 9);
    }
}
