//! Benchmarks of the simulation machinery itself: how fast the virtual
//! testbed runs. One simulated GoogLeNet inference should cost
//! microseconds of host time, so paper-scale sweeps (5 × 10 000 images)
//! finish in seconds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration as StdDuration;

/// Short sampling profile: the harness runs on small CI machines and the
/// benches exist to catch regressions, not to hunt microseconds.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(StdDuration::from_millis(300))
        .measurement_time(StdDuration::from_secs(2))
}
use desim::{Duration, EventQueue, FifoResource, ServerPool, SimTime};
use myriad2::{Myriad2, Myriad2Config};
use ncsw::multivpu::{MultiVpu, MultiVpuConfig};
use ncsw::ModelBundle;
use vpu_nn::cost::NetworkCost;
use vpu_nn::googlenet::Variant;
use vpu_num::f16;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event-queue/schedule+pop-1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime(i * 7 % 997), i);
            }
            while let Some(ev) = q.pop() {
                black_box(ev);
            }
        });
    });
}

fn bench_resources(c: &mut Criterion) {
    c.bench_function("fifo-resource/acquire-1k", |b| {
        b.iter(|| {
            let mut r = FifoResource::new("bench");
            for i in 0..1000u64 {
                black_box(r.acquire(SimTime(i), Duration(10)));
            }
        });
    });
    c.bench_function("server-pool/fork-join-12x100", |b| {
        b.iter(|| {
            let mut p = ServerPool::new("shaves", 12);
            for _ in 0..100 {
                black_box(p.acquire_parallel(SimTime::ZERO, Duration(1200), 12));
            }
        });
    });
}

fn bench_chip(c: &mut Criterion) {
    let cost = NetworkCost::of::<f16>(&vpu_nn::googlenet::full());
    let mut g = c.benchmark_group("myriad2");
    g.throughput(Throughput::Elements(1));
    g.bench_function("run_cost/full-googlenet", |b| {
        let mut chip = Myriad2::new(Myriad2Config::default());
        b.iter(|| black_box(chip.run_cost(&cost, SimTime::ZERO)));
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let mut g = c.benchmark_group("multi-vpu-pipeline");
    for &devices in &[1usize, 4, 8] {
        g.throughput(Throughput::Elements((devices * 4) as u64));
        g.bench_with_input(
            BenchmarkId::new("simulate-inferences", devices),
            &devices,
            |b, &devices| {
                b.iter_with_setup(
                    || MultiVpu::new(MultiVpuConfig::paper_testbed(devices), &model),
                    |mut mv| black_box(mv.run_pipeline(devices * 4)),
                );
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_event_queue, bench_resources, bench_chip, bench_pipeline
}
criterion_main!(benches);
