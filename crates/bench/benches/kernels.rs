//! Microbenchmarks of the compute kernels that carry the real numerics:
//! GEMM at both precisions and accumulation modes, im2col + convolution,
//! pooling/LRN/softmax, and binary16 conversion throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration as StdDuration;

/// Short sampling profile: the harness runs on small CI machines and the
/// benches exist to catch regressions, not to hunt microseconds.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(StdDuration::from_millis(300))
        .measurement_time(StdDuration::from_secs(2))
}
use rand::Rng;
use vpu_num::f16;
use vpu_tensor::kernels::activation::softmax;
use vpu_tensor::kernels::conv::{conv2d, ConvParams};
use vpu_tensor::kernels::gemm::{gemm, AccumMode};
use vpu_tensor::kernels::lrn::{lrn, LrnParams};
use vpu_tensor::kernels::pool::{pool2d, PoolKind, PoolParams};
use vpu_tensor::{Shape, Tensor};

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = vpu_num::rng::seeded(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128] {
        let a32 = rand_vec(n * n, 1);
        let b32 = rand_vec(n * n, 2);
        let a16: Vec<f16> = a32.iter().map(|&x| f16::from_f32(x)).collect();
        let b16: Vec<f16> = b32.iter().map(|&x| f16::from_f32(x)).collect();
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("f32-widened", n), &n, |bench, &n| {
            let mut out = vec![0.0f32; n * n];
            bench.iter(|| {
                gemm(n, n, n, black_box(&a32), black_box(&b32), &mut out, AccumMode::Widened)
            });
        });
        g.bench_with_input(BenchmarkId::new("f16-native", n), &n, |bench, &n| {
            let mut out = vec![f16::ZERO; n * n];
            bench.iter(|| {
                gemm(n, n, n, black_box(&a16), black_box(&b16), &mut out, AccumMode::Native)
            });
        });
        g.bench_with_input(BenchmarkId::new("f16-widened", n), &n, |bench, &n| {
            let mut out = vec![f16::ZERO; n * n];
            bench.iter(|| {
                gemm(n, n, n, black_box(&a16), black_box(&b16), &mut out, AccumMode::Widened)
            });
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d");
    // GoogLeNet-like geometries at reduced extents.
    for &(ic, oc, hw, k, pad) in
        &[(3usize, 16usize, 32usize, 3usize, 1usize), (16, 32, 16, 3, 1), (32, 32, 16, 1, 0)]
    {
        let input =
            Tensor::<f32>::from_f32_slice(Shape::chw(ic, hw, hw), &rand_vec(ic * hw * hw, 3));
        let p = ConvParams::new(oc, k, 1, pad);
        let w = rand_vec(p.weight_len(ic), 4);
        let b = rand_vec(oc, 5);
        g.throughput(Throughput::Elements(p.macs(input.shape())));
        g.bench_function(format!("{ic}x{hw}x{hw}-k{k}-oc{oc}"), |bench| {
            bench.iter(|| conv2d(black_box(&input), &w, &b, &p, AccumMode::Widened, true));
        });
    }
    g.finish();
}

fn bench_pool_lrn_softmax(c: &mut Criterion) {
    let input = Tensor::<f32>::from_f32_slice(Shape::chw(32, 28, 28), &rand_vec(32 * 28 * 28, 6));
    c.bench_function("maxpool-3x3s2/32x28x28", |b| {
        let p = PoolParams::new(PoolKind::Max, 3, 2, 0);
        b.iter(|| pool2d(black_box(&input), &p));
    });
    c.bench_function("lrn-googlenet/32x28x28", |b| {
        let p = LrnParams::googlenet();
        b.iter(|| lrn(black_box(&input), &p));
    });
    let logits = Tensor::<f32>::from_f32_slice(Shape::vector(8, 1000), &rand_vec(8000, 7));
    c.bench_function("softmax/8x1000", |b| {
        b.iter(|| softmax(black_box(&logits)));
    });
}

fn bench_f16(c: &mut Criterion) {
    let xs = rand_vec(4096, 8);
    let hs: Vec<f16> = xs.iter().map(|&x| f16::from_f32(x)).collect();
    let mut g = c.benchmark_group("f16");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("from_f32/4096", |b| {
        b.iter(|| xs.iter().map(|&x| f16::from_f32(black_box(x))).collect::<Vec<_>>());
    });
    g.bench_function("to_f32/4096", |b| {
        b.iter(|| hs.iter().map(|h| black_box(*h).to_f32()).collect::<Vec<_>>());
    });
    g.bench_function("mul-add-chain/4096", |b| {
        b.iter(|| {
            let mut acc = f16::ZERO;
            for &h in &hs {
                acc += h * f16::from_f32(0.5);
            }
            acc
        });
    });
    g.finish();
}

fn bench_network_forward(c: &mut Criterion) {
    use std::sync::Arc;
    use vpu_nn::graph::CompiledNetwork;
    let spec = Arc::new(vpu_nn::googlenet::tiny());
    let w = vpu_nn::init::xavier(&spec, 1);
    let n32 = CompiledNetwork::<f32>::compile(spec.clone(), &w, AccumMode::Widened);
    let n16 = CompiledNetwork::<f16>::compile(spec, &w, AccumMode::Native);
    let input = Tensor::<f32>::from_f32_slice(Shape::chw(3, 32, 32), &rand_vec(3 * 32 * 32, 9));
    let input16 = input.quantize_fp16();
    c.bench_function("tiny-googlenet-forward/fp32", |b| {
        b.iter(|| n32.forward(black_box(&input)));
    });
    c.bench_function("tiny-googlenet-forward/fp16", |b| {
        b.iter(|| n16.forward(black_box(&input16)));
    });
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_gemm, bench_conv, bench_pool_lrn_softmax, bench_f16, bench_network_forward
}
criterion_main!(benches);
