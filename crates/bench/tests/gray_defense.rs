//! End-to-end checks of the gray-failure defenses: a defended run under
//! injected gray faults must actually *engage* (hedges, quarantines,
//! integrity rejections), and everything it records must survive the
//! trace validator — on the homogeneous chaos fleet and on the
//! heterogeneous traced fleet alike.

use desim::Duration;
use ncsw::ModelBundle;
use ncsw_faults::{FaultEvent, FaultPlan};
use ncsw_obs::chrome_trace;
use ncsw_serve::{serve_observed, ArrivalProcess, FleetSpec, GrayConfig, ObsConfig, ServeConfig};
use vpu_bench::gray_bench::{failslow_plan, GRAY_FLEET, GRAY_LOAD_FRACTION};
use vpu_bench::trace_check;
use vpu_nn::googlenet::Variant;

/// Run the E22 fleet under a mid-run fail-slow with defenses on and
/// return the outcome plus its validated trace summary.
fn defended_failslow_run() -> (ncsw_serve::ServeOutcome, trace_check::TraceCheck) {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let spec = FleetSpec::parse(GRAY_FLEET).unwrap();
    let probe = spec.build(&model);
    let rate = spec.capacity_rps(&probe) * GRAY_LOAD_FRACTION;
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let n = 200;
    let horizon_secs = n as f64 / rate;
    let cfg = ServeConfig { max_batch, gray: GrayConfig::defended(), ..ServeConfig::default() };
    let mut workers = spec.build(&model);
    workers = failslow_plan(6.0, horizon_secs).apply(workers, cfg.seed);
    let load = ArrivalProcess::Poisson { rate_per_sec: rate };
    let ocfg = ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() };
    let (outcome, obs) = serve_observed(&mut workers, &cfg, &load, n, &ocfg);
    let check = trace_check::validate(&chrome_trace(&obs.events))
        .expect("defended fail-slow trace must satisfy every invariant");
    (outcome, check)
}

#[test]
fn defended_failslow_run_hedges_quarantines_and_validates() {
    let (outcome, check) = defended_failslow_run();
    // The defenses must engage — and the trace must agree with the
    // outcome's own counters, not just be internally consistent.
    assert!(outcome.gray.hedges > 0, "fail-slow under load must trigger hedges");
    assert!(outcome.gray.quarantines > 0, "a 6x stretch must quarantine the worker");
    assert_eq!(check.hedges as u64, outcome.gray.hedges);
    assert_eq!(check.quarantines as u64, outcome.gray.quarantines);
    assert_eq!(check.hedge_wins as u64, outcome.gray.hedge_wins);
    assert_eq!(check.hedge_cancels as u64, outcome.gray.hedge_cancels);
    // Every quarantined worker re-enters on probation within the run.
    assert_eq!(check.probations as u64, outcome.gray.probations);
}

#[test]
fn heterogeneous_traced_fleet_engages_defenses() {
    // Regression: a heterogeneous fleet mixes a fast GPU with a slow
    // pipelined VPU stick that serves only a handful of batches all
    // run, so a fail-slow pinned there used to sail under the hedge's
    // `min_samples` arming bar (and can never string together enough
    // consecutive outliers to quarantine). The fleet-wide ratio
    // histogram — fed mostly by the healthy majority — must still arm
    // within a tiny run and hedge the stick's stretched batches.
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let spec = FleetSpec::parse("cpu+gpu+8xvpu").unwrap();
    let probe = spec.build(&model);
    let rate = spec.capacity_rps(&probe) * 0.7;
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let n = 200;
    let horizon_secs = n as f64 / rate;
    let mut plan = FaultPlan::empty();
    plan.push(
        Some(2), // the 8xvpu worker
        FaultEvent::FailSlow {
            at: Duration::from_secs(horizon_secs * 0.15),
            duration: Duration::from_secs(horizon_secs * 0.60),
            factor: 6.0,
        },
    );
    let cfg = ServeConfig { max_batch, gray: GrayConfig::defended(), ..ServeConfig::default() };
    let mut workers = spec.build(&model);
    workers = plan.apply(workers, cfg.seed);
    let load = ArrivalProcess::Poisson { rate_per_sec: rate };
    let ocfg = ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() };
    let (outcome, obs) = serve_observed(&mut workers, &cfg, &load, n, &ocfg);
    let check = trace_check::validate(&chrome_trace(&obs.events))
        .expect("defended heterogeneous trace must satisfy every invariant");
    assert!(
        outcome.gray.hedges > 0,
        "the slow minority worker must get hedged: {:?}",
        outcome.gray
    );
    assert_eq!(check.hedges as u64, outcome.gray.hedges);
    // Hedge losers are charged as wasted energy, in exact picojoules.
    assert!(outcome.gray.hedge_wins == 0 || outcome.gray.hedge_wasted_pj > 0);
}

#[test]
fn defended_corruption_run_rejects_and_validates() {
    // Wire corruption + duplicates + drops on one worker: verify-on-
    // complete must reject every damaged batch (nothing surfaces), and
    // the trace must carry resolved IntegrityFail events.
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let spec = FleetSpec::parse(GRAY_FLEET).unwrap();
    let probe = spec.build(&model);
    let rate = spec.capacity_rps(&probe) * GRAY_LOAD_FRACTION;
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let cfg = ServeConfig { max_batch, gray: GrayConfig::defended(), ..ServeConfig::default() };
    let mut plan = FaultPlan::empty();
    plan.push(Some(0), FaultEvent::ResultCorrupt { per_image_prob: 0.08 });
    plan.push(Some(0), FaultEvent::DuplicateCompletion { per_image_prob: 0.05 });
    plan.push(Some(0), FaultEvent::DroppedCompletion { per_image_prob: 0.05 });
    let mut workers = spec.build(&model);
    workers = plan.apply(workers, cfg.seed);
    let load = ArrivalProcess::Poisson { rate_per_sec: rate };
    let ocfg = ObsConfig { sample_every: Duration::from_millis(10.0), ..ObsConfig::default() };
    let (outcome, obs) = serve_observed(&mut workers, &cfg, &load, 200, &ocfg);
    let check = trace_check::validate(&chrome_trace(&obs.events))
        .expect("defended corruption trace must satisfy every invariant");
    assert!(outcome.gray.integrity_fails > 0, "corruption must be caught");
    assert_eq!(outcome.gray.corrupt_surfaced, 0, "no corrupt result may surface");
    assert_eq!(outcome.gray.drops_surfaced, 0, "no dropped slot may surface");
    assert_eq!(check.integrity_fails as u64, outcome.gray.integrity_fails);
}
