//! Fig. 6a — inference throughput per validation subset (batch 8), and
//! Fig. 6b — normalized performance scaling per batch size.

use crate::report;
use crate::scale::Scale;
use ncsw::runner::{latency_curve, throughput_per_subset};
use ncsw::{IntelCpu, IntelVpu, ModelBundle, NvGpu, TargetDevice, ThroughputReport};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;
use vpu_num::stats;

/// Paper values for Fig. 6a (mean img/s per target at batch 8).
pub const PAPER_6A: [(&str, f64); 3] = [("cpu", 44.0), ("gpu", 74.2), ("vpu", 77.2)];

/// Paper values for Fig. 6b (normalized scaling at batch 8).
pub const PAPER_6B: [(&str, f64); 3] = [("cpu", 1.147), ("gpu", 1.925), ("vpu", 7.8)];

/// One target's five bars.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6aSeries {
    pub target: String,
    pub subsets: Vec<ThroughputReport>,
    pub paper_img_per_sec: f64,
}

impl Fig6aSeries {
    pub fn mean_img_per_sec(&self) -> f64 {
        stats::mean(&self.subsets.iter().map(|r| r.images_per_sec()).collect::<Vec<_>>())
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6a {
    pub scale: Scale,
    pub batch: usize,
    pub series: Vec<Fig6aSeries>,
}

/// Run Fig. 6a: 5 subsets × {CPU, GPU, 8×VPU} at batch 8.
pub fn fig6a(scale: Scale) -> Fig6a {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = scale.throughput_images_per_subset();
    let batch = 8;
    let mut series = Vec::new();
    let targets: Vec<(Box<dyn TargetDevice>, f64)> = vec![
        (Box::new(IntelCpu::new(model.clone())), PAPER_6A[0].1),
        (Box::new(NvGpu::new(model.clone())), PAPER_6A[1].1),
        (Box::new(IntelVpu::new(model.clone(), batch)), PAPER_6A[2].1),
    ];
    for (mut target, paper) in targets {
        let subsets = throughput_per_subset(target.as_mut(), 5, n, batch);
        series.push(Fig6aSeries {
            target: target.name().to_string(),
            subsets,
            paper_img_per_sec: paper,
        });
    }
    Fig6a { scale, batch, series }
}

impl Fig6a {
    pub fn print(&self) {
        report::header(&format!(
            "Fig. 6a — throughput per subset, batch {} ({} imgs/subset, scale {})",
            self.batch,
            self.scale.throughput_images_per_subset(),
            self.scale.name()
        ));
        println!("{:<6} set-1    set-2    set-3    set-4    set-5  mean (vs paper)", "target");
        for s in &self.series {
            let cells: Vec<String> =
                s.subsets.iter().map(|r| report::pm(r.samples.mean, r.samples.stddev, 1)).collect();
            println!(
                "{:<6} {}  {}",
                s.target,
                cells.join("  "),
                report::vs_paper(s.mean_img_per_sec(), s.paper_img_per_sec, 1)
            );
        }
    }
}

/// One target's scaling curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6bSeries {
    pub target: String,
    /// (batch, per-image latency ms).
    pub latency_ms: Vec<(usize, f64)>,
    /// (batch, normalized performance = t(1)/t(batch)).
    pub normalized: Vec<(usize, f64)>,
    pub paper_norm_at_8: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6b {
    pub scale: Scale,
    pub batches: Vec<usize>,
    pub series: Vec<Fig6bSeries>,
}

/// Run Fig. 6b: batch ∈ {1,2,4,8}; the number of active VPUs is coupled
/// to the batch size, each device type normalized to its own batch-1
/// latency.
/// A named per-batch latency curve with its paper reference scalar.
type LatencyCurve = (String, Vec<(usize, f64)>, f64);

pub fn fig6b(scale: Scale) -> Fig6b {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let batches = vec![1usize, 2, 4, 8];
    let images = scale.sweep_images();
    let mut series = Vec::new();

    let curves: Vec<LatencyCurve> = vec![
        (
            "cpu".into(),
            latency_curve(|_| Box::new(IntelCpu::new(model.clone())), &batches, images),
            PAPER_6B[0].1,
        ),
        (
            "gpu".into(),
            latency_curve(|_| Box::new(NvGpu::new(model.clone())), &batches, images),
            PAPER_6B[1].1,
        ),
        (
            "vpu".into(),
            latency_curve(|b| Box::new(IntelVpu::new(model.clone(), b)), &batches, images),
            PAPER_6B[2].1,
        ),
    ];
    for (target, latency_ms, paper) in curves {
        let t1 = latency_ms[0].1;
        let normalized = latency_ms.iter().map(|&(b, t)| (b, t1 / t)).collect();
        series.push(Fig6bSeries { target, latency_ms, normalized, paper_norm_at_8: paper });
    }
    Fig6b { scale, batches, series }
}

impl Fig6b {
    pub fn print(&self) {
        report::header(&format!(
            "Fig. 6b — normalized performance scaling per batch size (scale {})",
            self.scale.name()
        ));
        println!("{:<6} {:>7} {:>7} {:>7} {:>7}   at-8 vs paper", "target", 1, 2, 4, 8);
        for s in &self.series {
            let cells: Vec<String> =
                s.normalized.iter().map(|&(_, v)| format!("{v:>7.2}")).collect();
            let at8 = s.normalized.last().unwrap().1;
            println!(
                "{:<6} {}   {}",
                s.target,
                cells.join(" "),
                report::vs_paper(at8, s.paper_norm_at_8, 2)
            );
        }
        println!("\nper-image latency (ms):");
        for s in &self.series {
            let cells: Vec<String> =
                s.latency_ms.iter().map(|&(_, v)| format!("{v:>7.1}")).collect();
            println!("{:<6} {}", s.target, cells.join(" "));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_shape_holds() {
        let r = fig6a(Scale::Tiny);
        assert_eq!(r.series.len(), 3);
        let by: std::collections::HashMap<&str, f64> =
            r.series.iter().map(|s| (s.target.as_str(), s.mean_img_per_sec())).collect();
        // Paper shape: VPU ≈ GPU > CPU; VPU ~40% over CPU.
        assert!(by["vpu"] > by["cpu"] * 1.3, "vpu {} cpu {}", by["vpu"], by["cpu"]);
        assert!((by["vpu"] - by["gpu"]).abs() / by["gpu"] < 0.15);
        // Each within 10% of the paper bar.
        for s in &r.series {
            let dev = (s.mean_img_per_sec() - s.paper_img_per_sec).abs() / s.paper_img_per_sec;
            assert!(dev < 0.10, "{} deviates {dev}", s.target);
        }
    }

    #[test]
    fn fig6a_has_error_bars() {
        let r = fig6a(Scale::Tiny);
        for s in &r.series {
            assert_eq!(s.subsets.len(), 5);
            assert!(s.subsets.iter().any(|x| x.samples.stddev > 0.0), "{}", s.target);
        }
    }

    #[test]
    fn fig6b_scaling_shape() {
        let r = fig6b(Scale::Tiny);
        let by: std::collections::HashMap<&str, f64> =
            r.series.iter().map(|s| (s.target.as_str(), s.normalized.last().unwrap().1)).collect();
        assert!((1.05..1.25).contains(&by["cpu"]), "cpu {}", by["cpu"]);
        assert!((1.75..2.1).contains(&by["gpu"]), "gpu {}", by["gpu"]);
        assert!((6.8..8.0).contains(&by["vpu"]), "vpu {}", by["vpu"]);
        // Normalized performance is monotone in batch for every target.
        for s in &r.series {
            for w in s.normalized.windows(2) {
                assert!(w[1].1 >= w[0].1 * 0.98, "{} not monotone", s.target);
            }
        }
    }

    #[test]
    fn fig6b_batch1_latencies_match_anchors() {
        let r = fig6b(Scale::Tiny);
        for s in &r.series {
            let t1 = s.latency_ms[0].1;
            let paper = match s.target.as_str() {
                "cpu" => 26.0,
                "gpu" => 25.9,
                _ => 100.7,
            };
            let dev = (t1 - paper).abs() / paper;
            assert!(dev < 0.05, "{} batch-1 {t1} vs {paper}", s.target);
        }
    }
}
