//! CSV export of figure data — the series a plotting tool needs to
//! redraw each figure (gnuplot/matplotlib-ready, one file per panel).

use crate::{fig6, fig7, fig8, serve_bench};
use std::fmt::Write as _;

/// Fig. 6a: one row per (target, subset) with mean and stddev.
pub fn fig6a_csv(r: &fig6::Fig6a) -> String {
    let mut out = String::from("target,subset,img_per_sec_mean,img_per_sec_stddev\n");
    for s in &r.series {
        for (i, rep) in s.subsets.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{:.4},{:.4}",
                s.target,
                i + 1,
                rep.samples.mean,
                rep.samples.stddev
            );
        }
    }
    out
}

/// Fig. 6b: one row per (target, batch) with latency and normalization.
pub fn fig6b_csv(r: &fig6::Fig6b) -> String {
    let mut out = String::from("target,batch,per_image_ms,normalized\n");
    for s in &r.series {
        for (&(b, ms), &(_, norm)) in s.latency_ms.iter().zip(&s.normalized) {
            let _ = writeln!(out, "{},{},{:.4},{:.4}", s.target, b, ms, norm);
        }
    }
    out
}

/// Fig. 7: one row per subset with both errors and the confidence diff.
pub fn fig7_csv(r: &fig7::Fig7) -> String {
    let mut out = String::from("subset,cpu_fp32_error,vpu_fp16_error,mean_abs_conf_diff\n");
    for (i, ((c, v), d)) in r.cpu_fp32.iter().zip(&r.vpu_fp16).zip(&r.conf_diff).enumerate() {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{:.6}",
            i + 1,
            c.top1_error(),
            v.top1_error(),
            d.mean_abs_diff
        );
    }
    out
}

/// Fig. 8a: one row per (target, batch) with img/s and img/W.
pub fn fig8a_csv(r: &fig8::Fig8a) -> String {
    let mut out = String::from("target,batch,img_per_sec,img_per_watt\n");
    for s in &r.series {
        for &(b, ips, ipw) in &s.points {
            let _ = writeln!(out, "{},{},{:.4},{:.4}", s.target, b, ips, ipw);
        }
    }
    out
}

/// Fig. 8b: one row per (target, batch, kind) where kind is simulated or
/// projected.
pub fn fig8b_csv(r: &fig8::Fig8b) -> String {
    let mut out = String::from("target,batch,img_per_sec,kind\n");
    for s in &r.series {
        for &(b, ips) in &s.simulated {
            let _ = writeln!(out, "{},{},{:.4},simulated", s.target, b, ips);
        }
        for &(b, ips) in &s.projected {
            let _ = writeln!(out, "{},{},{:.4},projected", s.target, b, ips);
        }
    }
    out
}

/// E15: one row per (fleet, load point) of the latency–throughput sweep.
pub fn serve_csv(r: &serve_bench::ServeExp) -> String {
    let mut out = String::from(
        "fleet,capacity_rps,offered_frac,offered_rps,p50_ms,p95_ms,p99_ms,p999_ms,\
         goodput_rps,completed_rps,shed_rate,mean_utilization,slo_attained\n",
    );
    for f in &r.fleets {
        for p in &f.points {
            let rep = &p.report;
            let util = rep.workers.iter().map(|w| w.utilization).sum::<f64>()
                / rep.workers.len().max(1) as f64;
            let _ = writeln!(
                out,
                "{},{:.4},{:.2},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.6},{:.6},{}",
                f.fleet,
                f.capacity_rps,
                p.offered_frac,
                p.offered_rps,
                rep.latency.p50_ms,
                rep.latency.p95_ms,
                rep.latency.p99_ms,
                rep.latency.p999_ms,
                rep.goodput_rps,
                rep.completed_rps,
                rep.shed_rate,
                util,
                rep.slo_attained
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fig6a_csv_shape() {
        let r = fig6::fig6a(Scale::Tiny);
        let csv = fig6a_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "target,subset,img_per_sec_mean,img_per_sec_stddev");
        // 3 targets × 5 subsets + header.
        assert_eq!(lines.len(), 16);
        assert!(lines[1].starts_with("cpu,1,"));
        // Every data row has 4 comma-separated fields.
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), 4, "{l}");
        }
    }

    #[test]
    fn fig6b_and_fig8_csv_shapes() {
        let b = fig6::fig6b(Scale::Tiny);
        let csv = fig6b_csv(&b);
        assert_eq!(csv.lines().count(), 1 + 3 * 4);
        let a = fig8::fig8a(Scale::Tiny);
        assert_eq!(fig8a_csv(&a).lines().count(), 1 + 3 * 4);
        let p = fig8::fig8b(Scale::Tiny);
        let pc = fig8b_csv(&p);
        assert!(pc.contains(",projected"));
        assert!(pc.contains(",simulated"));
    }
}
