//! Experiment harness: regenerates every figure of the paper's
//! evaluation (§IV–§V), plus the anchor scalars quoted in the text, the
//! Fig. 4 execution timeline, and three ablations of design choices the
//! simulator exposes.
//!
//! Each experiment is a pure function of a [`Scale`] returning a
//! serializable result with a `print()` that emits the same rows/series
//! the paper reports, next to the paper's own numbers. The CLI binary
//! (`repro`) maps one sub-command to each experiment; EXPERIMENTS.md
//! records the paper-vs-measured comparison.

pub mod ab_bench;
pub mod ablations;
pub mod anchors;
pub mod autoscale_bench;
pub mod chaos_bench;
pub mod csv;
pub mod energy_bench;
pub mod fault_bench;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod future_work;
pub mod gray_bench;
pub mod layers;
pub mod mdk_gemm;
pub mod power_bench;
pub mod report;
pub mod sample_bench;
pub mod scale;
pub mod serve_bench;
pub mod sim_bench;
pub mod stream_bench;
pub mod timeline;
pub mod trace_check;
pub mod whatif_bench;
pub mod zoo_bench;

pub use scale::Scale;
