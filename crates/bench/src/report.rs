//! Small table-printing and artifact-writing helpers shared by the
//! experiment printers and the `repro` CLI.

use serde::Serialize;

/// Write `content` to `path`, logging the write to stderr; exits with
/// status 2 on failure (the CLI's I/O-error convention). One shared
/// sink for every experiment artifact the CLI emits.
pub fn write_artifact(path: &str, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");
}

/// [`write_artifact`] for an optional path (the `--trace PATH` /
/// `--metrics-csv PATH` pattern: absent flag, no write).
pub fn write_artifact_opt(path: &Option<String>, content: &str) {
    if let Some(path) = path {
        write_artifact(path, content);
    }
}

/// Serialize `value` as pretty JSON (with trailing newline) and write
/// it via [`write_artifact`].
pub fn write_json<T: Serialize>(path: &str, value: &T) {
    let s = serde_json::to_string_pretty(value).expect("serialize");
    write_artifact(path, &(s + "\n"));
}

/// Write `content` as `<dir>/<name>.csv`, creating `dir` first — the
/// `--csv DIR` pattern shared by every per-figure experiment.
pub fn write_csv_in(dir: &str, name: &str, content: &str) {
    let path = format!("{dir}/{name}.csv");
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, content)) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");
}

/// Print a header line with a rule under it.
pub fn header(title: &str) {
    println!("\n{title}");
    println!("{}", "─".repeat(title.chars().count().max(8)));
}

/// Format a float with fixed width/precision.
pub fn num(v: f64, prec: usize) -> String {
    format!("{v:>8.prec$}")
}

/// Format `measured` next to a paper reference value with the relative
/// deviation, e.g. `77.4 (paper 77.2, +0.3%)`.
pub fn vs_paper(measured: f64, paper: f64, prec: usize) -> String {
    let dev = if paper != 0.0 { (measured - paper) / paper * 100.0 } else { 0.0 };
    format!("{measured:.prec$} (paper {paper:.prec$}, {dev:+.1}%)")
}

/// A mean ± stddev cell.
pub fn pm(mean: f64, sd: f64, prec: usize) -> String {
    format!("{mean:.prec$}±{sd:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(num(1.5, 2), "    1.50");
        assert_eq!(pm(10.0, 0.5, 1), "10.0±0.5");
        let s = vs_paper(77.4, 77.2, 1);
        assert!(s.contains("77.4"));
        assert!(s.contains("paper 77.2"));
        assert!(s.contains("+0.3%"));
        let z = vs_paper(1.0, 0.0, 1);
        assert!(z.contains("+0.0%"));
    }
}
