//! Small table-printing helpers shared by the experiment printers.

/// Print a header line with a rule under it.
pub fn header(title: &str) {
    println!("\n{title}");
    println!("{}", "─".repeat(title.chars().count().max(8)));
}

/// Format a float with fixed width/precision.
pub fn num(v: f64, prec: usize) -> String {
    format!("{v:>8.prec$}")
}

/// Format `measured` next to a paper reference value with the relative
/// deviation, e.g. `77.4 (paper 77.2, +0.3%)`.
pub fn vs_paper(measured: f64, paper: f64, prec: usize) -> String {
    let dev = if paper != 0.0 { (measured - paper) / paper * 100.0 } else { 0.0 };
    format!("{measured:.prec$} (paper {paper:.prec$}, {dev:+.1}%)")
}

/// A mean ± stddev cell.
pub fn pm(mean: f64, sd: f64, prec: usize) -> String {
    format!("{mean:.prec$}±{sd:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(num(1.5, 2), "    1.50");
        assert_eq!(pm(10.0, 0.5, 1), "10.0±0.5");
        let s = vs_paper(77.4, 77.2, 1);
        assert!(s.contains("77.4"));
        assert!(s.contains("paper 77.2"));
        assert!(s.contains("+0.3%"));
        let z = vs_paper(1.0, 0.0, 1);
        assert!(z.contains("+0.0%"));
    }
}
