//! E23 — scalable observability: the cost/fidelity curve of tail-based
//! trace sampling.
//!
//! One busy faulted serving run on the heterogeneous fleet, recorded
//! four ways: full fidelity, `--sample all` (must be byte-identical to
//! full), `1-in-10` and `1-in-100` tail sampling. Sampling is passive —
//! the served outcome is bit-identical across arms — so the sweep
//! isolates what observability itself costs: events recorded, exported
//! trace bytes and recorder ns/event, against what fidelity survives:
//! every anomalous request's full chain (test-enforced) and a p99
//! recovered from the sampled trace alone.
//!
//! The p99 recovery uses the top-K reservoir: with `C` completions,
//! nearest-rank p99 is the `k = C - ceil(0.99 C) + 1`-th largest
//! latency, so any sample that keeps the K >= k slowest requests (plus
//! all SLO violators) reconstructs the *exact* full-trace p99 from a
//! fraction of the bytes.

use crate::report;
use crate::scale::Scale;
use crate::serve_bench::{observed_artifacts, TRACED_FLEET};
use desim::Duration;
use ncsw::ModelBundle;
use ncsw_analyze::{Outcome, SpanForest};
use ncsw_obs::{prof, EventLog, SamplePolicy, SampleStats};
use ncsw_serve::{serve_observed, ArrivalProcess, FleetSpec, ObsConfig, ServeConfig};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

/// Offered load as a fraction of fleet capacity: busy enough that SLO
/// violations and sheds exist, calm enough that they stay rare — the
/// regime where tail sampling pays.
const LOAD_FRACTION: f64 = 0.9;

/// Mid-run stick outage: guarantees faulted (retried/failed-over)
/// requests whose chains the sampler must retain.
const FAULTS: &str = "unplug@500ms:reconnect@900ms";

/// One recording arm of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplePoint {
    /// `full` (no sampler) or the `--sample` spec.
    pub spec: String,
    pub events_recorded: u64,
    pub trace_bytes: u64,
    /// Full-fidelity trace bytes / this arm's trace bytes.
    pub bytes_ratio: f64,
    /// Recorder wall ns per recorded event (profiled).
    pub ns_per_event: f64,
    /// Requests whose chains the exported trace retains.
    pub requests_kept: u64,
    /// Anomalous requests (shed / SLO-violating / faulted) present.
    pub anomalies_kept: usize,
    /// Every anomalous request's chain is byte-identical to the full
    /// run's.
    pub anomalies_intact: bool,
    /// Nearest-rank p99 recovered from this arm's trace alone.
    pub p99_ms: f64,
    pub p99_err_ms: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleExp {
    pub scale: Scale,
    pub requests: usize,
    pub slo_ms: f64,
    pub fleet: String,
    pub offered_rps: f64,
    pub faults: String,
    /// Completed requests (identical across arms — sampling is passive).
    pub completed: usize,
    /// Anomalous requests in the full run.
    pub anomalies: usize,
    pub full_p99_ms: f64,
    pub points: Vec<SamplePoint>,
    /// The E23 gate: `all` byte-identical to full, 1-in-100 cuts trace
    /// bytes >= 10x, every anomaly chain intact, sampled p99 within
    /// [`P99_TOLERANCE_MS`] of the full-trace p99.
    pub sampling_ok: bool,
}

/// How far a sampled-trace p99 may sit from the full-trace p99. The
/// reservoir makes the estimator exact in this protocol; the tolerance
/// only absorbs float formatting.
pub const P99_TOLERANCE_MS: f64 = 1.0;

fn requests_for(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2_000,
        Scale::Small => 8_000,
        Scale::Paper => 20_000,
    }
}

struct Arm {
    log: EventLog,
    stats: Option<SampleStats>,
    overhead: ncsw_obs::OverheadLedger,
}

/// Nearest-rank p99 over the completed requests of `forest`, recovered
/// from the k-th largest kept latency (`completed` is the *full* run's
/// completion count). `None` when the trace kept fewer than k chains.
fn p99_from_forest(forest: &SpanForest, completed: usize) -> Option<f64> {
    if completed == 0 {
        return None;
    }
    let rank = (99 * completed).div_ceil(100); // ceil(0.99 C), 1-indexed ascending
    let k = completed - rank + 1; // k-th largest
    let mut lat: Vec<u64> = forest
        .requests
        .values()
        .filter(|r| r.outcome() == Outcome::Completed)
        .filter_map(|r| r.latency().map(|d| d.nanos()))
        .collect();
    if lat.len() < k {
        return None;
    }
    lat.sort_unstable_by(|a, b| b.cmp(a));
    Some(lat[k - 1] as f64 / 1e6)
}

/// Ids of anomalous requests: shed, SLO-violating, or faulted
/// (retried). These are exactly the sampler's always-keep triggers that
/// tag individual requests.
fn anomaly_ids(forest: &SpanForest, slo: Duration) -> Vec<u64> {
    forest
        .requests
        .values()
        .filter(|r| {
            r.outcome() == Outcome::Shed || r.retries > 0 || r.latency().is_some_and(|d| d > slo)
        })
        .map(|r| r.id)
        .collect()
}

pub fn sample_exp(scale: Scale) -> SampleExp {
    let slo = Duration::from_millis(500.0);
    let n = requests_for(scale);
    let top_k = (n / 50).max(32);
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let spec = FleetSpec::parse(TRACED_FLEET).expect("valid fleet spec");
    let probe = spec.build(&model);
    let capacity_rps = spec.capacity_rps(&probe);
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let rate = capacity_rps * LOAD_FRACTION;
    let plan = ncsw_faults::FaultPlan::parse(FAULTS).expect("valid fault spec");

    let run = |sample: Option<SamplePolicy>| -> Arm {
        let cfg = ServeConfig { max_batch, slo, ..ServeConfig::default() };
        let mut workers = plan.apply(spec.build(&model), cfg.seed);
        let load = ArrivalProcess::Poisson { rate_per_sec: rate };
        let ocfg =
            ObsConfig { sample_every: Duration::from_millis(10.0), sample, ..ObsConfig::default() };
        // Profile each arm so the ledger carries recorder ns/event —
        // the wall cost of observing, not of serving.
        prof::start();
        let (_outcome, mut obs) = serve_observed(&mut workers, &cfg, &load, n, &ocfg);
        let art = observed_artifacts(&mut obs);
        prof::stop();
        Arm { log: obs.events, stats: obs.sample, overhead: art.overhead }
    };

    let specs: [Option<SamplePolicy>; 4] = [
        None,
        Some(SamplePolicy::all()),
        Some(SamplePolicy::parse(&format!("1-in-10+top{top_k}")).expect("valid spec")),
        Some(SamplePolicy::parse(&format!("1-in-100+top{top_k}")).expect("valid spec")),
    ];

    let full = run(None);
    let full_forest = SpanForest::build(&full.log);
    let completed =
        full_forest.requests.values().filter(|r| r.outcome() == Outcome::Completed).count();
    let anomalies = anomaly_ids(&full_forest, slo);
    let full_p99 = p99_from_forest(&full_forest, completed).unwrap_or(f64::NAN);
    let full_bytes = full.overhead.trace_bytes;

    let mut points = Vec::new();
    for s in &specs {
        let arm = if s.is_none() { None } else { Some(run(s.clone())) };
        let arm = arm.as_ref().unwrap_or(&full);
        let forest = SpanForest::build(&arm.log);
        let kept_anoms: Vec<u64> =
            anomalies.iter().copied().filter(|id| forest.requests.contains_key(id)).collect();
        // Intact = the anomalous request's event chain is exactly the
        // full run's, not merely present.
        let intact = kept_anoms.len() == anomalies.len()
            && anomalies.iter().all(|&id| {
                let a: Vec<_> = full.log.for_request(id).into_iter().copied().collect();
                let b: Vec<_> = arm.log.for_request(id).into_iter().copied().collect();
                a == b
            });
        let p99 = p99_from_forest(&forest, completed).unwrap_or(f64::NAN);
        points.push(SamplePoint {
            spec: s.as_ref().map_or("full".to_string(), |p| p.spec()),
            events_recorded: arm.overhead.events_recorded,
            trace_bytes: arm.overhead.trace_bytes,
            bytes_ratio: full_bytes as f64 / arm.overhead.trace_bytes.max(1) as f64,
            ns_per_event: arm.overhead.ns_per_event(),
            requests_kept: arm
                .stats
                .as_ref()
                .map_or(forest.requests.len() as u64, |st| st.requests_kept),
            anomalies_kept: kept_anoms.len(),
            anomalies_intact: intact,
            p99_ms: p99,
            p99_err_ms: (p99 - full_p99).abs(),
        });
    }

    let by_spec = |needle: &str| points.iter().find(|p| p.spec.starts_with(needle));
    let all_ok = by_spec("all").is_some_and(|p| {
        p.trace_bytes == full_bytes && p.events_recorded == points[0].events_recorded
    });
    let coarse_ok = by_spec("1-in-100").is_some_and(|p| p.bytes_ratio >= 10.0);
    let fidelity_ok = points.iter().all(|p| p.anomalies_intact && p.p99_err_ms <= P99_TOLERANCE_MS);
    SampleExp {
        scale,
        requests: n,
        slo_ms: slo.as_millis(),
        fleet: TRACED_FLEET.to_string(),
        offered_rps: rate,
        faults: FAULTS.to_string(),
        completed,
        anomalies: anomalies.len(),
        full_p99_ms: full_p99,
        points,
        sampling_ok: all_ok && coarse_ok && fidelity_ok,
    }
}

impl SampleExp {
    pub fn point(&self, prefix: &str) -> Option<&SamplePoint> {
        self.points.iter().find(|p| p.spec.starts_with(prefix))
    }

    pub fn print(&self) {
        report::header(&format!(
            "E23 — tail-based trace sampling: {} requests on {} at {:.1} req/s, SLO {} ms, \
             faults {}, scale {}",
            self.requests,
            self.fleet,
            self.offered_rps,
            self.slo_ms,
            self.faults,
            self.scale.name()
        ));
        println!(
            "completed {} ({} anomalous: shed / >SLO / retried), full-trace p99 {:.1} ms",
            self.completed, self.anomalies, self.full_p99_ms
        );
        println!(
            "{:>16} {:>9} {:>12} {:>7} {:>9} {:>6} {:>8} {:>9} {:>8}",
            "spec", "events", "trace B", "ratio", "ns/event", "kept", "anoms", "p99 ms", "err ms"
        );
        for p in &self.points {
            println!(
                "{:>16} {:>9} {:>12} {:>7.1} {:>9.1} {:>6} {:>5}/{:<2} {:>9.1} {:>8.3}",
                p.spec,
                p.events_recorded,
                p.trace_bytes,
                p.bytes_ratio,
                p.ns_per_event,
                p.requests_kept,
                p.anomalies_kept,
                if p.anomalies_intact { "ok" } else { "BROKEN" },
                p.p99_ms,
                p.p99_err_ms
            );
        }
        println!(
            "gate (all==full bytes, 1-in-100 >= 10x smaller, anomaly chains intact, \
             p99 within {} ms): {}",
            P99_TOLERANCE_MS,
            if self.sampling_ok { "ok" } else { "VIOLATED" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sampling_sweep_holds_the_gate() {
        let e = sample_exp(Scale::Tiny);
        assert_eq!(e.points.len(), 4);
        assert!(e.completed > 0, "{e:#?}");
        assert!(e.anomalies > 0, "the faulted overloaded run must produce anomalies");
        assert!(e.sampling_ok, "{e:#?}");
        // The coarse arm is the headline: >= 10x smaller, exact p99.
        let coarse = e.point("1-in-100").unwrap();
        assert!(coarse.bytes_ratio >= 10.0, "{coarse:#?}");
        assert!(coarse.p99_err_ms <= P99_TOLERANCE_MS, "{coarse:#?}");
        assert!(coarse.anomalies_intact, "{coarse:#?}");
        // All-keep arm is byte-for-byte the full recording.
        let all = e.point("all").unwrap();
        assert_eq!(all.trace_bytes, e.points[0].trace_bytes);
    }
}
