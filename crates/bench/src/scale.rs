//! Experiment scale selection.
//!
//! `Paper` reproduces the full 5 × 10 000-image protocol; `Small` keeps
//! the identical structure at laptop-friendly sizes (minutes); `Tiny`
//! is the CI/unit-test scale (seconds). Timing experiments always use
//! the **full-geometry GoogLeNet work profile** regardless of scale — the
//! scale only controls how many images are simulated and which network
//! computes the real FP32/FP16 numerics for the accuracy figures.

use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    Tiny,
    Small,
    Paper,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// Simulated images per subset for the throughput figures (the paper
    /// uses 10 000; timing is cost-model-driven so this only affects
    /// sample counts, not the means).
    pub fn throughput_images_per_subset(self) -> usize {
        match self {
            Scale::Tiny => 24,
            Scale::Small => 200,
            Scale::Paper => 10_000,
        }
    }

    /// Images per point of the batch-sweep figures (6b, 8a, 8b).
    pub fn sweep_images(self) -> usize {
        match self {
            Scale::Tiny => 16,
            Scale::Small => 64,
            Scale::Paper => 512,
        }
    }

    /// Network variant carrying the real numerics of the accuracy
    /// figures (Fig. 7). `Paper` uses the mini inception network — the
    /// full 224×224 model over 2 × 50 000 software-FP16 inferences is
    /// documented as out of laptop reach in DESIGN.md.
    pub fn accuracy_variant(self) -> Variant {
        match self {
            Scale::Tiny => Variant::Tiny,
            Scale::Small | Scale::Paper => Variant::Mini,
        }
    }

    /// Class count of the accuracy dataset. The ILSVRC original has
    /// 1000; the synthetic substitute scales the count with the reduced
    /// feature dimensionality of the mini network so class margins stay
    /// realistic (see DESIGN.md).
    pub fn accuracy_classes(self) -> usize {
        match self {
            Scale::Tiny => 10,
            Scale::Small => 100,
            Scale::Paper => 200,
        }
    }

    /// Validation images per subset for the accuracy figures.
    pub fn accuracy_images_per_subset(self) -> usize {
        match self {
            Scale::Tiny => 30,
            Scale::Small => 120,
            Scale::Paper => 10_000,
        }
    }

    /// Probe size for the error-rate calibration.
    pub fn calibration_probe(self) -> usize {
        match self {
            Scale::Tiny => 150,
            Scale::Small => 600,
            Scale::Paper => 2000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for s in [Scale::Tiny, Scale::Small, Scale::Paper] {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_matches_protocol() {
        assert_eq!(Scale::Paper.throughput_images_per_subset(), 10_000);
        assert_eq!(Scale::Paper.accuracy_images_per_subset(), 10_000);
        assert_eq!(Scale::Paper.accuracy_variant(), Variant::Mini);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(
            Scale::Tiny.throughput_images_per_subset()
                < Scale::Small.throughput_images_per_subset()
        );
        assert!(
            Scale::Small.throughput_images_per_subset()
                < Scale::Paper.throughput_images_per_subset()
        );
    }
}
