//! E13 — measured power vs TDP (extension).
//!
//! §V warns that "the TDP can be far from the real power draws per
//! device" and defers actual measurement to future work. The simulator
//! integrates per-island activity into real energy, so this experiment
//! runs the comparison: Eq. (1) computed with the TDP the paper used
//! (2.5 W/stick) versus the power the chips actually drew.

use crate::report;
use crate::scale::Scale;
use hostsim::power::Tdp;
use ncsw::multivpu::{MultiVpu, MultiVpuConfig};
use ncsw::ModelBundle;
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerPoint {
    pub devices: usize,
    pub img_per_sec: f64,
    /// Average measured chip power per stick, W.
    pub measured_w_per_stick: f64,
    /// Eq. (1) with the paper's stick TDP (2.5 W each).
    pub img_per_watt_tdp: f64,
    /// Eq. (1) with the measured draw.
    pub img_per_watt_measured: f64,
    /// Energy per inference, mJ.
    pub mj_per_inference: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerBench {
    pub points: Vec<PowerPoint>,
}

pub fn power_bench(scale: Scale) -> PowerBench {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let mut points = Vec::new();
    for devices in [1usize, 2, 4, 8] {
        let images = scale.sweep_images().max(devices * 4);
        let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(devices), &model);
        let run = mv.run_pipeline(images);
        let ips = run.images_per_sec();
        let avg_w_total = run.energy_j / run.makespan().as_secs();
        let per_stick = avg_w_total / devices as f64;
        points.push(PowerPoint {
            devices,
            img_per_sec: ips,
            measured_w_per_stick: per_stick,
            img_per_watt_tdp: ips / Tdp::default().multi_stick_w(devices),
            img_per_watt_measured: ips / avg_w_total,
            mj_per_inference: run.energy_j / images as f64 * 1e3,
        });
    }
    PowerBench { points }
}

impl PowerBench {
    pub fn print(&self) {
        report::header("E13 — measured power vs TDP (the §V caveat, quantified)");
        println!(
            "{:>7} {:>9} {:>12} {:>12} {:>14} {:>9}",
            "sticks", "img/s", "W/stick", "img/W (TDP)", "img/W (meas.)", "mJ/inf"
        );
        for p in &self.points {
            println!(
                "{:>7} {:>9.1} {:>12.3} {:>12.2} {:>14.2} {:>9.1}",
                p.devices,
                p.img_per_sec,
                p.measured_w_per_stick,
                p.img_per_watt_tdp,
                p.img_per_watt_measured,
                p.mj_per_inference
            );
        }
        println!(
            "\nthe chips draw ~0.68 W under inference load — a quarter of the 2.5 W\n\
             stick-TDP the paper charges — so Eq. (1) understates the VPU's\n\
             advantage by ~4x. The paper's conclusion only strengthens."
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_power_is_well_under_tdp() {
        let b = power_bench(Scale::Tiny);
        for p in &b.points {
            // Chip draw between idle (~0.2 W) and the 0.9 W chip TDP.
            assert!(
                (0.3..0.9).contains(&p.measured_w_per_stick),
                "{} W/stick at {} devices",
                p.measured_w_per_stick,
                p.devices
            );
            assert!(p.img_per_watt_measured > p.img_per_watt_tdp * 2.0);
        }
    }

    #[test]
    fn energy_per_inference_is_stable_across_fleet_sizes() {
        let b = power_bench(Scale::Tiny);
        let first = b.points[0].mj_per_inference;
        for p in &b.points {
            assert!(
                (p.mj_per_inference - first).abs() / first < 0.05,
                "energy per inference should not depend on fleet size"
            );
        }
    }
}
