//! E12 — streaming offload (extension).
//!
//! The paper motivates MPI-stream sources (§III cites the MPI streaming
//! model of Peng et al.) and the decoupled load/get-result interface as
//! the enabler of computation offloading on HPC nodes. This experiment
//! measures the *sustainable stream rate*: images arrive at a fixed
//! interval; a fleet keeps up if result latency stays bounded instead of
//! growing with every arrival.

use crate::report;
use desim::Duration;
use ncsw::multivpu::{MultiVpu, MultiVpuConfig};
use ncsw::ModelBundle;
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamPoint {
    pub devices: usize,
    pub interval_ms: f64,
    pub offered_fps: f64,
    /// Completion latency of the first image, ms.
    pub first_latency_ms: f64,
    /// Completion latency of the last image, ms.
    pub last_latency_ms: f64,
    /// Whether the fleet kept up (latency bounded).
    pub sustained: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamBench {
    pub images: usize,
    pub points: Vec<StreamPoint>,
}

/// Drive a fleet from a fixed-interval stream and check stability.
fn run_point(devices: usize, interval: Duration, images: usize) -> StreamPoint {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let mut mv = MultiVpu::new(MultiVpuConfig::paper_testbed(devices), &model);
    // Simulate arrivals by spacing the pipeline's view of availability:
    // run in waves of `devices` images, each wave gated on its arrival.
    // (The pipeline itself pulls as fast as devices allow; the stream
    //  rate is enforced by comparing completion to arrival.)
    let report = mv.run_pipeline(images);
    let base = report.start;
    let mut first = None;
    let mut last = 0.0f64;
    let mut max_lag = 0.0f64;
    for (i, &done) in report.result_times.iter().enumerate() {
        let arrival = base + interval * (i as u64 + 1);
        let lag = if done > arrival { (done - arrival).as_millis() } else { 0.0 };
        max_lag = max_lag.max(lag);
        let lat = lag + 0.0;
        if first.is_none() {
            first = Some(lat);
        }
        last = lat;
    }
    // Sustained if the backlog does not keep growing: the last image's
    // lag is no worse than ~2 inference times beyond the first's.
    let first = first.unwrap_or(0.0);
    let sustained = last <= first + 220.0;
    StreamPoint {
        devices,
        interval_ms: interval.as_millis(),
        offered_fps: 1000.0 / interval.as_millis(),
        first_latency_ms: first,
        last_latency_ms: last,
        sustained,
    }
}

/// Sweep offered stream rates against fleet sizes.
pub fn stream_bench() -> StreamBench {
    let images = 64;
    let mut points = Vec::new();
    for devices in [1usize, 2, 4, 8] {
        for interval_ms in [100.0f64, 50.0, 25.0, 12.5] {
            points.push(run_point(devices, Duration::from_millis(interval_ms), images));
        }
    }
    StreamBench { images, points }
}

impl StreamBench {
    pub fn print(&self) {
        report::header("E12 — sustainable MPI-stream rate per fleet size (extension)");
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>10}",
            "sticks", "offered/s", "lag@first", "lag@last", "sustained"
        );
        for p in &self.points {
            println!(
                "{:>8} {:>10.1} {:>9.1}ms {:>11.1}ms {:>10}",
                p.devices,
                p.offered_fps,
                p.first_latency_ms,
                p.last_latency_ms,
                if p.sustained { "yes" } else { "NO" }
            );
        }
        println!(
            "\neach stick sustains ~10 img/s; a fleet of N keeps a stream of\n\
             ~10·N img/s stable, which is how a host would size its offload."
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_size_sets_sustainable_rate() {
        let b = stream_bench();
        let get = |d: usize, fps: f64| {
            b.points.iter().find(|p| p.devices == d && (p.offered_fps - fps).abs() < 0.5).unwrap()
        };
        // 1 stick sustains 10 img/s but not 20.
        assert!(get(1, 10.0).sustained, "1 stick @10/s should hold");
        assert!(!get(1, 20.0).sustained, "1 stick @20/s must fall behind");
        // 8 sticks hold 80 img/s (12.5 ms interval).
        assert!(get(8, 80.0).sustained, "8 sticks @80/s should hold");
        // 2 sticks cannot hold 80 img/s.
        assert!(!get(2, 80.0).sustained);
    }

    #[test]
    fn falling_behind_grows_the_backlog() {
        let b = stream_bench();
        let p = b.points.iter().find(|p| p.devices == 1 && p.offered_fps > 75.0).unwrap();
        // Over-offered stream: the last image lags far more than the first.
        assert!(p.last_latency_ms > p.first_latency_ms + 1000.0, "{p:?}");
    }
}
