//! E24 — causal what-if profiling: analytic counterfactuals validated
//! against actually-rescaled re-simulations.
//!
//! For each (component, factor, load) arm the experiment produces two
//! numbers for the same question — *"what if `component` ran `factor`×
//! as long?"*:
//!
//! - **predicted**: [`ncsw_analyze::whatif::predict`] replays the
//!   baseline trace's nine-segment attribution with the component's
//!   segment virtually scaled. Queue-blind by construction.
//! - **measured**: the deterministic simulator re-runs with the same
//!   component's *service model* actually scaled via [`ScalePlan`]
//!   (chip clocks, USB wire time, host forward calls, batch deadline —
//!   whichever knob the component names), same seed, same arrivals
//!   pinned to the *baseline* fleet's capacity.
//!
//! Where the two agree, sensitivity is schedule-linear and the trace
//! alone ranks bottlenecks truthfully. Where they disagree, the arm is
//! classified by what actually moved in the re-run (batch formation,
//! queueing, the service segment itself, or tail-only reshuffling) —
//! the *queueing blind spot* the analytic model cannot see. The E24
//! gate requires the f=1.0 arm byte-identical to the baseline and every
//! disagreement classified.

use crate::report;
use crate::scale::Scale;
use crate::serve_bench::TRACED_FLEET;
use desim::Duration;
use ncsw::{ModelBundle, ScaleComponent, ScalePlan};
use ncsw_analyze::whatif::{self, Component};
use ncsw_analyze::{Analysis, E2e, Segment};
use ncsw_serve::{serve_observed, ArrivalProcess, FleetSpec, ObsConfig, ServeConfig};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

/// How far (percent, relative) predicted mean/p99 may sit from the
/// re-simulated ones before an arm counts as a disagreement.
pub const TOLERANCE_PCT: f64 = 10.0;

/// A segment-mean shift must clear both an absolute floor and a share
/// of the baseline end-to-end mean to count as a real transition (not
/// deterministic re-scheduling noise).
const SHIFT_MS: f64 = 0.5;
const SHIFT_PCT: f64 = 2.0;

/// The sweep grid. [`Default`] is the full E24 grid: every component ×
/// {0.9, 0.75, 0.5} × {uncongested, congested}.
#[derive(Debug, Clone)]
pub struct WhatIfConfig {
    pub components: Vec<ScaleComponent>,
    pub factors: Vec<f64>,
    /// Offered load as fractions of the baseline fleet's estimated
    /// capacity. Arrival rates are pinned to the *baseline* capacity in
    /// every arm so the offered stream is identical across the sweep.
    pub loads: Vec<f64>,
    /// Agreement tolerance, percent (`--tol-pct`).
    pub tolerance_pct: f64,
}

impl Default for WhatIfConfig {
    fn default() -> Self {
        WhatIfConfig {
            components: ScaleComponent::ALL.to_vec(),
            factors: vec![0.9, 0.75, 0.5],
            loads: vec![0.55, 0.85],
            tolerance_pct: TOLERANCE_PCT,
        }
    }
}

/// One baseline run (per load): the trace every prediction replays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfBaseline {
    pub load_fraction: f64,
    pub offered_rps: f64,
    pub completed: usize,
    pub e2e: E2e,
    pub rps: f64,
    pub j_per_inference: Option<f64>,
}

/// One (component, factor, load) arm: prediction vs re-simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfPoint {
    pub component: String,
    pub factor: f64,
    pub load_fraction: f64,
    /// Requests the component touches in the baseline trace.
    pub affected: usize,
    pub seg_share: f64,
    pub critical_share: f64,
    pub base_mean_ms: f64,
    pub base_p99_ms: f64,
    pub predicted_mean_ms: f64,
    pub predicted_p99_ms: f64,
    pub measured_mean_ms: f64,
    pub measured_p99_ms: f64,
    pub predicted_rps: f64,
    pub measured_rps: f64,
    pub predicted_j_per_inference: Option<f64>,
    pub measured_j_per_inference: Option<f64>,
    /// |predicted − measured| / measured × 100.
    pub mean_err_pct: f64,
    pub p99_err_pct: f64,
    /// Mean shift of the batch-formation segment vs the baseline, ms
    /// (net of the direct effect when `batch-wait` itself is scaled).
    pub formation_shift_ms: f64,
    /// Mean shift of the *unscaled* waiting segments (retry-stall,
    /// dispatch-queue, exec-wait, read-wait, completion) vs baseline.
    pub queue_shift_ms: f64,
    /// Mean deviation of the scaled segment itself from its expected
    /// `factor × baseline` value, ms.
    pub service_shift_ms: f64,
    /// `agree` | `batch-shift` | `queueing` | `service-shift` |
    /// `tail-only` | `unexplained`.
    pub verdict: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfExp {
    pub scale: Scale,
    pub requests: usize,
    pub fleet: String,
    pub slo_ms: f64,
    pub tolerance_pct: f64,
    pub components: Vec<String>,
    pub factors: Vec<f64>,
    pub baselines: Vec<WhatIfBaseline>,
    pub points: Vec<WhatIfPoint>,
    /// The f=1.0 arm's Chrome trace is byte-identical to the baseline's.
    pub identity_ok: bool,
    /// Top-ranked component at the headline arm (min factor, max load),
    /// by analytic prediction and by actual re-simulation.
    pub top_predicted: String,
    pub top_measured: String,
    pub rank_agrees: bool,
    /// The E24 gate: identity passivity holds and every
    /// predicted-vs-measured disagreement is classified (no
    /// `unexplained` arms).
    pub whatif_ok: bool,
}

/// Everything `whatif_exp` produced, plus the traces CI diffs
/// byte-for-byte (kept out of the serialized report: they are large
/// and exactly reproducible from the seed).
pub struct WhatIfOutput {
    pub exp: WhatIfExp,
    /// Baseline Chrome trace of the *first* configured load.
    pub baseline_trace: String,
    /// Chrome trace of the `exec@1.0` identity arm at the same load.
    pub identity_trace: String,
}

fn requests_for(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 600,
        Scale::Small => 2_500,
        Scale::Paper => 8_000,
    }
}

/// Mean of one segment over all completed requests, ms.
fn seg_mean_ms(a: &Analysis, s: Segment) -> f64 {
    if a.breakdowns.is_empty() {
        return 0.0;
    }
    let sum: u64 = a.breakdowns.iter().map(|b| b.seg(s).nanos()).sum();
    sum as f64 / 1e6 / a.breakdowns.len() as f64
}

fn rel_err_pct(predicted: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - measured).abs() / measured * 100.0
    }
}

struct Arm {
    analysis: Analysis,
    chrome: Option<String>,
}

pub fn whatif_exp(scale: Scale) -> WhatIfExp {
    whatif_run(scale, &WhatIfConfig::default()).exp
}

pub fn whatif_run(scale: Scale, grid: &WhatIfConfig) -> WhatIfOutput {
    let slo = Duration::from_millis(500.0);
    let n = requests_for(scale);
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let spec = FleetSpec::parse(TRACED_FLEET).expect("valid fleet spec");
    // Capacity and batch limits are probed once on the *unscaled* fleet
    // and pinned: every arm sees the identical offered stream and serve
    // config, so the only difference is the component's service model.
    let probe = spec.build(&model);
    let capacity_rps = spec.capacity_rps(&probe);
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);

    let run = |plan: &ScalePlan, load: f64, chrome: bool| -> Arm {
        let mut cfg = ServeConfig { max_batch, slo, ..ServeConfig::default() };
        cfg.max_wait = plan.max_wait(cfg.max_wait);
        let mut workers = spec.build_scaled(&model, plan);
        let arrivals = ArrivalProcess::Poisson { rate_per_sec: capacity_rps * load };
        let (_outcome, obs) =
            serve_observed(&mut workers, &cfg, &arrivals, n, &ObsConfig::default());
        Arm {
            analysis: Analysis::of(&obs.events),
            chrome: chrome.then(|| ncsw_obs::chrome_trace(&obs.events)),
        }
    };
    // Identity stats of a run, through the same nearest-rank math the
    // predictions use (an f=1.0 "prediction" is a pure read-out).
    let stats = |a: &Analysis| whatif::predict(a, Component::Exec, 1.0);

    let mut baselines = Vec::new();
    let mut base_arms = Vec::new();
    for &load in &grid.loads {
        let arm = run(&ScalePlan::identity(), load, base_arms.is_empty());
        let s = stats(&arm.analysis);
        baselines.push(WhatIfBaseline {
            load_fraction: load,
            offered_rps: capacity_rps * load,
            completed: s.completed,
            e2e: s.base,
            rps: s.base_rps,
            j_per_inference: s.base_j_per_inference,
        });
        base_arms.push(arm);
    }

    // Passivity: an explicit `exec@1.0` plan must reproduce the first
    // baseline byte-for-byte (the scaling knobs all guard f == 1.0).
    let identity_arm = run(&ScalePlan::new(ScaleComponent::Exec, 1.0), grid.loads[0], true);
    let baseline_trace = base_arms[0].chrome.clone().unwrap_or_default();
    let identity_trace = identity_arm.chrome.unwrap_or_default();
    let identity_ok = baseline_trace == identity_trace;

    let mut points = Vec::new();
    for (li, &load) in grid.loads.iter().enumerate() {
        let base = &base_arms[li].analysis;
        let base_mean = stats(base).base.mean_ms;
        for &sc in &grid.components {
            let c = Component::parse(sc.name()).expect("component names are shared");
            for &factor in &grid.factors {
                let predicted = whatif::predict(base, c, factor);
                let arm = run(&ScalePlan::new(sc, factor), load, false);
                let measured = stats(&arm.analysis);

                let direct = c.segment();
                let dev = |s: Segment, expected: f64| seg_mean_ms(&arm.analysis, s) - expected;
                let formation_shift = if direct == Segment::Formation {
                    dev(direct, factor * seg_mean_ms(base, direct))
                } else {
                    dev(Segment::Formation, seg_mean_ms(base, Segment::Formation))
                };
                let queue_shift: f64 = [
                    Segment::RetryStall,
                    Segment::DispatchQueue,
                    Segment::ExecWait,
                    Segment::ReadWait,
                    Segment::Completion,
                ]
                .into_iter()
                .filter(|&s| s != direct)
                .map(|s| dev(s, seg_mean_ms(base, s)))
                .sum();
                let service_shift = if direct == Segment::Formation {
                    0.0
                } else {
                    dev(direct, factor * seg_mean_ms(base, direct))
                };

                let mean_err = rel_err_pct(predicted.predicted.mean_ms, measured.base.mean_ms);
                let p99_err = rel_err_pct(predicted.predicted.p99_ms, measured.base.p99_ms);
                let tol = grid.tolerance_pct;
                let significant =
                    |x: f64| x.abs() >= SHIFT_MS && x.abs() >= base_mean * SHIFT_PCT / 100.0;
                let verdict = if mean_err <= tol && p99_err <= tol {
                    "agree"
                } else {
                    // Largest significant transition explains the miss.
                    let shifts = [
                        ("batch-shift", formation_shift),
                        ("queueing", queue_shift),
                        ("service-shift", service_shift),
                    ];
                    shifts
                        .iter()
                        .filter(|(_, x)| significant(*x))
                        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                        .map(|(name, _)| *name)
                        .unwrap_or(if mean_err <= tol { "tail-only" } else { "unexplained" })
                };

                points.push(WhatIfPoint {
                    component: sc.name().to_string(),
                    factor,
                    load_fraction: load,
                    affected: predicted.affected,
                    seg_share: predicted.seg_share,
                    critical_share: predicted.critical_share,
                    base_mean_ms: predicted.base.mean_ms,
                    base_p99_ms: predicted.base.p99_ms,
                    predicted_mean_ms: predicted.predicted.mean_ms,
                    predicted_p99_ms: predicted.predicted.p99_ms,
                    measured_mean_ms: measured.base.mean_ms,
                    measured_p99_ms: measured.base.p99_ms,
                    predicted_rps: predicted.predicted_rps,
                    measured_rps: measured.base_rps,
                    predicted_j_per_inference: predicted.predicted_j_per_inference,
                    measured_j_per_inference: measured.base_j_per_inference,
                    mean_err_pct: mean_err,
                    p99_err_pct: p99_err,
                    formation_shift_ms: formation_shift,
                    queue_shift_ms: queue_shift,
                    service_shift_ms: service_shift,
                    verdict: verdict.to_string(),
                });
            }
        }
    }

    // Headline ranking: hardest speedup at the heaviest load.
    let headline_factor = grid.factors.iter().copied().fold(f64::INFINITY, f64::min);
    let headline_load = grid.loads.iter().copied().fold(0.0, f64::max);
    let headline: Vec<&WhatIfPoint> = points
        .iter()
        .filter(|p| p.factor == headline_factor && p.load_fraction == headline_load)
        .collect();
    // Rank by p99 gain, mean gain as tie-break (a component that only
    // helps requests outside the tail still beats a pure no-op).
    let top_by = |key: fn(&WhatIfPoint) -> (f64, f64)| {
        headline
            .iter()
            .max_by(|a, b| {
                let (ka, kb) = (key(a), key(b));
                ka.0.total_cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
            })
            .map(|p| p.component.clone())
            .unwrap_or_default()
    };
    let top_predicted =
        top_by(|p| (p.base_p99_ms - p.predicted_p99_ms, p.base_mean_ms - p.predicted_mean_ms));
    let top_measured =
        top_by(|p| (p.base_p99_ms - p.measured_p99_ms, p.base_mean_ms - p.measured_mean_ms));
    let rank_agrees = top_predicted == top_measured;

    let whatif_ok = identity_ok && points.iter().all(|p| p.verdict != "unexplained");
    let exp = WhatIfExp {
        scale,
        requests: n,
        fleet: TRACED_FLEET.to_string(),
        slo_ms: slo.as_millis(),
        tolerance_pct: grid.tolerance_pct,
        components: grid.components.iter().map(|c| c.name().to_string()).collect(),
        factors: grid.factors.clone(),
        baselines,
        points,
        identity_ok,
        top_predicted,
        top_measured,
        rank_agrees,
        whatif_ok,
    };
    WhatIfOutput { exp, baseline_trace, identity_trace }
}

/// Per-arm virtual-speedup curves as CSV (`--csv` artifact).
pub fn whatif_csv(e: &WhatIfExp) -> String {
    let mut s = String::from(
        "component,factor,load,affected,seg_share,critical_share,\
         base_mean_ms,predicted_mean_ms,measured_mean_ms,mean_err_pct,\
         base_p99_ms,predicted_p99_ms,measured_p99_ms,p99_err_pct,\
         predicted_rps,measured_rps,verdict\n",
    );
    for p in &e.points {
        s.push_str(&format!(
            "{},{},{},{},{:.4},{:.4},{:.3},{:.3},{:.3},{:.2},{:.3},{:.3},{:.3},{:.2},{:.2},{:.2},{}\n",
            p.component,
            p.factor,
            p.load_fraction,
            p.affected,
            p.seg_share,
            p.critical_share,
            p.base_mean_ms,
            p.predicted_mean_ms,
            p.measured_mean_ms,
            p.mean_err_pct,
            p.base_p99_ms,
            p.predicted_p99_ms,
            p.measured_p99_ms,
            p.p99_err_pct,
            p.predicted_rps,
            p.measured_rps,
            p.verdict,
        ));
    }
    s
}

impl WhatIfExp {
    pub fn print(&self) {
        report::header(&format!(
            "E24 — causal what-if profiling: {} on {} requests/arm, SLO {} ms, scale {}",
            self.fleet,
            self.requests,
            self.slo_ms,
            self.scale.name()
        ));
        for b in &self.baselines {
            println!(
                "baseline @ load {:.2}: {} completed, mean {:.1} ms, p99 {:.1} ms, {:.1} req/s{}",
                b.load_fraction,
                b.completed,
                b.e2e.mean_ms,
                b.e2e.p99_ms,
                b.rps,
                b.j_per_inference.map_or(String::new(), |j| format!(", {:.3} J/inference", j)),
            );
        }
        println!(
            "{:<11} {:>6} {:>5} {:>5} {:>6} {:>19} {:>9} {:>19} {:>9}  verdict",
            "component",
            "factor",
            "load",
            "seg%",
            "crit%",
            "p99 pred/meas ms",
            "err%",
            "mean pred/meas ms",
            "err%",
        );
        for p in &self.points {
            println!(
                "{:<11} {:>6.2} {:>5.2} {:>5.1} {:>6.1} {:>9.1} /{:>8.1} {:>9.2} {:>9.1} /{:>8.1} {:>9.2}  {}",
                p.component,
                p.factor,
                p.load_fraction,
                p.seg_share * 100.0,
                p.critical_share * 100.0,
                p.predicted_p99_ms,
                p.measured_p99_ms,
                p.p99_err_pct,
                p.predicted_mean_ms,
                p.measured_mean_ms,
                p.mean_err_pct,
                p.verdict,
            );
        }
        println!(
            "headline ranking (factor {:.2}, heaviest load): predicted '{}', measured '{}' ({})",
            self.factors.iter().copied().fold(f64::INFINITY, f64::min),
            self.top_predicted,
            self.top_measured,
            if self.rank_agrees { "agree" } else { "DISAGREE" }
        );
        println!(
            "gate (f=1.0 byte-identical: {}; every disagreement classified, tol {:.0}%): {}",
            if self.identity_ok { "yes" } else { "NO" },
            self.tolerance_pct,
            if self.whatif_ok { "ok" } else { "VIOLATED" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> WhatIfConfig {
        WhatIfConfig {
            components: vec![ScaleComponent::Exec, ScaleComponent::UsbRead],
            factors: vec![0.5],
            loads: vec![0.85],
            tolerance_pct: TOLERANCE_PCT,
        }
    }

    #[test]
    fn tiny_whatif_holds_the_gate() {
        let out = whatif_run(Scale::Tiny, &tiny_grid());
        let e = &out.exp;
        assert_eq!(e.points.len(), 2);
        assert!(e.identity_ok, "exec@1.0 must be byte-identical to the baseline");
        assert!(!out.baseline_trace.is_empty());
        assert_eq!(out.baseline_trace, out.identity_trace);
        assert!(e.whatif_ok, "{e:#?}");
        let exec = e.points.iter().find(|p| p.component == "exec").unwrap();
        assert!(exec.affected > 0, "VPU-class requests must exist on {TRACED_FLEET}");
        // Halving exec must predict *and* measure a faster fleet.
        assert!(exec.predicted_mean_ms < exec.base_mean_ms, "{exec:#?}");
        assert!(exec.measured_mean_ms < exec.base_mean_ms, "{exec:#?}");
    }

    #[test]
    fn measured_exec_segment_shrinks_monotonically() {
        // Satellite: monotonicity on the *measured* side — the actual
        // re-simulated exec segment mean is non-increasing in f.
        let grid = WhatIfConfig {
            components: vec![ScaleComponent::Exec],
            factors: vec![0.75, 0.5],
            loads: vec![0.55],
            tolerance_pct: TOLERANCE_PCT,
        };
        let out = whatif_run(Scale::Tiny, &grid);
        let base = &out.exp.baselines[0];
        let p75 = out.exp.points.iter().find(|p| p.factor == 0.75).unwrap();
        let p50 = out.exp.points.iter().find(|p| p.factor == 0.5).unwrap();
        // Mean latency orders with the exec speedup at light load.
        assert!(p50.measured_mean_ms <= p75.measured_mean_ms + 0.5, "{p50:#?} vs {p75:#?}");
        assert!(p75.measured_mean_ms <= base.e2e.mean_ms + 0.5);
    }
}
