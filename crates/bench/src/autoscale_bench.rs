//! E20 — autoscaled serving: closed-loop fleet scaling vs the static
//! fleet.
//!
//! E19 put an exact number on the cost of headroom: at 0.2x load the
//! idle draw of a provisioned-for-peak fleet is a large fraction of
//! total energy. E20 closes the loop. An elastic fleet of independent
//! VPU sticks (`8*vpu`) serves the same Poisson load under the three
//! `ncsw-ctrl` policies — reactive, predictive, oracle — and the
//! controller drains and power-gates sticks the load does not need.
//! The interesting column is `reclaimed_j`: the *exact* idle energy
//! the gated windows avoided (integer `idle_mw x ns` off the same
//! ledger every conservation law runs on), bought at an SLO-attainment
//! delta that should stay within a point of the static fleet. The
//! oracle bounds what any controller could reclaim; the gap from
//! reactive to oracle is the price of having no foresight.

use crate::report;
use crate::scale::Scale;
use crate::serve_bench::TracedServe;
use desim::Duration;
use ncsw::ModelBundle;
use ncsw_serve::{
    serve, serve_autoscaled, serve_autoscaled_observed, ArrivalProcess, FleetSpec, ObsConfig,
    ScalingConfig, ServeConfig, ServeOutcome, ServeReport,
};
use serde::{Deserialize, Serialize};
use vpu_nn::googlenet::Variant;

/// The elastic fleet: eight independent single-stick VPU workers (the
/// autoscaling unit), as opposed to `8xvpu`, one eight-device pipeline.
pub const AUTOSCALE_FLEET: &str = "8*vpu";

/// Offered load fractions of nameplate capacity. 0.2x is where E19
/// showed idle headroom dominating; 0.8x leaves little to reclaim.
pub const AUTOSCALE_LOADS: [f64; 3] = [0.2, 0.5, 0.8];

/// `static` plus the three controller policies, in foresight order.
pub const AUTOSCALE_POLICIES: [&str; 4] = ["static", "reactive", "predictive", "oracle"];

/// One (load, policy) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyPoint {
    /// `static` or a `ncsw-ctrl` policy name.
    pub policy: String,
    pub offered_frac: f64,
    pub offered_rps: f64,
    /// Fraction of generated requests completed within the SLO.
    pub attainment: f64,
    /// Attainment minus the static fleet's at the same load (zero for
    /// the static row itself).
    pub attainment_delta: f64,
    pub goodput_rps: f64,
    pub p99_ms: f64,
    pub fleet_j: f64,
    /// Idle energy the power-gated windows avoided (exact pJ).
    pub reclaimed_pj: u64,
    pub reclaimed_j: f64,
    /// Powered elastic stick-seconds vs what a static fleet pays.
    pub stick_seconds: f64,
    pub static_stick_seconds: f64,
    pub scale_ups: u64,
    pub scale_downs: u64,
}

/// The E20 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoscaleExp {
    pub scale: Scale,
    pub fleet: String,
    pub capacity_rps: f64,
    pub requests_per_point: usize,
    pub slo_ms: f64,
    /// For each load fraction: the static baseline, then the policies
    /// in increasing-foresight order.
    pub points: Vec<PolicyPoint>,
    /// Acceptance gate, checked at the lowest load: every policy
    /// reclaims energy, `oracle >= predictive >= reactive` on reclaimed
    /// joules, and every policy holds attainment within one point of
    /// the static fleet.
    pub policy_order_ok: bool,
}

fn requests_per_point(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 160,
        Scale::Small => 1_500,
        Scale::Paper => 10_000,
    }
}

fn attainment(outcome: &ServeOutcome, cfg: &ServeConfig) -> f64 {
    let good = outcome.completed.iter().filter(|r| r.latency() <= cfg.slo).count();
    good as f64 / outcome.generated.max(1) as f64
}

fn point_of(
    outcome: &ServeOutcome,
    cfg: &ServeConfig,
    policy: &str,
    frac: f64,
    rate: f64,
    static_attainment: f64,
) -> PolicyPoint {
    let report = ServeReport::of(outcome, cfg);
    let att = attainment(outcome, cfg);
    let (reclaimed_pj, reclaimed_j, stick_s, static_s, ups, downs) = match &report.scaling {
        Some(s) => (
            s.reclaimed_pj,
            s.reclaimed_j,
            s.stick_seconds,
            s.static_stick_seconds,
            s.scale_ups,
            s.scale_downs,
        ),
        None => {
            // Static baseline: every stick powered for the horizon.
            let horizon_s = (outcome.energy_horizon() - outcome.epoch).as_secs();
            let sticks = outcome.workers.len() as f64 * horizon_s;
            (0, 0.0, sticks, sticks, 0, 0)
        }
    };
    PolicyPoint {
        policy: policy.to_string(),
        offered_frac: frac,
        offered_rps: rate,
        attainment: att,
        attainment_delta: att - static_attainment,
        goodput_rps: report.goodput_rps,
        p99_ms: report.latency.p99_ms,
        fleet_j: report.energy.fleet_j,
        reclaimed_pj,
        reclaimed_j,
        stick_seconds: stick_s,
        static_stick_seconds: static_s,
        scale_ups: ups,
        scale_downs: downs,
    }
}

/// Run E20: the elastic fleet swept over load fractions under the
/// static baseline and all three scaling policies.
pub fn autoscale_exp(scale: Scale) -> AutoscaleExp {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = requests_per_point(scale);
    let spec = FleetSpec::parse(AUTOSCALE_FLEET).expect("valid fleet spec");
    let probe = spec.build(&model);
    let capacity_rps = spec.capacity_rps(&probe);
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let cfg = ServeConfig { max_batch, ..ServeConfig::default() };
    let scaling = ScalingConfig { elastic: spec.elastic_workers(), ..ScalingConfig::default() };

    let mut points = Vec::new();
    for &frac in &AUTOSCALE_LOADS {
        let rate = capacity_rps * frac;
        let load = ArrivalProcess::Poisson { rate_per_sec: rate };

        // Static baseline: same fleet, controller off.
        let mut workers = spec.build(&model);
        let baseline = serve(&mut workers, &cfg, &load, n);
        let static_att = attainment(&baseline, &cfg);
        points.push(point_of(&baseline, &cfg, "static", frac, rate, static_att));

        for name in ncsw_ctrl::POLICY_NAMES {
            let mut policy = ncsw_ctrl::policy(name).expect("known policy");
            let mut workers = spec.build(&model);
            let outcome = serve_autoscaled(&mut workers, &cfg, &load, n, &scaling, policy.as_mut());
            points.push(point_of(&outcome, &cfg, name, frac, rate, static_att));
        }
    }

    let policy_order_ok = order_ok(&points, AUTOSCALE_LOADS[0]);
    AutoscaleExp {
        scale,
        fleet: AUTOSCALE_FLEET.to_string(),
        capacity_rps,
        requests_per_point: n,
        slo_ms: cfg.slo.as_millis(),
        points,
        policy_order_ok,
    }
}

/// The acceptance predicate at one load fraction (see
/// [`AutoscaleExp::policy_order_ok`]).
fn order_ok(points: &[PolicyPoint], frac: f64) -> bool {
    let at = |name: &str| {
        points.iter().find(|p| p.policy == name && (p.offered_frac - frac).abs() < 1e-9)
    };
    let (Some(reactive), Some(predictive), Some(oracle)) =
        (at("reactive"), at("predictive"), at("oracle"))
    else {
        return false;
    };
    let all = [reactive, predictive, oracle];
    all.iter().all(|p| p.reclaimed_pj > 0)
        && oracle.reclaimed_pj >= predictive.reclaimed_pj
        && predictive.reclaimed_pj >= reactive.reclaimed_pj
        && all.iter().all(|p| p.attainment_delta >= -0.01)
}

impl AutoscaleExp {
    pub fn point(&self, policy: &str, frac: f64) -> Option<&PolicyPoint> {
        self.points.iter().find(|p| p.policy == policy && (p.offered_frac - frac).abs() < 1e-9)
    }

    pub fn print(&self) {
        report::header(&format!(
            "E20 — autoscaled serving: {} ({:.1} req/s nameplate), {} req/point, SLO {} ms, \
             scale {}",
            self.fleet,
            self.capacity_rps,
            self.requests_per_point,
            self.slo_ms,
            self.scale.name()
        ));
        for &frac in &AUTOSCALE_LOADS {
            println!("\noffered load {:.2}x nameplate", frac);
            println!(
                "{:>10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>9} {:>6} {:>6}",
                "policy",
                "attain%",
                "Δ pts",
                "p99 ms",
                "fleet J",
                "reclaim J",
                "stick·s",
                "ups",
                "downs"
            );
            for p in self.points.iter().filter(|p| (p.offered_frac - frac).abs() < 1e-9) {
                println!(
                    "{:>10} {:>8.2} {:>8.2} {:>8.1} {:>10.3} {:>10.3} {:>9.1} {:>6} {:>6}",
                    p.policy,
                    p.attainment * 100.0,
                    p.attainment_delta * 100.0,
                    p.p99_ms,
                    p.fleet_j,
                    p.reclaimed_j,
                    p.stick_seconds,
                    p.scale_ups,
                    p.scale_downs
                );
            }
        }
        println!(
            "\npolicy order (oracle >= predictive >= reactive on reclaimed J at {:.1}x, \
             attainment within 1 pt of static): {}",
            AUTOSCALE_LOADS[0],
            if self.policy_order_ok { "ok" } else { "VIOLATED" }
        );
    }
}

/// One fully observed autoscaled run at the low-load point, exporting
/// the same artifact bundle as `traced_serve`: Chrome trace (now with
/// `Drain` / `ScaleDown` / `ScaleUp` events and power lanes that go
/// dark while a stick is gated), the time series CSV with the
/// `live_sticks` / `scale_events` columns, and the metric summary.
pub fn traced_autoscale(scale: Scale, policy_name: &str, sample_every: Duration) -> TracedServe {
    traced_autoscale_sampled(scale, policy_name, sample_every, None)
}

/// [`traced_autoscale`] with tail-based trace sampling (the
/// `repro autoscale --sample SPEC` path); sampling is passive, so the
/// autoscaled outcome and series are identical to the unsampled run.
pub fn traced_autoscale_sampled(
    scale: Scale,
    policy_name: &str,
    sample_every: Duration,
    sample: Option<ncsw_obs::SamplePolicy>,
) -> TracedServe {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = requests_per_point(scale);
    let spec = FleetSpec::parse(AUTOSCALE_FLEET).expect("valid fleet spec");
    let probe = spec.build(&model);
    let capacity_rps = spec.capacity_rps(&probe);
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let cfg = ServeConfig { max_batch, ..ServeConfig::default() };
    let scaling = ScalingConfig { elastic: spec.elastic_workers(), ..ScalingConfig::default() };
    let mut policy = ncsw_ctrl::policy(policy_name)
        .unwrap_or_else(|| panic!("unknown scaling policy '{policy_name}'"));

    let mut workers = spec.build(&model);
    let rate = capacity_rps * AUTOSCALE_LOADS[0];
    let load = ArrivalProcess::Poisson { rate_per_sec: rate };
    let ocfg = ObsConfig { sample_every, sample: sample.clone(), ..ObsConfig::default() };
    let (outcome, mut obs) =
        serve_autoscaled_observed(&mut workers, &cfg, &load, n, &scaling, policy.as_mut(), &ocfg);
    let art = crate::serve_bench::observed_artifacts(&mut obs);
    let mut replay = format!("repro autoscale --scale {} --ctrl {policy_name}", scale.name());
    if let Some(p) = &sample {
        replay.push_str(&format!(" --sample {}", p.spec()));
    }
    let incidents = crate::serve_bench::incident_bundles(&obs, cfg.seed, &art.summary, &replay);
    TracedServe {
        fleet: AUTOSCALE_FLEET.to_string(),
        requests: n,
        offered_rps: rate,
        report: ServeReport::of(&outcome, &cfg),
        chrome_json: art.chrome_json,
        series_csv: art.series_csv,
        summary: art.summary,
        slo_alerts: art.slo_alerts,
        overhead: art.overhead,
        sample: obs.sample.clone(),
        incidents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_autoscale_orders_policies_and_reclaims_idle_energy() {
        let e = autoscale_exp(Scale::Tiny);
        assert_eq!(e.points.len(), AUTOSCALE_LOADS.len() * AUTOSCALE_POLICIES.len());
        assert!(e.policy_order_ok, "policy ordering violated: {:#?}", e.points);

        // The acceptance bar: at 0.2x load even the foresight-free
        // reactive policy reclaims a substantial fraction of the idle
        // headroom E19 priced, within a point of static attainment.
        let stat = e.point("static", 0.2).unwrap();
        let reactive = e.point("reactive", 0.2).unwrap();
        let idle_headroom_j = stat.fleet_j; // upper bound on idle
        assert!(
            reactive.reclaimed_j > 0.05 * idle_headroom_j,
            "reactive reclaimed {:.3} J of a {:.3} J static fleet",
            reactive.reclaimed_j,
            idle_headroom_j
        );
        assert!(reactive.attainment_delta >= -0.01, "{reactive:#?}");
        // The oracle bounds everyone and pays fewer stick-seconds.
        let oracle = e.point("oracle", 0.2).unwrap();
        assert!(oracle.stick_seconds < stat.stick_seconds);
        assert!(oracle.fleet_j < stat.fleet_j, "gating must cut fleet energy");
    }

    #[test]
    fn traced_autoscale_exports_scaling_columns_and_events() {
        let t = traced_autoscale(Scale::Tiny, "reactive", Duration::from_millis(10.0));
        let header = t.series_csv.lines().next().unwrap();
        assert!(
            header.ends_with(",live_sticks,scale_events"),
            "autoscaled series must export scaling columns: {header}"
        );
        assert!(t.chrome_json.contains("\"Drain\""), "trace must carry Drain events");
        assert!(t.chrome_json.contains("\"ScaleDown\""));
        let scaling = t.report.scaling.as_ref().expect("scaling block");
        assert!(scaling.scale_downs > 0);
        assert!(scaling.reclaimed_pj > 0);
        // The live_sticks column actually moves.
        let live_col = header.split(',').position(|c| c == "live_sticks").unwrap();
        let mut lives: Vec<&str> =
            t.series_csv.lines().skip(1).map(|l| l.split(',').nth(live_col).unwrap()).collect();
        lives.dedup();
        assert!(lives.len() > 1, "live_sticks never changed: {lives:?}");
    }

    #[test]
    fn reactive_spins_up_replacements_during_an_outage() {
        // Gate-friendly low load, then unplug a *live* stick (w0 — the
        // controller drains from the top, so index 0 stays up) long
        // enough for the breaker to stay open across controller ticks.
        let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
        let spec = FleetSpec::parse(AUTOSCALE_FLEET).unwrap();
        let probe = spec.build(&model);
        let capacity_rps = spec.capacity_rps(&probe);
        let max_batch = spec.preferred_batch(&probe);
        drop(probe);
        let cfg = ServeConfig { max_batch, ..ServeConfig::default() };
        let scaling = ScalingConfig { elastic: spec.elastic_workers(), ..Default::default() };
        let plan = ncsw_faults::FaultPlan::parse("w0:unplug@2s:reconnect@6s").unwrap();
        let mut workers = plan.apply(spec.build(&model), cfg.seed);
        let load = ArrivalProcess::Poisson { rate_per_sec: capacity_rps * 0.3 };
        let mut policy = ncsw_ctrl::policy("reactive").unwrap();
        let outcome = serve_autoscaled(&mut workers, &cfg, &load, 300, &scaling, policy.as_mut());
        let stats = outcome.scaling.as_ref().unwrap();
        assert!(!outcome.faults.outages.is_empty(), "the unplug must open a circuit");
        assert!(
            stats.replacements > 0,
            "a multi-tick outage must spin up replacement sticks: {stats:?}"
        );
    }
}
