//! E11 — CNN zoo benchmark on the NCS (extension).
//!
//! Mirrors the paper's reference \[37\] (Pena et al., RSS 2017 workshop):
//! several CNNs on the same stick, reporting latency, throughput, graph
//! size and per-inference energy. GoogLeNet sits between the tiny
//! SqueezeNet and the FC-heavy AlexNet.

use crate::report;
use desim::SimTime;
use myriad2::{Myriad2, Myriad2Config};
use serde::{Deserialize, Serialize};
use vpu_nn::cost::NetworkCost;
use vpu_nn::graph::NetworkSpec;
use vpu_nn::{googlenet, zoo};
use vpu_num::f16;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZooRow {
    pub network: String,
    pub gmacs: f64,
    pub params_m: f64,
    pub graph_mb: f64,
    /// Single-stick on-chip latency.
    pub ms: f64,
    pub img_per_sec: f64,
    pub mj_per_inference: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZooBench {
    pub rows: Vec<ZooRow>,
}

fn bench_one(spec: &NetworkSpec) -> ZooRow {
    let cost = NetworkCost::of::<f16>(spec);
    let mut chip = Myriad2::new(Myriad2Config::default());
    let run = chip.run_cost(&cost, SimTime::ZERO);
    let ms = run.duration().as_millis();
    ZooRow {
        network: cost.network.clone(),
        gmacs: cost.total_macs as f64 / 1e9,
        params_m: cost.total_params as f64 / 1e6,
        graph_mb: cost.total_weight_bytes() as f64 / 1e6,
        ms,
        img_per_sec: 1000.0 / ms,
        mj_per_inference: run.energy_j * 1e3,
    }
}

/// Benchmark the three zoo networks on one simulated stick.
pub fn zoo_bench() -> ZooBench {
    ZooBench {
        rows: vec![
            bench_one(&zoo::squeezenet_v10()),
            bench_one(&googlenet::full()),
            bench_one(&zoo::alexnet_one_tower()),
        ],
    }
}

impl ZooBench {
    pub fn print(&self) {
        report::header("E11 — CNN zoo on one Myriad 2 (extension, after Pena et al. [37])");
        println!(
            "{:<20} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8}",
            "network", "GMACs", "params M", "graph MB", "ms/inf", "img/s", "mJ/inf"
        );
        for r in &self.rows {
            println!(
                "{:<20} {:>7.2} {:>9.2} {:>9.1} {:>8.1} {:>8.2} {:>8.1}",
                r.network, r.gmacs, r.params_m, r.graph_mb, r.ms, r.img_per_sec, r.mj_per_inference
            );
        }
        println!(
            "\nSqueezeNet's 2.5 MB graph and sub-GoogLeNet latency is why it became\n\
             the NCS demo network; AlexNet has fewer MACs than GoogLeNet but its\n\
             61 M FC parameters make it DDR-bound, eating the compute advantage."
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_ordering_is_sane() {
        let z = zoo_bench();
        assert_eq!(z.rows.len(), 3);
        let by: std::collections::HashMap<&str, &ZooRow> =
            z.rows.iter().map(|r| (r.network.as_str(), r)).collect();
        let sq = by["squeezenet_v1.0"];
        let gl = by["bvlc_googlenet"];
        let ax = by["alexnet_one_tower"];
        // Latency tracks compute + weight streaming.
        assert!(sq.ms < gl.ms, "SqueezeNet must beat GoogLeNet");
        // AlexNet has 28% fewer MACs than GoogLeNet but streams 9x the
        // weights: DDR time must push it far above compute-proportional
        // latency (1.14/1.58 of GoogLeNet's would be ~72 ms).
        let compute_proportional = gl.ms * ax.gmacs / gl.gmacs;
        assert!(
            ax.ms > compute_proportional * 1.15,
            "AlexNet {} ms vs compute-only {} ms",
            ax.ms,
            compute_proportional
        );
        // Graph sizes.
        assert!(sq.graph_mb < 4.0);
        assert!((10.0..20.0).contains(&gl.graph_mb));
        assert!(ax.graph_mb > 100.0);
        // Energy ordering matches latency ordering.
        assert!(sq.mj_per_inference < ax.mj_per_inference);
    }
}
