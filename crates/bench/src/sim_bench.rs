//! E21 — sim-throughput benchmark: how fast the simulator simulates.
//!
//! Every other experiment measures the *simulated* fleet; E21 measures
//! the *simulator*, because the ROADMAP's million-request sweeps need a
//! perf trajectory before the hot loop can be refactored safely. A
//! fixed matrix of serving cells — the unobserved loop, the fully
//! observed loop, a faulted run, and a closed-loop autoscaled run —
//! each reports a **deterministic** `virt` block (requests, sim events,
//! virtual horizon, exporter bytes: byte-identical across machines) and
//! a **machine-dependent** `wall` block (wall-clock, events/sec,
//! req/sec, virtual-seconds per wall-second, recorder overhead %).
//!
//! `repro bench-sim --json BENCH_sim.json` emits the file; `repro
//! bench-diff OLD NEW` gates on events/sec with a generous
//! wall-noise-tolerant threshold while treating any `virt` drift as a
//! loudly reported (but non-gating) determinism alarm.

use crate::report;
use crate::scale::Scale;
use crate::serve_bench::{TRACED_FLEET, TRACED_LOAD_FRACTION};
use ncsw::ModelBundle;
use ncsw_obs::{prof, OverheadLedger, Throughput};
use ncsw_serve::{
    serve, serve_autoscaled_observed, serve_observed, ArrivalProcess, FleetSpec, ObsConfig,
    ScalingConfig, ServeConfig, ServeOutcome,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use vpu_nn::googlenet::Variant;

/// Fault plan injected into the `serve/faulted` cell: an early unplug
/// with reconnect (inside even the tiny cell's ~1 s virtual horizon)
/// plus a background execution-error rate, so the
/// failover/backoff/circuit machinery is part of what's timed.
pub const FAULTED_SPEC: &str = "unplug@0.3s:reconnect@0.7s,execerr@0.1";

/// Scaling policy of the `autoscale/reactive` cell.
pub const AUTOSCALE_POLICY: &str = "reactive";

/// Deterministic (virtual-clock) half of a cell: a pure function of the
/// seeded config — byte-identical across runs and machines, which is
/// exactly what CI asserts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtBlock {
    pub requests: usize,
    pub completed: u64,
    pub shed: u64,
    /// Simulator loop events (arrivals + dispatches + controller ticks).
    pub sim_events: u64,
    /// Virtual horizon of the run (epoch → last completion).
    pub virtual_ms: f64,
    /// Observability volume (zero on the unobserved cell).
    pub events_recorded: u64,
    pub trace_bytes: u64,
    pub series_bytes: u64,
}

/// Machine-dependent half of a cell. Never compared for equality —
/// only gated with a generous tolerance by [`sim_bench_diff`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallBlock {
    pub wall_ms: f64,
    pub events_per_sec: f64,
    pub req_per_sec: f64,
    /// Virtual seconds simulated per wall second.
    pub virtual_per_wall: f64,
    /// Recorder-path cost in ns per recorded event (profiled cells).
    pub recorder_ns_per_event: f64,
    /// Wall-clock cost of full observability vs the unobserved loop at
    /// the same config: `(wall_observed − wall_null) / wall_null`, in
    /// percent. Present only on the observed serve cell.
    pub recorder_overhead_pct: Option<f64>,
}

/// One cell of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchCell {
    pub name: String,
    pub virt: VirtBlock,
    pub wall: WallBlock,
}

/// The whole `BENCH_sim.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBench {
    /// Bump when the cell set or block fields change shape.
    pub schema_version: u32,
    pub scale: Scale,
    pub fleet: String,
    pub load_fraction: f64,
    pub cells: Vec<SimBenchCell>,
}

pub const SCHEMA_VERSION: u32 = 1;

fn requests(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 160,
        Scale::Small => 1_500,
        Scale::Paper => 10_000,
    }
}

struct Measured {
    outcome: ServeOutcome,
    wall_ns: u64,
    ledger: OverheadLedger,
}

fn virt_of(m: &Measured, n: usize) -> VirtBlock {
    VirtBlock {
        requests: n,
        completed: m.outcome.completed.len() as u64,
        shed: m.outcome.shed.len() as u64,
        sim_events: m.outcome.sim_events,
        virtual_ms: (m.outcome.end() - m.outcome.epoch).as_millis(),
        events_recorded: m.ledger.events_recorded,
        trace_bytes: m.ledger.trace_bytes,
        series_bytes: m.ledger.series_bytes,
    }
}

fn wall_of(m: &Measured) -> WallBlock {
    let t = Throughput {
        sim_events: m.outcome.sim_events,
        requests: (m.outcome.completed.len() + m.outcome.shed.len()) as u64,
        virtual_ns: (m.outcome.end() - m.outcome.epoch).nanos(),
        wall_ns: m.wall_ns,
    };
    WallBlock {
        wall_ms: m.wall_ns as f64 / 1e6,
        events_per_sec: t.events_per_sec(),
        req_per_sec: t.req_per_sec(),
        virtual_per_wall: t.virtual_per_wall(),
        recorder_ns_per_event: m.ledger.ns_per_event(),
        recorder_overhead_pct: None,
    }
}

/// Run an observed serving closure under the profiler, streaming the
/// exports through counting sinks so the ledger carries exact byte
/// counts.
fn observed_cell(run: impl FnOnce() -> (ServeOutcome, ncsw_serve::ServeObservation)) -> Measured {
    prof::start();
    let t = Instant::now();
    let (outcome, obs) = run();
    let wall_ns = t.elapsed().as_nanos() as u64;
    let report = prof::stop();
    let mut trace = Vec::new();
    let trace_stats = ncsw_obs::chrome_trace_to(&obs.events, &mut trace).expect("Vec sink");
    let mut series = Vec::new();
    let series_stats = obs.series.csv_to(&mut series).expect("Vec sink");
    let ledger = OverheadLedger {
        events_recorded: obs.events.len() as u64,
        trace_bytes: trace_stats.bytes,
        series_bytes: series_stats.bytes,
        peak_buffered_bytes: trace_stats.peak_buffered.max(series_stats.peak_buffered),
        recorder_ns: report.counter(prof::RECORDER_NS),
    };
    Measured { outcome, wall_ns, ledger }
}

/// Run the fixed matrix at `scale`. The `virt` blocks are deterministic
/// (same bytes every run); the `wall` blocks are whatever this machine
/// did this time.
pub fn sim_bench(scale: Scale) -> SimBench {
    let model = ModelBundle::googlenet_untrained(Variant::Full, 1);
    let n = requests(scale);
    let spec = FleetSpec::parse(TRACED_FLEET).expect("valid fleet spec");
    let probe = spec.build(&model);
    let capacity_rps = spec.capacity_rps(&probe);
    let max_batch = spec.preferred_batch(&probe);
    drop(probe);
    let cfg = ServeConfig { max_batch, ..ServeConfig::default() };
    let rate = capacity_rps * TRACED_LOAD_FRACTION;
    let load = ArrivalProcess::Poisson { rate_per_sec: rate };
    let ocfg = ObsConfig::default();

    // Cell 1: the unobserved loop — NullRecorder, no sampler, the
    // fastest the simulator goes today.
    let mut workers = spec.build(&model);
    let t = Instant::now();
    let outcome = serve(&mut workers, &cfg, &load, n);
    let null = Measured {
        outcome,
        wall_ns: t.elapsed().as_nanos() as u64,
        ledger: OverheadLedger::default(),
    };

    // Cell 2: the same run fully observed (event log + sampler +
    // registry), exports streamed and metered.
    let mut workers = spec.build(&model);
    let observed = observed_cell(|| serve_observed(&mut workers, &cfg, &load, n, &ocfg));

    // Cell 3: observed run with faults injected — failover, backoff and
    // breaker machinery on the clock.
    let plan = ncsw_faults::FaultPlan::parse(FAULTED_SPEC).expect("valid fault spec");
    let workers = spec.build(&model);
    let mut workers = plan.apply(workers, cfg.seed);
    let faulted = observed_cell(|| serve_observed(&mut workers, &cfg, &load, n, &ocfg));

    // Cell 4: closed-loop autoscaled run on the elastic fleet.
    let aspec = FleetSpec::parse(crate::autoscale_bench::AUTOSCALE_FLEET).expect("valid fleet");
    let aprobe = aspec.build(&model);
    let acap = aspec.capacity_rps(&aprobe);
    let amax = aspec.preferred_batch(&aprobe);
    drop(aprobe);
    let acfg = ServeConfig { max_batch: amax, ..ServeConfig::default() };
    let aload =
        ArrivalProcess::Poisson { rate_per_sec: acap * crate::autoscale_bench::AUTOSCALE_LOADS[0] };
    let scaling = ScalingConfig { elastic: aspec.elastic_workers(), ..ScalingConfig::default() };
    let mut policy = ncsw_ctrl::policy(AUTOSCALE_POLICY).expect("known policy");
    let mut aworkers = aspec.build(&model);
    let autoscale = observed_cell(|| {
        serve_autoscaled_observed(&mut aworkers, &acfg, &aload, n, &scaling, policy.as_mut(), &ocfg)
    });

    let mut observed_wall = wall_of(&observed);
    if null.wall_ns > 0 {
        observed_wall.recorder_overhead_pct =
            Some((observed.wall_ns as f64 - null.wall_ns as f64) / null.wall_ns as f64 * 100.0);
    }

    SimBench {
        schema_version: SCHEMA_VERSION,
        scale,
        fleet: TRACED_FLEET.to_string(),
        load_fraction: TRACED_LOAD_FRACTION,
        cells: vec![
            SimBenchCell {
                name: "serve/null".into(),
                virt: virt_of(&null, n),
                wall: wall_of(&null),
            },
            SimBenchCell {
                name: "serve/observed".into(),
                virt: virt_of(&observed, n),
                wall: observed_wall,
            },
            SimBenchCell {
                name: "serve/faulted".into(),
                virt: virt_of(&faulted, n),
                wall: wall_of(&faulted),
            },
            SimBenchCell {
                name: format!("autoscale/{AUTOSCALE_POLICY}"),
                virt: virt_of(&autoscale, n),
                wall: wall_of(&autoscale),
            },
        ],
    }
}

impl SimBench {
    pub fn cell(&self, name: &str) -> Option<&SimBenchCell> {
        self.cells.iter().find(|c| c.name == name)
    }

    pub fn print(&self) {
        report::header(&format!(
            "E21 — sim throughput: fleet {} at {:.1}x load, scale {} (schema v{})",
            self.fleet,
            self.load_fraction,
            self.scale.name(),
            self.schema_version
        ));
        println!(
            "{:>20} {:>9} {:>11} {:>11} {:>10} {:>11} {:>10} {:>9}",
            "cell", "sim evts", "events/s", "req/s", "virt/wall", "wall ms", "rec ns/ev", "obs %"
        );
        for c in &self.cells {
            println!(
                "{:>20} {:>9} {:>11.0} {:>11.0} {:>10.1} {:>11.2} {:>10.0} {:>9}",
                c.name,
                c.virt.sim_events,
                c.wall.events_per_sec,
                c.wall.req_per_sec,
                c.wall.virtual_per_wall,
                c.wall.wall_ms,
                c.wall.recorder_ns_per_event,
                c.wall
                    .recorder_overhead_pct
                    .map_or_else(|| "-".to_string(), |p| format!("{p:+.1}")),
            );
        }
        for c in &self.cells {
            if c.virt.events_recorded > 0 {
                println!(
                    "{:>20}: {} events recorded, {} trace B + {} series B",
                    c.name, c.virt.events_recorded, c.virt.trace_bytes, c.virt.series_bytes
                );
            }
        }
    }
}

/// One cell's comparison in a [`SimBenchDiff`].
#[derive(Debug, Clone, Serialize)]
pub struct CellDiff {
    pub name: String,
    pub base_events_per_sec: f64,
    pub cand_events_per_sec: f64,
    /// Candidate vs baseline events/sec, in percent (negative = slower).
    pub delta_pct: f64,
    /// Whether the slowdown exceeded the tolerance.
    pub regressed: bool,
    /// Whether the deterministic `virt` blocks matched exactly.
    pub virt_identical: bool,
}

/// Gated verdict comparing two `BENCH_sim.json` documents.
#[derive(Debug, Clone, Serialize)]
pub struct SimBenchDiff {
    /// Allowed events/sec slowdown before the gate trips, in percent.
    pub tolerance_pct: f64,
    pub cells: Vec<CellDiff>,
    /// Cells present in only one document (schema drift — gates).
    pub unmatched: Vec<String>,
    /// Any cell's events/sec regressed beyond tolerance, the schema
    /// versions differ, or the cell sets don't line up.
    pub regression: bool,
    /// Deterministic `virt` drift somewhere — loudly reported but NOT
    /// gating here: byte-identity belongs to the determinism tests, and
    /// a bench baseline from an older seed config would otherwise wedge
    /// the perf gate.
    pub virt_drift: bool,
}

/// Compare `cand` against `base`, gating on events/sec only. Wall
/// clocks are noisy — CI runners especially — so `tolerance_pct` should
/// stay generous (50+ for cross-machine comparisons).
pub fn sim_bench_diff(base: &SimBench, cand: &SimBench, tolerance_pct: f64) -> SimBenchDiff {
    let mut cells = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for b in &base.cells {
        match cand.cell(&b.name) {
            Some(c) => {
                let delta_pct = if b.wall.events_per_sec > 0.0 {
                    (c.wall.events_per_sec - b.wall.events_per_sec) / b.wall.events_per_sec * 100.0
                } else {
                    0.0
                };
                cells.push(CellDiff {
                    name: b.name.clone(),
                    base_events_per_sec: b.wall.events_per_sec,
                    cand_events_per_sec: c.wall.events_per_sec,
                    delta_pct,
                    regressed: delta_pct < -tolerance_pct,
                    virt_identical: b.virt == c.virt,
                });
            }
            None => unmatched.push(b.name.clone()),
        }
    }
    for c in &cand.cells {
        if base.cell(&c.name).is_none() {
            unmatched.push(c.name.clone());
        }
    }
    let regression = !unmatched.is_empty()
        || base.schema_version != cand.schema_version
        || cells.iter().any(|c| c.regressed);
    let virt_drift = cells.iter().any(|c| !c.virt_identical);
    SimBenchDiff { tolerance_pct, cells, unmatched, regression, virt_drift }
}

impl SimBenchDiff {
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sim-throughput diff (gate: events/sec slowdown > {:.0}%)",
            self.tolerance_pct
        );
        let _ = writeln!(
            out,
            "{:>20} {:>12} {:>12} {:>9}  verdict",
            "cell", "base ev/s", "cand ev/s", "delta"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:>20} {:>12.0} {:>12.0} {:>+8.1}%  {}{}",
                c.name,
                c.base_events_per_sec,
                c.cand_events_per_sec,
                c.delta_pct,
                if c.regressed { "REGRESSED" } else { "ok" },
                if c.virt_identical { "" } else { "  [VIRT DRIFT]" }
            );
        }
        for name in &self.unmatched {
            let _ = writeln!(out, "{name:>20} {:>12} — present in only one document", "");
        }
        if self.virt_drift {
            let _ = writeln!(
                out,
                "WARNING: deterministic virt blocks drifted — the simulated runs differ, \
                 not just the machine speed (check seeds/config before trusting deltas)"
            );
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.regression { "REGRESSION" } else { "no regression" }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(name: &str, eps: f64, sim_events: u64) -> SimBenchCell {
        SimBenchCell {
            name: name.to_string(),
            virt: VirtBlock {
                requests: 100,
                completed: 90,
                shed: 10,
                sim_events,
                virtual_ms: 1000.0,
                events_recorded: 0,
                trace_bytes: 0,
                series_bytes: 0,
            },
            wall: WallBlock {
                wall_ms: 5.0,
                events_per_sec: eps,
                req_per_sec: eps / 2.0,
                virtual_per_wall: 100.0,
                recorder_ns_per_event: 0.0,
                recorder_overhead_pct: None,
            },
        }
    }

    fn doc(cells: Vec<SimBenchCell>) -> SimBench {
        SimBench {
            schema_version: SCHEMA_VERSION,
            scale: Scale::Tiny,
            fleet: "cpu+gpu+8xvpu".into(),
            load_fraction: 0.8,
            cells,
        }
    }

    #[test]
    fn diff_gates_on_events_per_sec_only() {
        let base = doc(vec![cell("serve/null", 1000.0, 42)]);
        // 30% slower with 50% tolerance: fine.
        let ok = doc(vec![cell("serve/null", 700.0, 42)]);
        let d = sim_bench_diff(&base, &ok, 50.0);
        assert!(!d.regression, "{}", d.render());
        assert!(!d.virt_drift);
        // 60% slower: gate trips.
        let slow = doc(vec![cell("serve/null", 400.0, 42)]);
        let d = sim_bench_diff(&base, &slow, 50.0);
        assert!(d.regression, "{}", d.render());
        assert!(d.render().contains("REGRESSED"));
        // Faster never gates.
        let fast = doc(vec![cell("serve/null", 9000.0, 42)]);
        assert!(!sim_bench_diff(&base, &fast, 50.0).regression);
    }

    #[test]
    fn virt_drift_is_reported_but_not_gated() {
        let base = doc(vec![cell("serve/null", 1000.0, 42)]);
        let drifted = doc(vec![cell("serve/null", 1000.0, 43)]);
        let d = sim_bench_diff(&base, &drifted, 50.0);
        assert!(d.virt_drift);
        assert!(!d.regression, "virt drift alone must not trip the perf gate");
        assert!(d.render().contains("VIRT DRIFT"));
    }

    #[test]
    fn cell_set_and_schema_mismatches_gate() {
        let base = doc(vec![cell("serve/null", 1000.0, 42)]);
        let renamed = doc(vec![cell("serve/observed", 1000.0, 42)]);
        assert!(sim_bench_diff(&base, &renamed, 50.0).regression);
        let mut newschema = base.clone();
        newschema.schema_version += 1;
        assert!(sim_bench_diff(&base, &newschema, 50.0).regression);
    }

    #[test]
    fn tiny_matrix_is_deterministic_on_the_virtual_clock() {
        let a = sim_bench(Scale::Tiny);
        let b = sim_bench(Scale::Tiny);
        assert_eq!(a.cells.len(), 4);
        let names: Vec<&str> = a.cells.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["serve/null", "serve/observed", "serve/faulted", "autoscale/reactive"]
        );
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.virt, cb.virt, "virt block of {} must be run-invariant", ca.name);
            let v = serde_json::to_string(&ca.virt).unwrap();
            assert_eq!(v, serde_json::to_string(&cb.virt).unwrap());
        }
        // The unobserved cell records nothing; observed cells do.
        let null = a.cell("serve/null").unwrap();
        assert_eq!(null.virt.events_recorded, 0);
        assert_eq!(null.virt.trace_bytes, 0);
        let obs = a.cell("serve/observed").unwrap();
        assert!(obs.virt.events_recorded > 0);
        assert!(obs.virt.trace_bytes > 0);
        assert!(obs.virt.series_bytes > 0);
        assert!(obs.wall.recorder_overhead_pct.is_some());
        assert!(obs.wall.recorder_ns_per_event > 0.0);
        // Null and observed simulate the *same* run.
        assert_eq!(null.virt.sim_events, obs.virt.sim_events);
        assert_eq!(null.virt.completed, obs.virt.completed);
        // Faults and autoscaling change the run but still count events:
        // every cell processes at least its arrivals plus dispatches.
        assert!(a.cell("serve/faulted").unwrap().virt.sim_events > null.virt.requests as u64);
        assert!(
            a.cell("autoscale/reactive").unwrap().virt.sim_events > null.virt.requests as u64,
            "arrivals + dispatches + controller ticks must all count"
        );
        // Self-diff is clean at any tolerance.
        let d = sim_bench_diff(&a, &b, 1000.0);
        assert!(!d.regression && !d.virt_drift, "{}", d.render());
    }
}
